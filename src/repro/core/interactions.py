"""Dimension-interaction analysis (the paper's §V "impact analysis").

The conclusion proposes analysing "how different aspects interact".  The
corpus records exactly that: balanced posts carry a dominant and a
secondary dimension, so the co-occurrence structure of wellness
dimensions is an observable, weighted, directed graph.  This module
builds it with networkx and reports the interaction statistics the
paper's future-work paragraph asks about.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

import networkx as nx

from repro.core.instance import AnnotatedInstance
from repro.core.labels import DIMENSIONS, WellnessDimension, dimension_from_code

__all__ = [
    "InteractionReport",
    "build_interaction_graph",
    "analyze_interactions",
]


def build_interaction_graph(
    instances: Iterable[AnnotatedInstance],
) -> nx.DiGraph:
    """Directed co-occurrence graph: dominant → secondary, edge weight = count.

    Every node is present (including isolated dimensions) so downstream
    statistics have the full label space.
    """
    graph = nx.DiGraph()
    for dim in DIMENSIONS:
        graph.add_node(dim.code)
    for instance in instances:
        for code in instance.metadata.get("secondary_dims", []):
            secondary = dimension_from_code(code)
            edge = (instance.label.code, secondary.code)
            if graph.has_edge(*edge):
                graph[edge[0]][edge[1]]["weight"] += 1
            else:
                graph.add_edge(*edge, weight=1)
    return graph


@dataclass(frozen=True)
class InteractionReport:
    """Summary statistics of the dimension-interaction graph."""

    n_cooccurring_posts: int
    strongest_pairs: tuple[tuple[str, str, int], ...]
    most_central: str
    centrality: dict[str, float]
    reciprocity: float

    def pair_weight(self, a: WellnessDimension, b: WellnessDimension) -> int:
        """Total co-occurrence count of an unordered dimension pair."""
        total = 0
        for src, dst, count in self.strongest_pairs:
            if {src, dst} == {a.code, b.code}:
                total += count
        return total


def analyze_interactions(
    instances: Iterable[AnnotatedInstance], *, top_k: int = 6
) -> InteractionReport:
    """Build the graph and compute the §V impact-analysis measures.

    * strongest pairs: which dimensions co-occur most inside single posts;
    * centrality (weighted degree): which dimension sits at the centre of
      the interaction structure — the paper's §IV expects Emotional;
    * reciprocity: how symmetric the dominant/secondary relationship is.
    """
    graph = build_interaction_graph(instances)
    n_posts = sum(data["weight"] for _, _, data in graph.edges(data=True))

    pairs = sorted(
        ((u, v, int(d["weight"])) for u, v, d in graph.edges(data=True)),
        key=lambda t: -t[2],
    )

    undirected = graph.to_undirected()
    for u, v in undirected.edges():
        forward = graph[u][v]["weight"] if graph.has_edge(u, v) else 0
        backward = graph[v][u]["weight"] if graph.has_edge(v, u) else 0
        undirected[u][v]["weight"] = forward + backward
    centrality = {
        node: float(value)
        for node, value in nx.degree_centrality(undirected).items()
    }
    weighted_degree = {
        node: sum(d["weight"] for _, _, d in undirected.edges(node, data=True))
        for node in undirected.nodes()
    }
    total_weight = sum(weighted_degree.values()) or 1
    centrality = {
        node: weighted_degree[node] / total_weight for node in weighted_degree
    }
    most_central = max(centrality, key=centrality.get)

    reciprocity = float(nx.reciprocity(graph) or 0.0) if graph.edges else 0.0

    return InteractionReport(
        n_cooccurring_posts=n_posts,
        strongest_pairs=tuple(pairs[:top_k]),
        most_central=most_central,
        centrality=centrality,
        reciprocity=reciprocity,
    )
