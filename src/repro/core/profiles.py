"""Wellness profiling: the intro's personalised-assessment use case.

The paper motivates the dataset with "personalized well-being evaluations
and early intervention strategies" (§I, Fig. 1).  This module turns
per-post dimension predictions into a user-level wellness profile and a
simple triage rule: which dimensions dominate a user's narrative, and
does the profile warrant attention.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.labels import DIMENSIONS, WellnessDimension

__all__ = ["WellnessProfile", "TriageDecision", "build_profile", "triage"]

# Dimensions whose dominance most strongly signals acute risk in the
# paper's framing (existential distress and emotional instability).
_ACUTE_DIMENSIONS = (WellnessDimension.SPIRITUAL, WellnessDimension.EMOTIONAL)


@dataclass(frozen=True)
class WellnessProfile:
    """Distribution of wellness dimensions across one user's posts."""

    user_id: str
    n_posts: int
    counts: dict[WellnessDimension, int]

    def share(self, dimension: WellnessDimension) -> float:
        """Fraction of the user's posts in ``dimension``."""
        if self.n_posts == 0:
            return 0.0
        return self.counts.get(dimension, 0) / self.n_posts

    @property
    def dominant(self) -> WellnessDimension | None:
        """Most frequent dimension (ties break by DIMENSIONS order)."""
        if self.n_posts == 0:
            return None
        return max(DIMENSIONS, key=lambda d: (self.counts.get(d, 0), -DIMENSIONS.index(d)))

    def as_percentages(self) -> dict[WellnessDimension, float]:
        return {d: 100.0 * self.share(d) for d in DIMENSIONS}


@dataclass(frozen=True)
class TriageDecision:
    """Early-intervention screening outcome for one profile."""

    profile: WellnessProfile
    flagged: bool
    reasons: tuple[str, ...]


def build_profile(
    user_id: str, predictions: Sequence[WellnessDimension]
) -> WellnessProfile:
    """Aggregate per-post predictions into a user profile."""
    counts = Counter(predictions)
    return WellnessProfile(
        user_id=user_id,
        n_posts=len(predictions),
        counts={d: counts.get(d, 0) for d in DIMENSIONS if counts.get(d, 0)},
    )


def triage(
    profile: WellnessProfile,
    *,
    acute_share_threshold: float = 0.5,
    breadth_threshold: int = 4,
    min_posts: int = 3,
) -> TriageDecision:
    """Screen a profile for early-intervention follow-up.

    Flags a user when (a) acute dimensions (Spiritual/Emotional) dominate
    their narrative, or (b) distress spans many dimensions at once —
    both patterns the wellness literature treats as escalation signs.
    Users with fewer than ``min_posts`` posts are never flagged (too
    little signal).
    """
    reasons: list[str] = []
    if profile.n_posts >= min_posts:
        acute_share = sum(profile.share(d) for d in _ACUTE_DIMENSIONS)
        if acute_share >= acute_share_threshold:
            reasons.append(
                f"acute dimensions (SpiA+EA) cover {acute_share:.0%} of posts"
            )
        breadth = sum(1 for d in DIMENSIONS if profile.counts.get(d, 0) > 0)
        if breadth >= breadth_threshold:
            reasons.append(
                f"distress spans {breadth} of {len(DIMENSIONS)} dimensions"
            )
    return TriageDecision(
        profile=profile, flagged=bool(reasons), reasons=tuple(reasons)
    )
