"""High-level classification API: one object over every baseline.

``WellnessClassifier`` is the library's front door: pick any of the nine
Table IV baselines by name (resolved through the unified
:mod:`repro.engine.registry`), ``fit`` on a dataset, ``predict``
dimensions for new posts through the batched, cached
:class:`~repro.engine.engine.PredictionEngine`, ``explain`` predictions
with LIME, and ``save``/``load`` the fitted model as a checkpoint
directory — without touching the TF-IDF/encoder plumbing underneath.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from collections.abc import Sequence

import numpy as np

from repro.core.dataset import HolistixDataset
from repro.core.labels import DIMENSIONS, WellnessDimension
from repro.engine.engine import PredictionEngine, bump_weights_version
from repro.engine.registry import (
    build_engine,
    create_traditional_model,
    get_spec,
    traditional_baselines,
    transformer_baselines,
    transformer_class,
)
from repro.explain.lime import Explanation, LimeTextExplainer
from repro.text.tfidf import TfidfVectorizer
from repro.text.vocab import Vocabulary

__all__ = ["WellnessClassifier", "TRADITIONAL_BASELINES", "TRANSFORMER_BASELINES"]

# Derived from the registry; kept as module constants for the public API.
TRADITIONAL_BASELINES: tuple[str, ...] = traditional_baselines()
TRANSFORMER_BASELINES: tuple[str, ...] = transformer_baselines()


class WellnessClassifier:
    """Classify posts into the six wellness dimensions.

    Parameters
    ----------
    baseline:
        One of the paper's nine baselines (Table IV row names):
        ``LR``, ``Linear SVM``, ``Gaussian NB``, ``BERT``, ``DistilBERT``,
        ``MentalBERT``, ``Flan-T5``, ``XLNet``, ``GPT-2.0`` — anything
        registered in :mod:`repro.engine.registry`.
    max_features:
        TF-IDF vocabulary size for the traditional baselines.
    fast:
        Shrink the transformer (fewer epochs, no pretraining) — for tests
        and quick exploration, not for reproducing Table IV.
    """

    def __init__(
        self,
        baseline: str = "MentalBERT",
        *,
        max_features: int = 3000,
        fast: bool = False,
        seed: int = 7,
    ) -> None:
        self._spec = get_spec(baseline)  # raises on unknown names
        self.baseline = baseline
        self.max_features = max_features
        self.fast = fast
        self.seed = seed
        self._vectorizer: TfidfVectorizer | None = None
        self._model = None
        self._trainer = None
        self._engine: PredictionEngine | None = None

    @property
    def is_transformer(self) -> bool:
        return self._spec.is_transformer

    @property
    def is_fitted(self) -> bool:
        return self._model is not None

    @property
    def model(self):
        """The fitted underlying model (``None`` before :meth:`fit`).

        Exposed read-only so out-of-process servers (``holistix-serve``)
        can hand the fitted state to :func:`repro.engine.registry.
        build_engine` with their own engine settings.
        """
        return self._model

    @property
    def vectorizer(self) -> TfidfVectorizer | None:
        """The fitted TF-IDF vectorizer (traditional baselines only)."""
        return self._vectorizer

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        train: "HolistixDataset | Sequence",
        *,
        validation: "HolistixDataset | None" = None,
    ) -> "WellnessClassifier":
        """Train the selected baseline on annotated instances."""
        instances = list(train)
        if not instances:
            raise ValueError("cannot fit on an empty dataset")
        texts = [inst.text for inst in instances]
        labels = [inst.label for inst in instances]
        self._engine = None  # new weights ⇒ new engine + empty cache
        if self.is_transformer:
            self._fit_transformer(texts, labels, validation)
        else:
            self._fit_traditional(texts, labels)
        # Belt and braces with the engine rebuild above: refitting is a
        # weight change, so any engine still holding the model (a
        # serving replica, a caller's reference) must miss its cache.
        bump_weights_version(self._model)
        return self

    def _fit_traditional(
        self, texts: list[str], labels: list[WellnessDimension]
    ) -> None:
        self._vectorizer = TfidfVectorizer(
            max_features=self.max_features, sparse_output=True
        )
        features = self._vectorizer.fit_transform(texts)
        targets = np.asarray([DIMENSIONS.index(label) for label in labels])
        self._model = create_traditional_model(self.baseline, seed=self.seed)
        self._model.fit(features, targets)

    def _fit_transformer(
        self,
        texts: list[str],
        labels: list[WellnessDimension],
        validation: "HolistixDataset | None",
    ) -> None:
        from repro.models.config import scaled_for_tests
        from repro.models.pretrain import build_pretraining_corpus
        from repro.models.trainer import Trainer

        config = self._spec.config
        if self.fast:
            config = scaled_for_tests(config)
        if config.pretrain_objective is not None:
            corpus = build_pretraining_corpus(config.pretrain_domain, seed=101)
        else:
            corpus = []
        vocab = Vocabulary.build(corpus + texts, max_size=2500)
        self._trainer = Trainer(config, vocab)
        kwargs = {}
        if validation is not None:
            kwargs = {
                "val_texts": validation.texts,
                "val_labels": validation.labels,
            }
        self._trainer.fit(texts, labels, **kwargs)
        self._model = self._trainer.model

    # ------------------------------------------------------------------
    # Inference (all routed through the PredictionEngine)
    # ------------------------------------------------------------------
    @property
    def engine(self) -> PredictionEngine:
        """The batched/cached inference engine over the fitted model."""
        if self._engine is None:
            if self._model is None:
                raise RuntimeError("classifier must be fitted before predict")
            self._engine = build_engine(
                self.baseline, model=self._model, vectorizer=self._vectorizer
            )
        return self._engine

    def predict(self, texts: Sequence[str]) -> list[WellnessDimension]:
        """Predicted dimensions for raw post texts."""
        return self.engine.predict(list(texts))

    def predict_proba(self, texts: Sequence[str]) -> np.ndarray:
        """Probability matrix ``(n, 6)`` in DIMENSIONS order."""
        return self.engine.predict_proba(list(texts))

    def accuracy(self, dataset: HolistixDataset) -> float:
        """Accuracy over an annotated dataset."""
        predictions = self.predict(dataset.texts)
        gold = dataset.labels
        return sum(p == g for p, g in zip(predictions, gold)) / len(gold)

    # ------------------------------------------------------------------
    # Explainability
    # ------------------------------------------------------------------
    def explain(
        self, text: str, *, n_samples: int = 300, seed: int | None = None
    ) -> Explanation:
        """LIME explanation of this classifier's prediction on ``text``.

        The explainer queries the prediction engine, so the hundreds of
        perturbed texts are batched (and duplicates cached) rather than
        scored one path at a time.
        """
        explainer = LimeTextExplainer.from_engine(
            self.engine,
            n_samples=n_samples,
            seed=self.seed if seed is None else seed,
        )
        return explainer.explain(text)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write a checkpoint directory for the fitted classifier.

        The checkpoint is ``weights.npz`` (model parameters, plus the
        TF-IDF idf vector for traditional baselines) and ``config.json``
        (baseline identity, hyperparameters, vocabulary).  Any baseline —
        traditional or transformer — round-trips through
        :meth:`WellnessClassifier.load` with identical predictions.
        """
        from repro.nn.serialization import collect_array_state, save_checkpoint

        if self._model is None:
            raise RuntimeError("classifier must be fitted before save")
        config: dict = {
            "baseline": self.baseline,
            "kind": self._spec.kind,
            "max_features": self.max_features,
            "fast": self.fast,
            "seed": self.seed,
        }
        if self.is_transformer:
            model = self._model
            arrays = {
                f"model.{name}": value
                for name, value in model.state_dict().items()
            }
            config["n_classes"] = model.n_classes
            config["model_config"] = asdict(model.config)
            config["vocab_tokens"] = model.vocab.ordinary_tokens()
        else:
            vec_config, idf = self._vectorizer.get_state()
            arrays = {
                f"model.{name}": value
                for name, value in collect_array_state(self._model).items()
            }
            arrays["vectorizer.idf"] = idf
            config["vectorizer"] = vec_config
        return save_checkpoint(path, arrays=arrays, config=config)

    @classmethod
    def load(cls, path: str | Path) -> "WellnessClassifier":
        """Rebuild a fitted classifier from a :meth:`save` checkpoint."""
        from repro.nn.serialization import load_checkpoint

        arrays, config = load_checkpoint(path)
        return cls.from_state(arrays, config)

    @classmethod
    def from_state(cls, arrays: dict, config: dict) -> "WellnessClassifier":
        """Rebuild a fitted classifier from in-memory checkpoint state.

        ``arrays``/``config`` are exactly what :meth:`save` persists —
        but they can come from anywhere: ``load_checkpoint`` (the
        :meth:`load` path) or zero-copy shared-memory views published by
        a :class:`~repro.nn.serialization.SharedCheckpoint` (worker
        processes).  Read-only arrays are safe: transformer parameters
        are copied once by ``load_state_dict``, while traditional models
        hold the views by reference (``restore_array_state`` assigns,
        inference never writes fitted state) — true zero-copy serving.
        """
        from repro.models.config import ModelConfig
        from repro.nn.serialization import restore_array_state

        classifier = cls(
            config["baseline"],
            max_features=config["max_features"],
            fast=config["fast"],
            seed=config["seed"],
        )
        model_arrays = {
            name[len("model.") :]: value
            for name, value in arrays.items()
            if name.startswith("model.")
        }
        if config["kind"] == "transformer":
            vocab = Vocabulary(config["vocab_tokens"], specials=True)
            model_config = ModelConfig(**config["model_config"])
            model = transformer_class(config["baseline"])(
                vocab, n_classes=config["n_classes"], config=model_config
            )
            model.load_state_dict(model_arrays)
            classifier._model = model
        else:
            classifier._vectorizer = TfidfVectorizer.from_state(
                config["vectorizer"], arrays["vectorizer.idf"]
            )
            model = create_traditional_model(
                config["baseline"], seed=config["seed"]
            )
            restore_array_state(model, model_arrays)
            classifier._model = model
        # load_state_dict/restore_array_state already bumped, but keep
        # the invariant explicit: restoring a checkpoint is a weight
        # change, so cached predictions from before it must not serve.
        bump_weights_version(classifier._model)
        return classifier
