"""High-level classification API: one object over every baseline.

``WellnessClassifier`` is the library's front door: pick any of the nine
Table IV baselines by name, ``fit`` on a dataset, ``predict`` dimensions
for new posts, and ``explain`` predictions with LIME — without touching
the TF-IDF/encoder plumbing underneath.
"""

from __future__ import annotations

from dataclasses import replace
from collections.abc import Sequence

import numpy as np

from repro.core.dataset import HolistixDataset
from repro.core.labels import DIMENSIONS, WellnessDimension
from repro.explain.lime import Explanation, LimeTextExplainer
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.svm import LinearSVM
from repro.text.tfidf import TfidfVectorizer
from repro.text.vocab import Vocabulary

__all__ = ["WellnessClassifier", "TRADITIONAL_BASELINES", "TRANSFORMER_BASELINES"]

TRADITIONAL_BASELINES: tuple[str, ...] = ("LR", "Linear SVM", "Gaussian NB")
TRANSFORMER_BASELINES: tuple[str, ...] = (
    "BERT",
    "DistilBERT",
    "MentalBERT",
    "Flan-T5",
    "XLNet",
    "GPT-2.0",
)


class WellnessClassifier:
    """Classify posts into the six wellness dimensions.

    Parameters
    ----------
    baseline:
        One of the paper's nine baselines (Table IV row names):
        ``LR``, ``Linear SVM``, ``Gaussian NB``, ``BERT``, ``DistilBERT``,
        ``MentalBERT``, ``Flan-T5``, ``XLNet``, ``GPT-2.0``.
    max_features:
        TF-IDF vocabulary size for the traditional baselines.
    fast:
        Shrink the transformer (fewer epochs, no pretraining) — for tests
        and quick exploration, not for reproducing Table IV.
    """

    def __init__(
        self,
        baseline: str = "MentalBERT",
        *,
        max_features: int = 3000,
        fast: bool = False,
        seed: int = 7,
    ) -> None:
        known = TRADITIONAL_BASELINES + TRANSFORMER_BASELINES
        if baseline not in known:
            raise ValueError(
                f"unknown baseline {baseline!r}; expected one of {known}"
            )
        self.baseline = baseline
        self.max_features = max_features
        self.fast = fast
        self.seed = seed
        self._vectorizer: TfidfVectorizer | None = None
        self._model = None
        self._trainer = None

    @property
    def is_transformer(self) -> bool:
        return self.baseline in TRANSFORMER_BASELINES

    # ------------------------------------------------------------------
    def fit(
        self,
        train: "HolistixDataset | Sequence",
        *,
        validation: "HolistixDataset | None" = None,
    ) -> "WellnessClassifier":
        """Train the selected baseline on annotated instances."""
        instances = list(train)
        if not instances:
            raise ValueError("cannot fit on an empty dataset")
        texts = [inst.text for inst in instances]
        labels = [inst.label for inst in instances]
        if self.is_transformer:
            self._fit_transformer(texts, labels, validation)
        else:
            self._fit_traditional(texts, labels)
        return self

    def _fit_traditional(
        self, texts: list[str], labels: list[WellnessDimension]
    ) -> None:
        self._vectorizer = TfidfVectorizer(max_features=self.max_features)
        features = self._vectorizer.fit_transform(texts)
        targets = np.asarray([DIMENSIONS.index(label) for label in labels])
        if self.baseline == "LR":
            self._model = LogisticRegression(max_iter=300)
        elif self.baseline == "Linear SVM":
            self._model = LinearSVM(epochs=10, seed=self.seed)
        else:
            self._model = GaussianNaiveBayes()
        self._model.fit(features, targets)

    def _fit_transformer(
        self,
        texts: list[str],
        labels: list[WellnessDimension],
        validation: "HolistixDataset | None",
    ) -> None:
        from repro.models.config import MODEL_CONFIGS, scaled_for_tests
        from repro.models.pretrain import build_pretraining_corpus
        from repro.models.trainer import Trainer

        config = MODEL_CONFIGS[self.baseline]
        if self.fast:
            config = scaled_for_tests(config)
        if config.pretrain_objective is not None:
            corpus = build_pretraining_corpus(config.pretrain_domain, seed=101)
        else:
            corpus = []
        vocab = Vocabulary.build(corpus + texts, max_size=2500)
        self._trainer = Trainer(config, vocab)
        kwargs = {}
        if validation is not None:
            kwargs = {
                "val_texts": validation.texts,
                "val_labels": validation.labels,
            }
        self._trainer.fit(texts, labels, **kwargs)

    # ------------------------------------------------------------------
    def predict(self, texts: Sequence[str]) -> list[WellnessDimension]:
        """Predicted dimensions for raw post texts."""
        texts = list(texts)
        if self._trainer is not None:
            return self._trainer.predict(texts)
        if self._model is None or self._vectorizer is None:
            raise RuntimeError("classifier must be fitted before predict")
        features = self._vectorizer.transform(texts)
        ids = self._model.predict(features)
        return [DIMENSIONS[int(i)] for i in ids]

    def predict_proba(self, texts: Sequence[str]) -> np.ndarray:
        """Probability matrix ``(n, 6)`` in DIMENSIONS order."""
        texts = list(texts)
        if self._trainer is not None:
            return self._trainer.model.predict_proba(texts)
        if self._model is None or self._vectorizer is None:
            raise RuntimeError("classifier must be fitted before predict_proba")
        features = self._vectorizer.transform(texts)
        if hasattr(self._model, "predict_proba"):
            return self._model.predict_proba(features)
        # SVM: softmax over margins as a probability surrogate.
        margins = self._model.decision_function(features)
        exp = np.exp(margins - margins.max(axis=1, keepdims=True))
        return exp / exp.sum(axis=1, keepdims=True)

    def accuracy(self, dataset: HolistixDataset) -> float:
        """Accuracy over an annotated dataset."""
        predictions = self.predict(dataset.texts)
        gold = dataset.labels
        return sum(p == g for p, g in zip(predictions, gold)) / len(gold)

    # ------------------------------------------------------------------
    def explain(
        self, text: str, *, n_samples: int = 300, seed: int | None = None
    ) -> Explanation:
        """LIME explanation of this classifier's prediction on ``text``."""
        explainer = LimeTextExplainer(
            self.predict_proba,
            n_samples=n_samples,
            seed=self.seed if seed is None else seed,
        )
        return explainer.explain(text)
