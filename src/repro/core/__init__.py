"""Core public API: labels, instances, dataset, classifier, profiling."""

from repro.core.dataset import DatasetStatistics, FixedSplit, HolistixDataset
from repro.core.instance import AnnotatedInstance, Post, Span
from repro.core.labels import (
    DIMENSIONS,
    INDICATORS,
    DimensionIndicator,
    WellnessDimension,
    dimension_from_code,
)
from repro.core.interactions import (
    InteractionReport,
    analyze_interactions,
    build_interaction_graph,
)
from repro.core.pipeline import (
    TRADITIONAL_BASELINES,
    TRANSFORMER_BASELINES,
    WellnessClassifier,
)
from repro.core.profiles import (
    TriageDecision,
    WellnessProfile,
    build_profile,
    triage,
)

__all__ = [
    "AnnotatedInstance",
    "DIMENSIONS",
    "DatasetStatistics",
    "DimensionIndicator",
    "FixedSplit",
    "HolistixDataset",
    "INDICATORS",
    "InteractionReport",
    "Post",
    "Span",
    "TRADITIONAL_BASELINES",
    "TRANSFORMER_BASELINES",
    "TriageDecision",
    "WellnessClassifier",
    "WellnessProfile",
    "analyze_interactions",
    "build_interaction_graph",
    "build_profile",
    "dimension_from_code",
    "triage",
]
