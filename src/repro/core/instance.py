"""Data model: posts, explanation spans and annotated instances.

The paper's annotation guideline 6 says each annotated entry records the
post text, the key text span, and one of the six wellness dimensions; this
module is the typed version of that record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.labels import WellnessDimension, dimension_from_code
from repro.text.tokenize import count_sentences, count_words

__all__ = ["Post", "Span", "AnnotatedInstance"]


@dataclass(frozen=True)
class Post:
    """A raw forum post before annotation.

    ``category`` is the forum discussion board the post came from (e.g.
    "Anxiety"); only text and category are retained, mirroring the paper's
    privacy-preserving collection step.
    """

    post_id: str
    text: str
    category: str

    def __post_init__(self) -> None:
        if not self.post_id:
            raise ValueError("post_id must be non-empty")

    @property
    def word_count(self) -> int:
        return count_words(self.text)

    @property
    def sentence_count(self) -> int:
        return count_sentences(self.text)

    @property
    def is_empty(self) -> bool:
        return not self.text.strip()


@dataclass(frozen=True)
class Span:
    """An explanatory text span inside a post.

    ``start``/``end`` are character offsets into the owning post's text,
    with ``text == post.text[start:end]`` as the class invariant.
    """

    start: int
    end: int
    text: str

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid span offsets [{self.start}, {self.end})")
        if len(self.text) != self.end - self.start:
            raise ValueError(
                "span text length does not match offsets: "
                f"len={len(self.text)} vs [{self.start}, {self.end})"
            )

    @classmethod
    def locate(cls, post_text: str, span_text: str) -> "Span":
        """Build a span by finding ``span_text`` inside ``post_text``."""
        start = post_text.find(span_text)
        if start < 0:
            raise ValueError(f"span text {span_text!r} not found in post")
        return cls(start, start + len(span_text), span_text)

    def overlaps(self, other: "Span") -> bool:
        """True when two spans share at least one character."""
        return self.start < other.end and other.start < self.end

    def __len__(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class AnnotatedInstance:
    """A gold dataset entry: post + explanation span + dimension label."""

    post: Post
    span: Span
    label: WellnessDimension
    metadata: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.post.text[self.span.start : self.span.end] != self.span.text:
            raise ValueError("span offsets do not match the post text")

    @property
    def text(self) -> str:
        """The full post text (classification input)."""
        return self.post.text

    @property
    def span_text(self) -> str:
        """The gold explanation span (explainability target)."""
        return self.span.text

    # ------------------------------------------------------------------
    # Serialisation (jsonl-friendly)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "post_id": self.post.post_id,
            "text": self.post.text,
            "category": self.post.category,
            "span_start": self.span.start,
            "span_end": self.span.end,
            "span_text": self.span.text,
            "label": self.label.code,
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "AnnotatedInstance":
        post = Post(payload["post_id"], payload["text"], payload["category"])
        span = Span(payload["span_start"], payload["span_end"], payload["span_text"])
        return cls(
            post=post,
            span=span,
            label=dimension_from_code(payload["label"]),
            metadata=dict(payload.get("metadata", {})),
        )
