"""The Holistix dataset container.

Wraps the 1,420 annotated instances with everything the paper's
experiments need: Table II statistics, Table III frequent-word profiles,
the fixed 990/212/213 train/validation/test split, stratified K folds for
the 10-fold evaluation, and jsonl persistence.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.core.instance import AnnotatedInstance
from repro.core.labels import DIMENSIONS, WellnessDimension
from repro.text.stopwords import FUNCTION_WORDS
from repro.text.tokenize import count_sentences, count_words, word_tokenize

__all__ = ["DatasetStatistics", "FixedSplit", "HolistixDataset"]


@dataclass(frozen=True)
class DatasetStatistics:
    """Table II: corpus-level measures and per-dimension counts."""

    total_posts: int
    total_words: int
    max_words_per_post: int
    total_sentences: int
    max_sentences_per_post: int
    dimension_counts: dict[WellnessDimension, int]

    def dimension_percentages(self) -> dict[WellnessDimension, float]:
        """Class shares in percent (the §II-C distribution)."""
        total = sum(self.dimension_counts.values())
        if total == 0:
            return {dim: 0.0 for dim in DIMENSIONS}
        return {
            dim: 100.0 * self.dimension_counts.get(dim, 0) / total
            for dim in DIMENSIONS
        }


@dataclass(frozen=True)
class FixedSplit:
    """The paper's fixed 990/212/213 train/validation/test split."""

    train: "HolistixDataset"
    validation: "HolistixDataset"
    test: "HolistixDataset"


class HolistixDataset:
    """An ordered, immutable collection of annotated instances."""

    def __init__(self, instances: Sequence[AnnotatedInstance]) -> None:
        self._instances: tuple[AnnotatedInstance, ...] = tuple(instances)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, config: "GeneratorConfig | None" = None) -> "HolistixDataset":
        """Build the synthetic Holistix corpus (defaults reproduce Table II).

        Generation, calibration and assembly are deterministic in the
        config's seed.
        """
        from repro.corpus.calibrate import calibrate
        from repro.corpus.generator import (
            GeneratorConfig,
            assemble,
            generate_drafts,
        )

        config = config or GeneratorConfig()
        drafts = calibrate(generate_drafts(config), config)
        instances = [assemble(d, f"post-{i:04d}") for i, d in enumerate(drafts)]
        return cls(instances)

    # ------------------------------------------------------------------
    # Collection API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[AnnotatedInstance]:
        return iter(self._instances)

    def __getitem__(self, index: int) -> AnnotatedInstance:
        return self._instances[index]

    @property
    def instances(self) -> tuple[AnnotatedInstance, ...]:
        return self._instances

    @property
    def texts(self) -> list[str]:
        """Post texts in dataset order (classifier inputs)."""
        return [inst.text for inst in self._instances]

    @property
    def labels(self) -> list[WellnessDimension]:
        """Gold dimensions in dataset order."""
        return [inst.label for inst in self._instances]

    @property
    def spans(self) -> list[str]:
        """Gold explanation spans in dataset order."""
        return [inst.span_text for inst in self._instances]

    def multi_label_sets(self) -> list[set[WellnessDimension]]:
        """Gold label *sets*: dominant dimension plus secondary dimensions.

        Perplexity guideline 1 has annotators "label all relevant
        [dimensions] but highlight the most dominant"; the single-label
        task uses only the dominant one, while the multi-label future-work
        task (§V) uses the full set recorded in instance metadata.
        """
        from repro.core.labels import dimension_from_code

        sets: list[set[WellnessDimension]] = []
        for inst in self._instances:
            labels = {inst.label}
            for code in inst.metadata.get("secondary_dims", []):
                labels.add(dimension_from_code(code))
            sets.append(labels)
        return sets

    def subset(self, indices: Iterable[int]) -> "HolistixDataset":
        """New dataset containing the instances at ``indices``, in order."""
        return HolistixDataset([self._instances[i] for i in indices])

    def filter_label(self, label: WellnessDimension) -> "HolistixDataset":
        """Instances annotated with ``label`` only."""
        return HolistixDataset([i for i in self._instances if i.label == label])

    # ------------------------------------------------------------------
    # Statistics (Tables II and III)
    # ------------------------------------------------------------------
    def statistics(self) -> DatasetStatistics:
        """Compute the Table II measures over this dataset."""
        word_counts = [count_words(i.text) for i in self._instances]
        sentence_counts = [count_sentences(i.text) for i in self._instances]
        label_counts = Counter(i.label for i in self._instances)
        return DatasetStatistics(
            total_posts=len(self._instances),
            total_words=sum(word_counts),
            max_words_per_post=max(word_counts, default=0),
            total_sentences=sum(sentence_counts),
            max_sentences_per_post=max(sentence_counts, default=0),
            dimension_counts={dim: label_counts.get(dim, 0) for dim in DIMENSIONS},
        )

    def frequent_span_words(
        self, *, top_k: int = 7, min_count: int = 1
    ) -> dict[WellnessDimension, list[tuple[str, int]]]:
        """Table III: most frequent words in explanation spans per dimension.

        Grammatical function words are removed, but content-bearing
        pronouns such as "me" are kept, matching the published profiles.
        """
        profiles: dict[WellnessDimension, list[tuple[str, int]]] = {}
        for dim in DIMENSIONS:
            counts: Counter[str] = Counter()
            for inst in self._instances:
                if inst.label != dim:
                    continue
                counts.update(
                    t
                    for t in word_tokenize(inst.span_text)
                    if t not in FUNCTION_WORDS
                )
            ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
            profiles[dim] = [(w, c) for w, c in ranked[:top_k] if c >= min_count]
        return profiles

    # ------------------------------------------------------------------
    # Splits
    # ------------------------------------------------------------------
    def fixed_split(
        self, *, train: int = 990, validation: int = 212, test: int = 213
    ) -> FixedSplit:
        """The paper's fixed split (990/212/213 by default).

        Note the published sizes sum to 1,415, five short of the 1,420
        posts — the paper leaves that remainder unstated, so the final
        five instances simply go unused, and we document the same quirk.
        Instances are already label-shuffled at generation time, so the
        contiguous split keeps every class present in every part.
        """
        if train + validation + test > len(self._instances):
            raise ValueError(
                f"split sizes {train}+{validation}+{test} exceed "
                f"{len(self._instances)} instances"
            )
        return FixedSplit(
            train=self.subset(range(train)),
            validation=self.subset(range(train, train + validation)),
            test=self.subset(range(train + validation, train + validation + test)),
        )

    def stratified_folds(
        self, n_folds: int = 10, *, seed: int = 7
    ) -> list[tuple[list[int], list[int]]]:
        """Stratified K-fold index pairs ``(train_idx, eval_idx)``.

        Each fold's evaluation part preserves class proportions to within
        one instance per class, like scikit-learn's ``StratifiedKFold``.
        """
        if n_folds < 2:
            raise ValueError("n_folds must be >= 2")
        rng = np.random.default_rng(seed)
        per_label: dict[WellnessDimension, list[int]] = {d: [] for d in DIMENSIONS}
        for idx, inst in enumerate(self._instances):
            per_label[inst.label].append(idx)
        fold_members: list[list[int]] = [[] for _ in range(n_folds)]
        for dim in DIMENSIONS:
            indices = per_label[dim]
            if indices and len(indices) < n_folds:
                raise ValueError(
                    f"class {dim.code} has fewer instances ({len(indices)}) "
                    f"than folds ({n_folds})"
                )
            shuffled = [indices[i] for i in rng.permutation(len(indices))]
            for pos, idx in enumerate(shuffled):
                fold_members[pos % n_folds].append(idx)
        folds: list[tuple[list[int], list[int]]] = []
        for k in range(n_folds):
            eval_idx = sorted(fold_members[k])
            train_idx = sorted(
                i for j, members in enumerate(fold_members) if j != k for i in members
            )
            folds.append((train_idx, eval_idx))
        return folds

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the dataset as jsonl (one instance per line)."""
        with open(path, "w", encoding="utf-8") as handle:
            for inst in self._instances:
                handle.write(json.dumps(inst.to_dict()) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "HolistixDataset":
        """Read a dataset previously written by :meth:`save`."""
        instances = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    instances.append(AnnotatedInstance.from_dict(json.loads(line)))
        return cls(instances)
