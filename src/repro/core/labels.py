"""The six wellness dimensions and their annotation indicators.

This is the paper's label space (§II-B.1, Dunn/Hettler six-dimension model)
together with the machine-readable version of Table I — the class indicators
annotators use to recognise each dimension in a post.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "WellnessDimension",
    "DimensionIndicator",
    "INDICATORS",
    "DIMENSIONS",
    "dimension_from_code",
]


class WellnessDimension(enum.Enum):
    """One of Hettler's six wellness dimensions.

    The enum values are the paper's abbreviations (IA, VA, SpiA, PA, SA,
    EA) and double as the canonical serialisation codes.
    """

    INTELLECTUAL = "IA"
    VOCATIONAL = "VA"
    SPIRITUAL = "SpiA"
    PHYSICAL = "PA"
    SOCIAL = "SA"
    EMOTIONAL = "EA"

    @property
    def code(self) -> str:
        """Paper abbreviation, e.g. ``"SpiA"``."""
        return self.value

    @property
    def description(self) -> str:
        """One-line definition from §II-B.1."""
        return _DESCRIPTIONS[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# Canonical ordering used throughout tables (matches Table IV column order).
DIMENSIONS: tuple[WellnessDimension, ...] = (
    WellnessDimension.INTELLECTUAL,
    WellnessDimension.VOCATIONAL,
    WellnessDimension.SPIRITUAL,
    WellnessDimension.PHYSICAL,
    WellnessDimension.SOCIAL,
    WellnessDimension.EMOTIONAL,
)

_DESCRIPTIONS: dict[WellnessDimension, str] = {
    WellnessDimension.INTELLECTUAL: (
        "Engaging in creative and stimulating activities to expand "
        "knowledge and skills."
    ),
    WellnessDimension.VOCATIONAL: (
        "Personal satisfaction and enrichment derived from one's work, "
        "contributing meaningfully to society."
    ),
    WellnessDimension.SPIRITUAL: (
        "Seeking purpose and meaning in human existence, leading to a "
        "harmonious life."
    ),
    WellnessDimension.PHYSICAL: (
        "Regular physical activity, healthy dietary choices, and "
        "preventive health measures."
    ),
    WellnessDimension.SOCIAL: (
        "Developing a sense of connection and belonging through positive "
        "interpersonal relationships."
    ),
    WellnessDimension.EMOTIONAL: (
        "Awareness and acceptance of one's feelings, coping effectively "
        "with stress, and maintaining satisfying relationships."
    ),
}


@dataclass(frozen=True)
class DimensionIndicator:
    """Table I row: what annotators look for and an example phrasing."""

    dimension: WellnessDimension
    indicators: str
    examples: tuple[str, ...]


INDICATORS: dict[WellnessDimension, DimensionIndicator] = {
    WellnessDimension.PHYSICAL: DimensionIndicator(
        WellnessDimension.PHYSICAL,
        "Mentions of fatigue, sleep issues, body image concerns, diet "
        "struggles, illness, or medication. Phrases related to body shaming, "
        "physical deterioration, weight concerns, or health anxiety.",
        (
            "I feel exhausted all the time and can't even sleep properly.",
            "I hate my body and feel disgusting when I look in the mirror.",
        ),
    ),
    WellnessDimension.INTELLECTUAL: DimensionIndicator(
        WellnessDimension.INTELLECTUAL,
        "Discussions about academic stress, feelings of intellectual "
        "inadequacy, frustration with learning.",
        ("I feel like I'll never be smart enough to pass my exams.",),
    ),
    WellnessDimension.VOCATIONAL: DimensionIndicator(
        WellnessDimension.VOCATIONAL,
        "Workplace dissatisfaction, career struggles, financial burdens "
        "related to work or dissatisfaction with career progression.",
        ("My 9-5 job drains me, and I don't see the point in trying anymore.",),
    ),
    WellnessDimension.SOCIAL: DimensionIndicator(
        WellnessDimension.SOCIAL,
        "Mentions of loneliness, strained relationships, loss of social "
        "support, feeling excluded or isolated. Discussions about family, "
        "friends, breakups, bullying, or lack of belonging.",
        (
            "I have no real friends, and I feel invisible at school.",
            "Ever since my breakup, I feel like I've lost my entire social circle.",
        ),
    ),
    WellnessDimension.SPIRITUAL: DimensionIndicator(
        WellnessDimension.SPIRITUAL,
        "Expressions of hopelessness, self-doubt, existential crises, or "
        "struggling with purpose in life.",
        ("I don't know what my purpose is anymore, and everything feels meaningless.",),
    ),
    WellnessDimension.EMOTIONAL: DimensionIndicator(
        WellnessDimension.EMOTIONAL,
        "Emotional instability, feelings of emotional exhaustion, inability "
        "to cope, or extreme sadness.",
        ("I hate myself and don't think I belong in this world.",),
    ),
}


def dimension_from_code(code: str) -> WellnessDimension:
    """Parse a paper abbreviation (case-sensitive) into a dimension.

    >>> dimension_from_code("SpiA")
    <WellnessDimension.SPIRITUAL: 'SpiA'>
    """
    try:
        return WellnessDimension(code)
    except ValueError:
        valid = ", ".join(d.code for d in DIMENSIONS)
        raise ValueError(
            f"unknown dimension code {code!r}; expected one of {valid}"
        ) from None
