"""Holistix reproduction: wellness-dimension analysis of mental-health narratives.

Reproduces "Holistix: A Dataset for Holistic Wellness Dimensions Analysis
in Mental Health Narratives" (ICDE 2025): the dataset (synthesised to the
published statistics), the annotation framework, nine classification
baselines, and the LIME explainability study.

Quickstart::

    from repro import HolistixDataset, WellnessClassifier

    dataset = HolistixDataset.build()
    split = dataset.fixed_split()
    clf = WellnessClassifier("LR").fit(split.train)
    print(clf.predict(["I feel exhausted and cannot sleep properly."]))
"""

from repro.core import (
    DIMENSIONS,
    AnnotatedInstance,
    HolistixDataset,
    Post,
    Span,
    WellnessClassifier,
    WellnessDimension,
)
from repro.engine import InferenceServer, PredictionEngine
from repro.serving import ServingClient, ServingGateway
from repro.sparse import CSRMatrix

__version__ = "1.0.0"

__all__ = [
    "AnnotatedInstance",
    "CSRMatrix",
    "DIMENSIONS",
    "HolistixDataset",
    "InferenceServer",
    "Post",
    "PredictionEngine",
    "ServingClient",
    "ServingGateway",
    "Span",
    "WellnessClassifier",
    "WellnessDimension",
    "__version__",
]
