"""Unified model registry, batched inference engine, and serving layer.

The three pieces every prediction path shares:

* :mod:`repro.engine.registry` — one declarative table of the nine
  Table IV baselines (name → kind, factory, config).
* :mod:`repro.engine.engine` — :class:`PredictionEngine`: tokenisation,
  length-bucketed batching, an LRU prediction cache, and vectorised
  softmax/argmax.
* :mod:`repro.engine.server` — a stdlib micro-batching front-end that
  coalesces concurrent requests into engine batches and tracks
  throughput/latency.
"""

from repro.engine.engine import (
    EngineStats,
    PredictionEngine,
    TraditionalBackend,
    TransformerBackend,
    softmax_rows,
)
from repro.engine.registry import (
    REGISTRY,
    BaselineSpec,
    available_baselines,
    create_traditional_model,
    create_transformer,
    get_spec,
    register,
    traditional_baselines,
    transformer_baselines,
    transformer_class,
)
from repro.engine.server import InferenceServer, PredictionResult, ServerStats

__all__ = [
    "BaselineSpec",
    "EngineStats",
    "InferenceServer",
    "PredictionEngine",
    "PredictionResult",
    "REGISTRY",
    "ServerStats",
    "TraditionalBackend",
    "TransformerBackend",
    "available_baselines",
    "create_traditional_model",
    "create_transformer",
    "get_spec",
    "register",
    "softmax_rows",
    "traditional_baselines",
    "transformer_baselines",
    "transformer_class",
]
