"""Unified model registry, batched inference engine, and serving layer.

The three pieces every prediction path shares:

* :mod:`repro.engine.registry` — one declarative table of the nine
  Table IV baselines (name → kind, factory, config).
* :mod:`repro.engine.engine` — :class:`PredictionEngine`: tokenisation,
  length-bucketed batching, a weights-versioned LRU prediction cache,
  and vectorised softmax/argmax.
* :mod:`repro.engine.server` — a stdlib replicated micro-batching
  front-end: N worker threads over engine replicas, a bounded admission
  queue with block/shed backpressure, graceful drain, and thread-safe
  throughput/latency stats snapshots.
* :mod:`repro.engine.procserver` — the same admission core over worker
  *processes* attached to shared-memory weights: GIL-free compute that
  scales with cores, with dead-worker respawn and hot reload via the
  ``weights_version`` token.
"""

from repro.engine.engine import (
    EngineStats,
    LatencyInjectedBackend,
    PredictionEngine,
    TraditionalBackend,
    TransformerBackend,
    bump_weights_version,
    softmax_rows,
    weights_version,
)
from repro.engine.procserver import (
    FactoryEngineSpec,
    ProcessInferenceServer,
    RemoteWorkerError,
    SharedCheckpointEngineSpec,
)
from repro.engine.registry import (
    REGISTRY,
    BaselineSpec,
    available_baselines,
    build_engine,
    create_traditional_model,
    create_transformer,
    get_spec,
    register,
    traditional_baselines,
    transformer_baselines,
    transformer_class,
)
from repro.engine.server import (
    BatchingServerBase,
    InferenceServer,
    PredictionResult,
    ServerClosed,
    ServerOverloaded,
    ServerStats,
    StatsSnapshot,
)

__all__ = [
    "BaselineSpec",
    "BatchingServerBase",
    "EngineStats",
    "FactoryEngineSpec",
    "InferenceServer",
    "LatencyInjectedBackend",
    "PredictionEngine",
    "PredictionResult",
    "ProcessInferenceServer",
    "REGISTRY",
    "RemoteWorkerError",
    "ServerClosed",
    "ServerOverloaded",
    "ServerStats",
    "SharedCheckpointEngineSpec",
    "StatsSnapshot",
    "TraditionalBackend",
    "TransformerBackend",
    "available_baselines",
    "build_engine",
    "bump_weights_version",
    "create_traditional_model",
    "create_transformer",
    "get_spec",
    "register",
    "softmax_rows",
    "traditional_baselines",
    "transformer_baselines",
    "transformer_class",
]
