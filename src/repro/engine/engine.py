"""Batched inference engine shared by every prediction path.

``PredictionEngine`` is the single place where raw texts become class
probabilities: it owns tokenisation, length-bucketed batching (texts are
sorted by token count so each batch pads only to its own longest row
instead of the global maximum), an LRU cache keyed on ``(model-id,
text)``, and vectorised softmax/argmax post-processing.
``WellnessClassifier``, ``Trainer.predict``, the LIME callback, and the
serving front-end all route through it, so padding waste is paid once
and repeated texts (LIME perturbations, hot traffic) are served from
cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.labels import DIMENSIONS, WellnessDimension

__all__ = [
    "EngineStats",
    "PredictionEngine",
    "TraditionalBackend",
    "TransformerBackend",
    "softmax_rows",
]


def softmax_rows(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


@dataclass
class EngineStats:
    """Counters the engine accumulates across calls."""

    requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    batches: int = 0
    padded_tokens: int = 0
    padded_tokens_naive: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def padding_saved(self) -> float:
        """Fraction of pad tokens avoided versus one global-width batch."""
        if self.padded_tokens_naive == 0:
            return 0.0
        return 1.0 - self.padded_tokens / self.padded_tokens_naive


class TraditionalBackend:
    """TF-IDF + classical-ML probability backend.

    Vectorises the whole batch in one ``transform`` call; models without
    ``predict_proba`` (the SVM) get a softmax over decision margins.
    """

    def __init__(self, vectorizer, model) -> None:
        self.vectorizer = vectorizer
        self.model = model

    @property
    def n_classes(self) -> int:
        return int(self.model.n_classes_)

    def proba_batch(self, texts: list[str]) -> np.ndarray:
        features = self.vectorizer.transform(texts)
        if hasattr(self.model, "predict_proba"):
            return np.asarray(self.model.predict_proba(features), dtype=np.float64)
        margins = np.asarray(self.model.decision_function(features))
        return softmax_rows(margins)


class TransformerBackend:
    """Token-id probability backend over a :class:`TransformerClassifier`.

    Exposes per-text encoding so the engine can sort by length and pad
    per bucket instead of per call.
    """

    def __init__(self, model) -> None:
        self.model = model

    @property
    def n_classes(self) -> int:
        return int(self.model.n_classes)

    def encode(self, text: str) -> list[int]:
        return self.model.encode_ids(text)

    def proba_rows(self, rows: list[list[int]]) -> np.ndarray:
        from repro.nn.tensor import no_grad

        model = self.model
        was_training = model.training
        model.eval()
        try:
            with no_grad():
                batch = model.pad_rows(rows)
                logits = model.forward(batch).data
        finally:
            if was_training:
                model.train()
        return softmax_rows(np.asarray(logits, dtype=np.float64))


class PredictionEngine:
    """Cached, batched text → probability engine over one fitted model.

    Parameters
    ----------
    backend:
        :class:`TraditionalBackend` or :class:`TransformerBackend`.
    model_id:
        Identifier mixed into every cache key so caches from different
        models (or model versions) never collide.
    batch_size:
        Maximum texts per forward pass for transformer backends.
    cache_size:
        LRU capacity in texts; ``0`` disables caching.
    """

    def __init__(
        self,
        backend,
        *,
        model_id: str,
        batch_size: int = 64,
        cache_size: int = 2048,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.backend = backend
        self.model_id = model_id
        self.batch_size = batch_size
        self.cache_size = cache_size
        self.stats = EngineStats()
        self._cache: OrderedDict[tuple[str, str], np.ndarray] = OrderedDict()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_traditional(
        cls, vectorizer, model, *, model_id: str, **kwargs
    ) -> "PredictionEngine":
        return cls(TraditionalBackend(vectorizer, model), model_id=model_id, **kwargs)

    @classmethod
    def for_transformer(cls, model, *, model_id: str, **kwargs) -> "PredictionEngine":
        return cls(TransformerBackend(model), model_id=model_id, **kwargs)

    @property
    def n_classes(self) -> int:
        return self.backend.n_classes

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------
    def _cache_get(self, text: str) -> np.ndarray | None:
        key = (self.model_id, text)
        row = self._cache.get(key)
        if row is not None:
            self._cache.move_to_end(key)
        return row

    def _cache_put(self, text: str, row: np.ndarray) -> None:
        if self.cache_size == 0:
            return
        key = (self.model_id, text)
        self._cache[key] = row
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def invalidate(self) -> None:
        """Drop every cached prediction (call after weights change)."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _compute(self, texts: list[str]) -> np.ndarray:
        """Probabilities for unique, uncached texts (batched)."""
        if hasattr(self.backend, "encode"):
            return self._compute_bucketed(texts)
        probs = np.empty((len(texts), self.n_classes), dtype=np.float64)
        for start in range(0, len(texts), self.batch_size):
            chunk = texts[start : start + self.batch_size]
            probs[start : start + len(chunk)] = self.backend.proba_batch(chunk)
            self.stats.batches += 1
        return probs

    def _compute_bucketed(self, texts: list[str]) -> np.ndarray:
        """Length-bucketed transformer inference.

        Sorting by token count before chunking means each batch pads to
        its own longest row; the stats record how many pad tokens that
        saved versus padding everything to the global maximum.
        """
        rows = [self.backend.encode(t) for t in texts]
        order = sorted(range(len(rows)), key=lambda i: (len(rows[i]), i))
        widest = max((len(r) for r in rows), default=0)
        probs = np.empty((len(texts), self.n_classes), dtype=np.float64)
        for start in range(0, len(order), self.batch_size):
            picks = order[start : start + self.batch_size]
            bucket = [rows[i] for i in picks]
            width = max(len(r) for r in bucket)
            probs[picks] = self.backend.proba_rows(bucket)
            self.stats.batches += 1
            self.stats.padded_tokens += sum(width - len(r) for r in bucket)
            self.stats.padded_tokens_naive += sum(widest - len(r) for r in bucket)
        return probs

    def predict_proba(self, texts: Sequence[str]) -> np.ndarray:
        """Probability matrix ``(n, n_classes)``, cache-aware and batched."""
        texts = [str(t) for t in texts]
        self.stats.requests += len(texts)
        out = np.empty((len(texts), self.n_classes), dtype=np.float64)
        pending: dict[str, list[int]] = {}
        for i, text in enumerate(texts):
            row = self._cache_get(text)
            if row is not None:
                self.stats.cache_hits += 1
                out[i] = row
            else:
                # Duplicate uncached texts are computed once.
                pending.setdefault(text, []).append(i)
        if pending:
            self.stats.cache_misses += len(pending)
            unique = list(pending)
            computed = self._compute(unique)
            for text, row in zip(unique, computed):
                self._cache_put(text, row)
                for i in pending[text]:
                    out[i] = row
        return out

    def predict_ids(self, texts: Sequence[str]) -> np.ndarray:
        """Vectorised argmax class ids."""
        return self.predict_proba(texts).argmax(axis=1)

    def predict(self, texts: Sequence[str]) -> list[WellnessDimension]:
        """Predicted wellness dimensions (requires the six-class head)."""
        if self.n_classes != len(DIMENSIONS):
            raise ValueError(
                f"model has {self.n_classes} classes; expected {len(DIMENSIONS)}"
            )
        return [DIMENSIONS[int(i)] for i in self.predict_ids(texts)]
