"""Batched inference engine shared by every prediction path.

``PredictionEngine`` is the single place where raw texts become class
probabilities: it owns tokenisation, length-bucketed batching (texts are
sorted by token count so each batch pads only to its own longest row
instead of the global maximum), an LRU cache keyed on ``(model-id,
weights-version, text)`` — so in-place weight changes auto-invalidate
cached predictions — and vectorised softmax/argmax post-processing.
``WellnessClassifier``, ``Trainer.predict``, the LIME callback, and the
serving front-end all route through it, so padding waste is paid once
and repeated texts (LIME perturbations, hot traffic) are served from
cache.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.labels import DIMENSIONS, WellnessDimension

__all__ = [
    "EngineStats",
    "LatencyInjectedBackend",
    "PredictionEngine",
    "TraditionalBackend",
    "TransformerBackend",
    "bump_weights_version",
    "softmax_rows",
    "weights_version",
]


def weights_version(model) -> int:
    """Monotonic count of in-place weight mutations on ``model``.

    Zero for a model that has never been mutated after construction.
    The counter is mixed into every prediction-cache key, so bumping it
    (see :func:`bump_weights_version`) makes every engine over the model
    — including serving replicas — miss its cache instead of serving
    predictions computed with the old weights.
    """
    return int(getattr(model, "_weights_version", 0))


def bump_weights_version(model) -> int:
    """Mark ``model``'s weights as changed; returns the new version.

    Called whenever fitted state mutates in place: ``Module.
    load_state_dict`` (checkpoint restore, pretraining-cache restore),
    ``restore_array_state`` (classical estimators), ``Trainer.fit``
    epoch boundaries, and ``WellnessClassifier.fit``/``load``.
    """
    version = weights_version(model) + 1
    model._weights_version = version
    return version


def softmax_rows(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


@dataclass
class EngineStats:
    """Counters the engine accumulates across calls."""

    requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    batches: int = 0
    padded_tokens: int = 0
    padded_tokens_naive: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def padding_saved(self) -> float:
        """Fraction of pad tokens avoided versus one global-width batch."""
        if self.padded_tokens_naive == 0:
            return 0.0
        return 1.0 - self.padded_tokens / self.padded_tokens_naive

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Add ``other``'s counters into this one (replica aggregation)."""
        self.requests += other.requests
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.batches += other.batches
        self.padded_tokens += other.padded_tokens
        self.padded_tokens_naive += other.padded_tokens_naive
        return self


class TraditionalBackend:
    """TF-IDF + classical-ML probability backend.

    Vectorises the whole batch in one ``transform`` call; models without
    ``predict_proba`` (the SVM) get a softmax over decision margins.
    """

    def __init__(self, vectorizer, model) -> None:
        self.vectorizer = vectorizer
        self.model = model

    @property
    def n_classes(self) -> int:
        return int(self.model.n_classes_)

    @property
    def weights_version(self) -> int:
        """Combined mutation count of the model and the vectorizer."""
        return weights_version(self.model) + weights_version(self.vectorizer)

    def proba_batch(self, texts: list[str]) -> np.ndarray:
        features = self.vectorizer.transform(texts)
        if hasattr(self.model, "predict_proba"):
            return np.asarray(self.model.predict_proba(features), dtype=np.float64)
        margins = np.asarray(self.model.decision_function(features))
        return softmax_rows(margins)


class TransformerBackend:
    """Token-id probability backend over a :class:`TransformerClassifier`.

    Exposes per-text encoding so the engine can sort by length and pad
    per bucket instead of per call.  Forward passes are serialised with
    a per-backend lock: ``no_grad()`` toggles a process-global autograd
    flag and ``eval()``/``train()`` flip shared module state, so
    interleaved calls from server worker threads (replicas share this
    backend) could strand the process with gradients disabled or build
    tape mid-inference.  The numpy forward is GIL-bound anyway, so the
    lock does not cost the multi-worker path real parallelism.
    """

    def __init__(self, model) -> None:
        self.model = model
        self._forward_lock = threading.Lock()

    @property
    def n_classes(self) -> int:
        return int(self.model.n_classes)

    @property
    def weights_version(self) -> int:
        # TransformerClassifier exposes the version as a property; bare
        # modules fall back to the raw-attribute helper.
        version = getattr(self.model, "weights_version", None)
        return int(version) if version is not None else weights_version(self.model)

    def encode(self, text: str) -> list[int]:
        return self.model.encode_ids(text)

    def proba_rows(self, rows: list[list[int]]) -> np.ndarray:
        from repro.nn.tensor import no_grad

        model = self.model
        with self._forward_lock:
            was_training = model.training
            model.eval()
            try:
                with no_grad():
                    batch = model.pad_rows(rows)
                    logits = model.forward(batch).data
            finally:
                if was_training:
                    model.train()
        return softmax_rows(np.asarray(logits, dtype=np.float64))


class LatencyInjectedBackend:
    """Delegating backend wrapper that adds fixed per-batch latency.

    Load-testing aid (``holistix-serve --inject-latency-ms``): makes a
    fast model behave like a slow one so overload behaviour (queue
    growth, 429s, drain timing) can be exercised deterministically —
    the e2e smoke job uses it to force a real shed through HTTP.  Lives
    at the engine layer so multi-process worker specs can rebuild the
    wrapper inside each worker process.
    """

    def __init__(self, inner, delay_s: float) -> None:
        self._inner = inner
        self._delay_s = delay_s

    def __getattr__(self, name: str):
        # Everything not overridden (n_classes, weights_version, encode
        # when the inner backend has one) passes straight through, so
        # the engine sees the inner backend's capabilities unchanged.
        return getattr(self._inner, name)

    def proba_batch(self, texts):
        time.sleep(self._delay_s)
        return self._inner.proba_batch(texts)

    def proba_rows(self, rows):
        time.sleep(self._delay_s)
        return self._inner.proba_rows(rows)


class PredictionEngine:
    """Cached, batched text → probability engine over one fitted model.

    Parameters
    ----------
    backend:
        :class:`TraditionalBackend` or :class:`TransformerBackend`.
    model_id:
        Identifier mixed into every cache key so caches from different
        models (or model versions) never collide.
    batch_size:
        Maximum texts per forward pass for transformer backends.
    cache_size:
        LRU capacity in texts; ``0`` disables caching.
    """

    def __init__(
        self,
        backend,
        *,
        model_id: str,
        batch_size: int = 64,
        cache_size: int = 2048,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.backend = backend
        self.model_id = model_id
        self.batch_size = batch_size
        self.cache_size = cache_size
        self.stats = EngineStats()
        self._cache: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._cached_version: int | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_traditional(
        cls, vectorizer, model, *, model_id: str, **kwargs
    ) -> "PredictionEngine":
        return cls(TraditionalBackend(vectorizer, model), model_id=model_id, **kwargs)

    @classmethod
    def for_transformer(cls, model, *, model_id: str, **kwargs) -> "PredictionEngine":
        return cls(TransformerBackend(model), model_id=model_id, **kwargs)

    def replicate(self) -> "PredictionEngine":
        """A new engine over the same fitted backend.

        The replica shares the read-only fitted state (model weights,
        vectorizer) but owns a private cache and private stats, so each
        serving worker can run lock-free against its own replica.
        """
        return PredictionEngine(
            self.backend,
            model_id=self.model_id,
            batch_size=self.batch_size,
            cache_size=self.cache_size,
        )

    @property
    def n_classes(self) -> int:
        return self.backend.n_classes

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------
    @property
    def weights_version(self) -> int:
        """The backend's current weights version (0 when untracked)."""
        return int(getattr(self.backend, "weights_version", 0))

    def _cache_get(self, text: str, version: int) -> np.ndarray | None:
        key = (self.model_id, version, text)
        row = self._cache.get(key)
        if row is not None:
            self._cache.move_to_end(key)
        return row

    def _cache_put(self, text: str, row: np.ndarray, version: int) -> None:
        if self.cache_size == 0:
            return
        key = (self.model_id, version, text)
        self._cache[key] = row
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def invalidate(self) -> None:
        """Drop every cached prediction immediately.

        Weight changes are already handled by the versioned cache keys
        (see :func:`bump_weights_version`); call this only to release
        memory or force recomputation at the current version.
        """
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _compute(self, texts: list[str]) -> np.ndarray:
        """Probabilities for unique, uncached texts (batched)."""
        if hasattr(self.backend, "encode"):
            return self._compute_bucketed(texts)
        probs = np.empty((len(texts), self.n_classes), dtype=np.float64)
        for start in range(0, len(texts), self.batch_size):
            chunk = texts[start : start + self.batch_size]
            probs[start : start + len(chunk)] = self.backend.proba_batch(chunk)
            self.stats.batches += 1
        return probs

    def _compute_bucketed(self, texts: list[str]) -> np.ndarray:
        """Length-bucketed transformer inference.

        Sorting by token count before chunking means each batch pads to
        its own longest row; the stats record how many pad tokens that
        saved versus padding everything to the global maximum.
        """
        rows = [self.backend.encode(t) for t in texts]
        order = sorted(range(len(rows)), key=lambda i: (len(rows[i]), i))
        widest = max((len(r) for r in rows), default=0)
        probs = np.empty((len(texts), self.n_classes), dtype=np.float64)
        for start in range(0, len(order), self.batch_size):
            picks = order[start : start + self.batch_size]
            bucket = [rows[i] for i in picks]
            width = max(len(r) for r in bucket)
            probs[picks] = self.backend.proba_rows(bucket)
            self.stats.batches += 1
            self.stats.padded_tokens += sum(width - len(r) for r in bucket)
            self.stats.padded_tokens_naive += sum(widest - len(r) for r in bucket)
        return probs

    def predict_proba(self, texts: Sequence[str]) -> np.ndarray:
        """Probability matrix ``(n, n_classes)``, cache-aware and batched."""
        texts = [str(t) for t in texts]
        self.stats.requests += len(texts)
        # One version for the whole call: keys written here are readable
        # until the next weight mutation, never a mix of two versions.
        version = self.weights_version
        if version != self._cached_version:
            # Entries keyed on a superseded version are unreachable —
            # drop them now instead of letting dead rows hold LRU slots.
            self._cache.clear()
            self._cached_version = version
        out = np.empty((len(texts), self.n_classes), dtype=np.float64)
        pending: dict[str, list[int]] = {}
        for i, text in enumerate(texts):
            row = self._cache_get(text, version)
            if row is not None:
                self.stats.cache_hits += 1
                out[i] = row
            else:
                # Duplicate uncached texts are computed once.
                pending.setdefault(text, []).append(i)
        if pending:
            self.stats.cache_misses += len(pending)
            unique = list(pending)
            computed = self._compute(unique)
            for text, row in zip(unique, computed):
                self._cache_put(text, row, version)
                for i in pending[text]:
                    out[i] = row
        return out

    def predict_ids(self, texts: Sequence[str]) -> np.ndarray:
        """Vectorised argmax class ids."""
        return self.predict_proba(texts).argmax(axis=1)

    def predict(self, texts: Sequence[str]) -> list[WellnessDimension]:
        """Predicted wellness dimensions (requires the six-class head)."""
        if self.n_classes != len(DIMENSIONS):
            raise ValueError(
                f"model has {self.n_classes} classes; expected {len(DIMENSIONS)}"
            )
        return [DIMENSIONS[int(i)] for i in self.predict_ids(texts)]
