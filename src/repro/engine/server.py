"""Replicated micro-batching serving front-end over ``PredictionEngine``.

Stdlib-only: callers submit single texts from any thread and get a
:class:`concurrent.futures.Future`; ``workers`` serving threads — each
owning its own :class:`PredictionEngine` replica over the shared
read-only fitted model — pull from one bounded admission queue and
coalesce whatever has queued up (up to ``max_batch_size``, waiting at
most ``max_wait_ms``) into batched engine calls, so concurrent traffic
is served at batch throughput instead of one forward pass per request.

The admission queue is bounded (``max_queue``) and the overload policy
is configurable: ``"block"`` applies backpressure by making ``submit``
wait for queue space, ``"shed"`` fails fast with a typed
:class:`ServerOverloaded` so the caller can retry or degrade.  ``stop``
drains gracefully — every admitted request's future still resolves,
while late ``submit`` calls fail fast with :class:`ServerClosed`.

All serving counters live in a self-locking :class:`ServerStats`;
readers take an immutable :meth:`ServerStats.snapshot` instead of racing
the serving threads.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.analysis.lockcheck import create_lock, require_held
from repro.core.labels import DIMENSIONS, WellnessDimension
from repro.engine.engine import EngineStats, PredictionEngine

if TYPE_CHECKING:
    import numpy as np
    from numpy.typing import NDArray

    from repro.chaos.injector import FaultInjector

    _ProbMatrix = NDArray[np.float64]

__all__ = [
    "BatchingServerBase",
    "InferenceServer",
    "PredictionResult",
    "ServerClosed",
    "ServerOverloaded",
    "ServerStats",
    "StatsSnapshot",
]


class _StopSentinel:
    """Queue marker telling one serving thread to exit; see ``stop()``."""

    __slots__ = ()


_STOP = _StopSentinel()

logger = logging.getLogger(__name__)


class ServerClosed(RuntimeError):
    """``submit()`` on a server that is not accepting requests."""


class ServerOverloaded(RuntimeError):
    """Shed-mode admission rejection: the bounded queue is full.

    Raised by ``submit``/``predict`` when ``overload="shed"`` and the
    admission queue holds ``max_queue`` requests.  The request was never
    admitted; the caller can back off and retry, degrade, or route
    elsewhere.
    """


@dataclass(frozen=True)
class PredictionResult:
    """One served prediction: label, probabilities, and queue latency."""

    text: str
    label: WellnessDimension
    probabilities: tuple[float, ...]
    latency_ms: float


#: One admitted request: (text, resolving future, enqueue timestamp).
_QueueItem = tuple[str, "Future[PredictionResult]", float]


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable, internally consistent copy of the serving counters.

    Taken under the stats lock, so every field belongs to the same
    instant and the percentile window cannot mutate mid-``sorted``.
    ``latencies_ms`` is the bounded recent-request window the
    percentiles are computed over.
    """

    epoch: int
    requests: int
    batches: int
    shed: int
    total_latency_ms: float
    max_latency_ms: float
    largest_batch: int
    started_at: float | None
    stopped_at: float | None
    per_worker_requests: tuple[int, ...]
    latencies_ms: tuple[float, ...]
    # Trailing defaulted fields so older positional constructions keep
    # working: serving-thread deaths (replaced in place) and requests
    # shed because their propagated deadline could not be met.
    worker_thread_deaths: int = 0
    deadline_shed: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    @property
    def mean_latency_ms(self) -> float:
        return self.total_latency_ms / self.requests if self.requests else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests rejected by shed-mode admission."""
        offered = self.requests + self.shed
        return self.shed / offered if offered else 0.0

    def latency_percentile(self, q: float) -> float:
        """Latency at percentile ``q`` in [0, 100] over recent requests."""
        if not self.latencies_ms:
            return 0.0
        ranked = sorted(self.latencies_ms)
        idx = min(len(ranked) - 1, int(round(q / 100.0 * (len(ranked) - 1))))
        return ranked[idx]

    def throughput(self) -> float:
        """Served requests per second of this epoch's uptime."""
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else time.perf_counter()
        elapsed = end - self.started_at
        return self.requests / elapsed if elapsed > 0 else 0.0


class ServerStats:
    """Thread-safe aggregate serving counters.

    All mutation happens under an internal lock; readers call
    :meth:`snapshot` for an immutable, consistent view.  The legacy
    attribute API (``stats.requests``, ``stats.mean_latency_ms``,
    ``stats.latency_percentile(95)``, ``stats.throughput()``) is kept as
    lock-taking delegates to a fresh snapshot.

    Counters are *epoched*: every ``InferenceServer.start()`` after a
    ``stop()`` resets them and bumps ``epoch``, so ``throughput()``
    never mixes a previous epoch's requests (or inter-epoch downtime)
    into the current denominator.  Percentiles are computed over a
    bounded window of the most recent requests so a long-running
    server's memory stays constant.
    """

    def __init__(self, *, n_workers: int = 1, window: int = 10_000) -> None:
        self._lock = create_lock("server.stats")
        self._window = window
        self._epoch = 0
        self._n_workers = n_workers
        with self._lock:
            self._reset_locked()

    def _reset_locked(self) -> None:
        require_held(self._lock, "ServerStats._reset_locked")
        self._requests = 0
        self._batches = 0
        self._shed = 0
        self._total_latency_ms = 0.0
        self._max_latency_ms = 0.0
        self._largest_batch = 0
        self._started_at: float | None = None
        self._stopped_at: float | None = None
        self._per_worker = [0] * self._n_workers
        self._latencies_ms: deque[float] = deque(maxlen=self._window)
        self._worker_deaths = 0
        self._deadline_shed = 0

    # ------------------------------------------------------------------
    # Writers (called by the server under no other lock)
    # ------------------------------------------------------------------
    def mark_started(self) -> None:
        """New epoch: reset counters on restart, stamp the start time."""
        with self._lock:
            if self._epoch > 0:
                self._reset_locked()
            self._epoch += 1
            self._started_at = time.perf_counter()
            self._stopped_at = None

    def mark_stopped(self) -> None:
        with self._lock:
            self._stopped_at = time.perf_counter()

    def record_batch(self, latencies_ms: Sequence[float], *, worker: int = 0) -> None:
        with self._lock:
            self._batches += 1
            self._largest_batch = max(self._largest_batch, len(latencies_ms))
            self._requests += len(latencies_ms)
            self._per_worker[worker] += len(latencies_ms)
            for latency in latencies_ms:
                self._total_latency_ms += latency
                self._max_latency_ms = max(self._max_latency_ms, latency)
                self._latencies_ms.append(latency)

    def record_shed(self, n: int = 1) -> None:
        with self._lock:
            self._shed += n

    def record_worker_death(self) -> None:
        """A serving thread died on an unexpected exception."""
        with self._lock:
            self._worker_deaths += 1

    def record_deadline_shed(self, n: int = 1) -> None:
        """Admission refused a request whose deadline budget was spent.

        Counted apart from overload sheds: an overload shed means the
        server could not keep up, a deadline shed means the *client's*
        remaining budget could not cover expected service time — serving
        it would have burned a worker slot on an answer nobody reads.
        """
        with self._lock:
            self._deadline_shed += n

    # ------------------------------------------------------------------
    # Readers
    # ------------------------------------------------------------------
    def snapshot(self) -> StatsSnapshot:
        """Consistent copy of every counter, taken under the lock."""
        with self._lock:
            return StatsSnapshot(
                epoch=self._epoch,
                requests=self._requests,
                batches=self._batches,
                shed=self._shed,
                total_latency_ms=self._total_latency_ms,
                max_latency_ms=self._max_latency_ms,
                largest_batch=self._largest_batch,
                started_at=self._started_at,
                stopped_at=self._stopped_at,
                per_worker_requests=tuple(self._per_worker),
                latencies_ms=tuple(self._latencies_ms),
                worker_thread_deaths=self._worker_deaths,
                deadline_shed=self._deadline_shed,
            )

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    @property
    def requests(self) -> int:
        with self._lock:
            return self._requests

    @property
    def batches(self) -> int:
        with self._lock:
            return self._batches

    @property
    def shed(self) -> int:
        with self._lock:
            return self._shed

    @property
    def worker_thread_deaths(self) -> int:
        with self._lock:
            return self._worker_deaths

    @property
    def deadline_shed(self) -> int:
        with self._lock:
            return self._deadline_shed

    @property
    def largest_batch(self) -> int:
        with self._lock:
            return self._largest_batch

    @property
    def max_latency_ms(self) -> float:
        with self._lock:
            return self._max_latency_ms

    @property
    def started_at(self) -> float | None:
        with self._lock:
            return self._started_at

    @property
    def stopped_at(self) -> float | None:
        with self._lock:
            return self._stopped_at

    @property
    def mean_batch_size(self) -> float:
        # Scalar reads take the lock directly; only the percentile path
        # needs the O(window) latency copy a snapshot makes.
        with self._lock:
            return self._requests / self._batches if self._batches else 0.0

    @property
    def mean_latency_ms(self) -> float:
        with self._lock:
            if not self._requests:
                return 0.0
            return self._total_latency_ms / self._requests

    def latency_percentile(self, q: float) -> float:
        """Latency at percentile ``q`` in [0, 100] over recent requests."""
        with self._lock:
            window = tuple(self._latencies_ms)
        if not window:
            return 0.0
        ranked = sorted(window)
        idx = min(len(ranked) - 1, int(round(q / 100.0 * (len(ranked) - 1))))
        return ranked[idx]

    def throughput(self) -> float:
        """Served requests per second of the current epoch's uptime."""
        with self._lock:
            started, stopped = self._started_at, self._stopped_at
            requests = self._requests
        if started is None:
            return 0.0
        end = stopped if stopped is not None else time.perf_counter()
        elapsed = end - started
        return requests / elapsed if elapsed > 0 else 0.0


class BatchingServerBase:
    """Bounded-admission micro-batching core shared by every server.

    Owns everything about *admission and coalescing* — the bounded
    FIFO queue, block/shed overload policy, batch collection, future
    resolution, graceful drain/stop with per-worker sentinels, and the
    epoched :class:`ServerStats` — while leaving *how a batch of texts
    becomes probabilities* to subclasses via :meth:`_predict_probs`.

    :class:`InferenceServer` plugs in per-thread engine replicas
    (in-process, GIL-bound compute); :class:`~repro.engine.procserver.
    ProcessInferenceServer` plugs in dispatch pipes to worker processes
    holding shared-memory weights.  Both therefore share byte-identical
    admission semantics, drain behaviour, and stats — the contract the
    HTTP gateway and the oracle tests rely on.

    Subclass hooks (all optional except :meth:`_predict_probs`):

    * ``_before_start()`` — runs under the lifecycle mutex before the
      serving threads launch (spawn worker processes here).
    * ``_on_worker_start(worker)`` / ``_on_worker_exit(worker)`` — first
      and last thing each serving thread does.
    * ``_after_stop()`` — runs once per stop after every serving thread
      joined (tear down processes / shared memory here).
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 1024,
        overload: str = "block",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if overload not in ("block", "shed"):
            raise ValueError('overload must be "block" or "shed"')
        self.workers = workers
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.max_queue = max_queue
        self.overload = overload
        self.stats = ServerStats(n_workers=workers)
        # One mutex guards the deque, the accepting flag, and the thread
        # list; two conditions on it separate consumer wake-ups
        # (_not_empty) from producer wake-ups (_not_full).  Submissions
        # and the stop sentinels are appended under the same mutex, so
        # FIFO order guarantees every admitted request precedes every
        # sentinel and is served before a worker exits.
        self._mutex = create_lock("server.mutex")
        self._not_empty = threading.Condition(self._mutex)
        self._not_full = threading.Condition(self._mutex)
        self._items: deque[_QueueItem | _StopSentinel] = deque()
        self._accepting = False
        self._stopping = False
        self._threads: list[threading.Thread] = []
        # Chaos seam: a repro.chaos.FaultInjector, or None.  The hot
        # path pays one attribute check when unarmed — nothing else.
        self.chaos: FaultInjector | None = None

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _predict_probs(self, worker: int, texts: list[str]) -> _ProbMatrix:
        """Probability matrix ``(len(texts), n_classes)`` for one batch."""
        raise NotImplementedError

    def engine_stats(self) -> EngineStats:
        """Aggregate :class:`EngineStats` across every worker."""
        raise NotImplementedError

    @property
    def weights_version(self) -> int:
        """Version token of the served weights (0 = never reloaded).

        The uniform accessor the serving fleet reads for its
        ``served_by`` envelope: the shared-memory process server bumps
        it on every hot reload, subclasses over a live engine report
        the engine's token, and static pools stay at 0.
        """
        return 0

    def _before_start(self) -> None:
        pass

    def _on_worker_start(self, worker: int) -> None:
        pass

    def _on_worker_exit(self, worker: int) -> None:
        pass

    def _after_stop(self) -> None:
        pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return any(t.is_alive() for t in self._threads)

    def start(self) -> "BatchingServerBase":
        with self._mutex:
            # _stopping covers the window where an in-flight stop() has
            # released the mutex to join workers that already exited;
            # starting there would let stop() finish against the wrong
            # thread list and leave _stopping latched True forever.
            if self.running or self._stopping:
                raise RuntimeError("server is already running")
            self._before_start()
            self.stats.mark_started()
            self._threads = [
                threading.Thread(
                    target=self._serve_loop,
                    args=(i,),
                    name=f"inference-server-{i}",
                    daemon=True,
                )
                for i in range(self.workers)
            ]
            for thread in self._threads:
                thread.start()
            self._accepting = True
        return self

    @property
    def accepting(self) -> bool:
        """Whether ``submit`` is currently admitting new requests."""
        with self._mutex:
            return self._accepting

    def drain(self) -> None:
        """Close admission without stopping the workers.

        The graceful-shutdown hook (SIGTERM in the HTTP gateway): after
        ``drain()`` every new ``submit`` — including calls already
        blocked waiting for queue space — fails fast with
        :class:`ServerClosed`, while every admitted request keeps being
        served and its future still resolves.  Follow with :meth:`stop`
        once in-flight callers have collected their results.  Idempotent
        and a no-op on a server that never started.
        """
        with self._mutex:
            self._accepting = False
            self._not_full.notify_all()  # blocked submitters fail fast

    def stop(self) -> None:
        """Drain admitted requests, then stop every worker.

        Every future returned by ``submit`` before this call resolves;
        ``submit`` calls from here on (including ones blocked waiting
        for queue space) fail fast with :class:`ServerClosed`.
        """
        with self._mutex:
            threads = self._threads
            if threads and not self._stopping:
                # Exactly one stop() plants the sentinels; a concurrent
                # second call must not add more (leftovers would make a
                # later start()'s workers exit immediately).
                self._stopping = True
                self._accepting = False
                for _ in threads:
                    self._items.append(_STOP)
                self._not_empty.notify_all()
                self._not_full.notify_all()  # blocked submitters fail fast
        for thread in threads:
            thread.join()
        with self._mutex:
            if bool(threads) and self._threads is threads:
                # Stamp the stop inside the mutex: once _stopping drops,
                # a racing start() may open a new epoch, and a late
                # mark_stopped() would freeze that epoch's throughput
                # denominator.  (Lock order server mutex -> stats lock
                # matches start()'s mark_started(); stats methods never
                # take the server mutex, so no inversion.)
                self.stats.mark_stopped()
                self._after_stop()
                self._threads = []
                self._stopping = False

    def __enter__(self) -> "BatchingServerBase":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, text: str) -> "Future[PredictionResult]":
        """Enqueue one text; the future resolves to a PredictionResult.

        Raises :class:`ServerClosed` if the server is not accepting
        (never started, stopped, or stopped while this call was blocked
        on a full queue) and :class:`ServerOverloaded` when
        ``overload="shed"`` and the queue is full.
        """
        future: "Future[PredictionResult]" = Future()
        with self._mutex:
            if not self._accepting:
                raise ServerClosed("server is not running (call start())")
            if len(self._items) >= self.max_queue:
                if self.overload == "shed":
                    self.stats.record_shed()
                    raise ServerOverloaded(
                        f"admission queue full ({self.max_queue} pending)"
                    )
                while len(self._items) >= self.max_queue and self._accepting:
                    self._not_full.wait()
                if not self._accepting:
                    raise ServerClosed("server stopped while awaiting queue space")
            self._items.append((text, future, time.perf_counter()))
            self._not_empty.notify()
        return future

    def predict(
        self, texts: Sequence[str], *, timeout: float | None = 30.0
    ) -> list[PredictionResult]:
        """Submit many texts and block until all are served.

        ``timeout`` is one shared deadline for the whole call, not a
        per-future allowance: with ``n`` texts the worst case is
        ``timeout`` seconds, never ``n × timeout``.

        If admission fails partway (shed or stop), the already-queued
        futures are cancelled best-effort before the error propagates.
        """
        futures: list["Future[PredictionResult]"] = []
        try:
            for t in texts:
                futures.append(self.submit(t))
        except (ServerClosed, ServerOverloaded):
            for f in futures:
                f.cancel()
            raise
        if timeout is None:
            return [f.result() for f in futures]
        deadline = time.perf_counter() + timeout
        return [
            f.result(timeout=max(0.0, deadline - time.perf_counter()))
            for f in futures
        ]

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _collect_batch(self) -> tuple[list[_QueueItem], bool]:
        """Block for one request, then coalesce briefly. -> (batch, stop)"""
        batch: list[_QueueItem] = []
        stop = False
        with self._mutex:
            while not self._items:
                self._not_empty.wait()
            deadline = time.perf_counter() + self.max_wait_ms / 1000.0
            while len(batch) < self.max_batch_size and not stop:
                if self._items:
                    item = self._items.popleft()
                    if isinstance(item, _StopSentinel):
                        stop = True
                    else:
                        batch.append(item)
                    continue
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._not_empty.wait(remaining)
            if batch:
                self._not_full.notify(len(batch))
        return batch, stop

    def _serve_batch(self, batch: list[_QueueItem], worker: int) -> None:
        # Honour client-side cancellation; a cancelled future must not
        # be set_result (InvalidStateError) and needs no inference.
        live = [item for item in batch if item[1].set_running_or_notify_cancel()]
        if not live:
            return
        texts = [text for text, _, _ in live]
        try:
            probs = self._predict_probs(worker, texts)
            ids = probs.argmax(axis=1)
        except BaseException as error:  # propagate to every waiting caller
            for _, future, _ in live:
                future.set_exception(error)
            return
        now = time.perf_counter()
        results: list[tuple[Future[PredictionResult], PredictionResult]] = []
        for (text, future, enqueued), row, class_id in zip(live, probs, ids):
            latency_ms = (now - enqueued) * 1000.0
            results.append(
                (
                    future,
                    PredictionResult(
                        text=text,
                        label=DIMENSIONS[int(class_id)],
                        probabilities=tuple(float(p) for p in row),
                        latency_ms=latency_ms,
                    ),
                )
            )
        self.stats.record_batch(
            [result.latency_ms for _, result in results], worker=worker
        )
        for future, result in results:
            future.set_result(result)

    def _spawn_replacement(self, worker: int) -> bool:
        """Hand slot ``worker`` to a fresh serving thread after a death.

        Returns False (no replacement) when the server is stopping or
        already stopped — a replacement there would block forever on a
        stop sentinel its predecessor may already have consumed.
        """
        with self._mutex:
            if self._stopping or not self._threads:
                return False
            thread = threading.Thread(
                target=self._serve_loop,
                args=(worker,),
                name=f"inference-server-{worker}",
                daemon=True,
            )
            # In-place so a concurrent stop() holding the same list
            # object joins the replacement instead of the corpse.
            self._threads[worker] = thread
            thread.start()
            return True

    def _serve_loop(self, worker: int) -> None:
        # No drain pass needed after a sentinel: submissions and the
        # sentinels share the mutex, so FIFO order puts every admitted
        # request ahead of every _STOP, and each worker consumes at most
        # one sentinel (it stops collecting the moment it sees one).
        stop = False
        replaced = False
        batch: list[_QueueItem] = []
        try:
            self._on_worker_start(worker)
            while True:
                batch, stop = self._collect_batch()
                if batch:
                    chaos = self.chaos
                    if chaos is not None:
                        chaos.before_batch(worker)
                    self._serve_batch(batch, worker)
                batch = []
                if stop:
                    return
        except Exception as error:
            # _serve_batch routes engine errors to the waiting futures,
            # so anything escaping to here is unexpected — letting it
            # kill the thread would silently strand this worker's queue
            # share.  Log, count, fail the in-flight batch's futures
            # (callers must see the error now, not hang to their own
            # deadline), and hand the slot to a replacement.
            logger.exception("serving thread %d died unexpectedly", worker)
            self.stats.record_worker_death()
            for item in batch:
                try:
                    item[1].set_exception(error)
                except Exception:  # noqa: BLE001 - already resolved/cancelled
                    pass
            if not stop:
                replaced = self._spawn_replacement(worker)
        finally:
            if not replaced:
                self._on_worker_exit(worker)


class InferenceServer(BatchingServerBase):
    """Coalesce single-text requests into batched calls on engine replicas.

    The in-process (threaded) server: each serving thread owns a
    :meth:`PredictionEngine.replicate` replica over the shared read-only
    fitted backend.  Numpy forwards hold the GIL, so thread workers
    overlap queue waits and batching overhead but not model compute —
    for compute parallelism across cores see
    :class:`repro.engine.procserver.ProcessInferenceServer`, which runs
    the same admission core over worker processes.

    Parameters
    ----------
    engine:
        A fitted :class:`PredictionEngine`.  The server never mutates it;
        each worker thread serves through its own
        :meth:`PredictionEngine.replicate` replica (private cache and
        stats over the shared read-only fitted backend).
    workers:
        Number of serving threads (and engine replicas).
    max_batch_size:
        Hard cap on texts per coalesced batch.
    max_wait_ms:
        How long a worker holds an open batch hoping for more traffic;
        the first request in a batch never waits longer than this before
        inference starts.
    max_queue:
        Bound on requests admitted but not yet picked up by a worker.
    overload:
        ``"block"`` — ``submit`` waits for queue space (backpressure);
        ``"shed"`` — ``submit`` raises :class:`ServerOverloaded`
        immediately when the queue is full (load shedding).
    """

    def __init__(
        self,
        engine: PredictionEngine,
        *,
        workers: int = 1,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 1024,
        overload: str = "block",
    ) -> None:
        super().__init__(
            workers=workers,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            max_queue=max_queue,
            overload=overload,
        )
        self.engine = engine
        self._engines = tuple(engine.replicate() for _ in range(workers))

    @property
    def engines(self) -> tuple[PredictionEngine, ...]:
        """The per-worker engine replicas (index == worker index)."""
        return self._engines

    @property
    def model_id(self) -> str:
        """The served model's identifier (from the underlying engine)."""
        return self.engine.model_id

    @property
    def weights_version(self) -> int:
        """The engine's weights token (in-place model mutation counter)."""
        return int(getattr(self.engine, "weights_version", 0))

    def _predict_probs(self, worker: int, texts: list[str]) -> _ProbMatrix:
        return self._engines[worker].predict_proba(texts)

    def engine_stats(self) -> EngineStats:
        """Aggregate :class:`EngineStats` across every worker replica."""
        total = EngineStats()
        for engine in self._engines:
            total.merge(engine.stats)
        return total
