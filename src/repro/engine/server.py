"""Micro-batching serving front-end over a :class:`PredictionEngine`.

Stdlib-only: callers submit single texts from any thread and get a
:class:`concurrent.futures.Future`; a worker thread coalesces whatever
has queued up (up to ``max_batch_size``, waiting at most
``max_wait_ms``) into one engine call, so concurrent traffic is served
at batch throughput instead of one forward pass per request.  The
server keeps throughput and latency counters for capacity planning.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.labels import WellnessDimension
from repro.engine.engine import PredictionEngine

__all__ = ["InferenceServer", "PredictionResult", "ServerStats"]

_STOP = object()


@dataclass(frozen=True)
class PredictionResult:
    """One served prediction: label, probabilities, and queue latency."""

    text: str
    label: WellnessDimension
    probabilities: tuple[float, ...]
    latency_ms: float


@dataclass
class ServerStats:
    """Aggregate serving counters (guarded by the server's lock).

    Percentiles are computed over a bounded window of the most recent
    requests so a long-running server's memory stays constant.
    """

    requests: int = 0
    batches: int = 0
    total_latency_ms: float = 0.0
    max_latency_ms: float = 0.0
    largest_batch: int = 0
    started_at: float | None = None
    stopped_at: float | None = None
    _latencies_ms: deque = field(
        default_factory=lambda: deque(maxlen=10_000), repr=False
    )

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    @property
    def mean_latency_ms(self) -> float:
        return self.total_latency_ms / self.requests if self.requests else 0.0

    def latency_percentile(self, q: float) -> float:
        """Latency at percentile ``q`` in [0, 100] over recent requests."""
        if not self._latencies_ms:
            return 0.0
        ranked = sorted(self._latencies_ms)
        idx = min(len(ranked) - 1, int(round(q / 100.0 * (len(ranked) - 1))))
        return ranked[idx]

    def throughput(self) -> float:
        """Served requests per second of server uptime."""
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else time.perf_counter()
        elapsed = end - self.started_at
        return self.requests / elapsed if elapsed > 0 else 0.0


class InferenceServer:
    """Coalesce single-text requests into batched engine calls.

    Parameters
    ----------
    engine:
        A fitted :class:`PredictionEngine`.
    max_batch_size:
        Hard cap on texts per coalesced batch.
    max_wait_ms:
        How long the worker holds an open batch hoping for more traffic;
        the first request in a batch never waits longer than this before
        inference starts.
    """

    def __init__(
        self,
        engine: PredictionEngine,
        *,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.engine = engine
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.stats = ServerStats()
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        # Guards the accepting flag: submissions and the stop sentinel are
        # enqueued under it, so FIFO order guarantees every accepted
        # request precedes the sentinel and is served before shutdown.
        self._state_lock = threading.Lock()
        self._accepting = False
        self._worker: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._worker is not None and self._worker.is_alive()

    def start(self) -> "InferenceServer":
        with self._state_lock:
            if self.running:
                raise RuntimeError("server is already running")
            self.stats.started_at = time.perf_counter()
            self.stats.stopped_at = None
            self._worker = threading.Thread(
                target=self._serve_loop, name="inference-server", daemon=True
            )
            self._worker.start()
            self._accepting = True
        return self

    def stop(self) -> None:
        """Drain outstanding requests, then stop the worker."""
        with self._state_lock:
            if not self.running:
                return
            self._accepting = False
            worker = self._worker
            self._queue.put(_STOP)
        worker.join()
        self._worker = None
        self.stats.stopped_at = time.perf_counter()

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, text: str) -> "Future[PredictionResult]":
        """Enqueue one text; the future resolves to a PredictionResult."""
        future: "Future[PredictionResult]" = Future()
        with self._state_lock:
            if not self._accepting:
                raise RuntimeError("server is not running (call start())")
            self._queue.put((text, future, time.perf_counter()))
        return future

    def predict(
        self, texts: Sequence[str], *, timeout: float | None = 30.0
    ) -> list[PredictionResult]:
        """Submit many texts and block until all are served."""
        futures = [self.submit(t) for t in texts]
        return [f.result(timeout=timeout) for f in futures]

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _collect_batch(self) -> tuple[list, bool]:
        """Block for one request, then coalesce briefly. -> (batch, stop)"""
        first = self._queue.get()
        if first is _STOP:
            return [], True
        batch = [first]
        deadline = time.perf_counter() + self.max_wait_ms / 1000.0
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.perf_counter()
            try:
                item = self._queue.get(timeout=max(remaining, 0.0))
            except queue.Empty:
                break
            if item is _STOP:
                return batch, True
            batch.append(item)
        return batch, False

    def _serve_batch(self, batch: list) -> None:
        texts = [text for text, _, _ in batch]
        try:
            probs = self.engine.predict_proba(texts)
            ids = probs.argmax(axis=1)
        except BaseException as error:  # propagate to every waiting caller
            for _, future, _ in batch:
                future.set_exception(error)
            return
        from repro.core.labels import DIMENSIONS

        now = time.perf_counter()
        results = []
        for (text, future, enqueued), row, class_id in zip(batch, probs, ids):
            latency_ms = (now - enqueued) * 1000.0
            results.append(
                (
                    future,
                    PredictionResult(
                        text=text,
                        label=DIMENSIONS[int(class_id)],
                        probabilities=tuple(float(p) for p in row),
                        latency_ms=latency_ms,
                    ),
                )
            )
        with self._lock:
            stats = self.stats
            stats.batches += 1
            stats.largest_batch = max(stats.largest_batch, len(batch))
            for _, result in results:
                stats.requests += 1
                stats.total_latency_ms += result.latency_ms
                stats.max_latency_ms = max(stats.max_latency_ms, result.latency_ms)
                stats._latencies_ms.append(result.latency_ms)
        for future, result in results:
            future.set_result(result)

    def _serve_loop(self) -> None:
        # No drain needed after the sentinel: submissions and the sentinel
        # share the state lock, so FIFO order puts every accepted request
        # ahead of _STOP and _collect_batch has already served them.
        while True:
            batch, stop = self._collect_batch()
            if batch:
                self._serve_batch(batch)
            if stop:
                return
