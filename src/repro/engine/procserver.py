"""Multi-process serving backend: GIL-free compute over shared weights.

:class:`ProcessInferenceServer` runs the exact admission core of the
threaded :class:`~repro.engine.server.InferenceServer` (it subclasses
:class:`~repro.engine.server.BatchingServerBase`, so bounded admission,
block/shed overload, graceful drain, and epoched stats are shared code,
not re-implementations) — but each serving thread is a thin *companion*
that forwards coalesced batches over a :func:`multiprocessing.Pipe` to
its own **worker process**.  Numpy forwards in separate processes do
not contend on one GIL, so throughput scales with cores.

Weights travel exactly once: the parent publishes the checkpoint arrays
into one :class:`~repro.nn.serialization.SharedCheckpoint` segment and
every worker attaches zero-copy read-only numpy views over the same
physical pages.  Traditional models serve straight off the views;
transformer workers copy once into their parameters via
``load_state_dict``.  Hot reload is the ``weights_version`` protocol:
:meth:`ProcessInferenceServer.reload_weights` overwrites the shared
bytes in place and bumps the version token; workers poll the token per
batch and rebuild their engine from the updated views when it moves.

Failure handling: a worker process that dies mid-request is respawned
by its companion thread and the batch is retried once (inference is
side-effect-free); ``/healthz`` surfaces per-worker liveness through
:meth:`worker_processes` and :meth:`ensure_workers` respawns dead
workers between requests.  Shared-memory cleanup is owned by the
parent: the segment is unlinked in ``_after_stop`` on every stop path
(clean ``stop()``, SIGTERM drain through the gateway), with the
interpreter's resource tracker as the crash safety net.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.lockcheck import create_lock, require_held
from repro.engine.engine import EngineStats, LatencyInjectedBackend
from repro.engine.server import BatchingServerBase
from repro.nn.serialization import SharedCheckpoint, SharedManifest

__all__ = [
    "FactoryEngineSpec",
    "ProcessInferenceServer",
    "RemoteWorkerError",
    "SharedCheckpointEngineSpec",
]


logger = logging.getLogger(__name__)


class RemoteWorkerError(RuntimeError):
    """A worker process failed to serve a batch (it died twice, or the
    remote inference raised; the remote traceback is in the message)."""


# ----------------------------------------------------------------------
# Worker-side engine specs (picklable: they travel over spawn/fork)
# ----------------------------------------------------------------------
class _WorkerRuntime:
    """What one worker process holds: an engine and its weight source.

    ``maybe_refresh`` is the hot-reload poll: when the shared segment's
    ``weights_version`` token moves, the engine is rebuilt from the
    (already updated) views.  Engine stats survive rebuilds — the old
    engine's counters fold into ``_stats_base`` so the parent's
    aggregation never goes backwards.
    """

    def __init__(self, spec, shared: SharedCheckpoint | None, engine) -> None:
        self._spec = spec
        self._shared = shared
        self.engine = engine
        self._version = shared.weights_version if shared is not None else 0
        self._stats_base = EngineStats()

    def maybe_refresh(self) -> None:
        if self._shared is None:
            return
        version = self._shared.weights_version
        if version != self._version:
            self._stats_base.merge(self.engine.stats)
            self.engine = self._spec.build_engine(self._shared)
            self._version = version

    def stats(self) -> EngineStats:
        return EngineStats().merge(self._stats_base).merge(self.engine.stats)

    def close(self) -> None:
        # Drop the engine first: traditional backends hold numpy views
        # into the segment, and a view pins the buffer shm.close() needs
        # released (BufferError otherwise).
        self.engine = None
        if self._shared is not None:
            self._shared.close()
            self._shared = None


@dataclass(frozen=True)
class SharedCheckpointEngineSpec:
    """Recipe a worker process follows to serve a shared checkpoint.

    Plain picklable data: the :class:`SharedManifest` (segment name +
    array layout), the checkpoint ``config`` dict, and the engine
    options.  The worker attaches the segment and rebuilds a fitted
    classifier from the views via ``WellnessClassifier.from_state`` —
    no checkpoint file I/O, no per-worker copy of traditional weights.
    """

    manifest: SharedManifest
    config: dict
    model_id: str
    cache_size: int = 2048
    batch_size: int = 64
    inject_latency_ms: float = 0.0

    def connect(self) -> _WorkerRuntime:
        shared = SharedCheckpoint.attach(self.manifest)
        return _WorkerRuntime(self, shared, self.build_engine(shared))

    def build_engine(self, shared: SharedCheckpoint):
        from repro.core.pipeline import WellnessClassifier
        from repro.engine.registry import build_engine

        classifier = WellnessClassifier.from_state(shared.arrays, self.config)
        engine = build_engine(
            self.config["baseline"],
            model=classifier.model,
            vectorizer=classifier.vectorizer,
            model_id=self.model_id,
            cache_size=self.cache_size,
            batch_size=self.batch_size,
        )
        if self.inject_latency_ms > 0:
            engine.backend = LatencyInjectedBackend(
                engine.backend, self.inject_latency_ms / 1000.0
            )
        return engine


@dataclass(frozen=True)
class FactoryEngineSpec:
    """Worker-side engine built by a plain callable (tests, benchmarks).

    ``factory`` must be picklable — a module-level function — and return
    a fitted :class:`~repro.engine.engine.PredictionEngine` when called
    inside the worker process.  No shared memory is involved.
    """

    factory: object
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    model_id: str = "factory-engine"

    def connect(self) -> _WorkerRuntime:
        return _WorkerRuntime(self, None, self.factory(*self.args, **self.kwargs))


def _worker_main(spec, conn) -> None:
    """Worker-process loop: build the engine, then serve batches.

    Protocol (parent -> worker): ``("batch", [texts])`` then one reply,
    or ``("stop",)`` to exit.  Replies: ``("ready", pid)`` once after a
    successful build, then per batch either ``("result", probs, stats)``
    (cumulative :class:`EngineStats` piggybacks on every reply) or
    ``("error", summary, traceback)``.  EOF on the pipe means the parent
    is gone — exit instead of orphaning.
    """
    # The parent coordinates drain; a terminal Ctrl-C must not kill
    # workers before admitted futures resolve.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    try:
        runtime = spec.connect()
    except BaseException as error:
        try:
            conn.send(
                ("error", f"{type(error).__name__}: {error}", traceback.format_exc())
            )
        except (BrokenPipeError, OSError):
            pass
        conn.close()
        return
    try:
        conn.send(("ready", os.getpid()))
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message[0] == "stop":
                return
            texts = message[1]
            try:
                runtime.maybe_refresh()
                probs = runtime.engine.predict_proba(texts)
            except BaseException as error:
                conn.send(
                    (
                        "error",
                        f"{type(error).__name__}: {error}",
                        traceback.format_exc(),
                    )
                )
                continue
            conn.send(("result", probs, runtime.stats()))
    except (BrokenPipeError, OSError):  # parent vanished mid-reply
        return
    finally:
        runtime.close()
        conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _WorkerHandle:
    """Parent-side record of one worker process and its dispatch pipe."""

    __slots__ = ("process", "conn", "pid", "error", "closed")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.pid: int | None = None
        self.error: str | None = None
        self.closed = False

    def alive(self) -> bool:
        return not self.closed and self.process.is_alive()


class ProcessInferenceServer(BatchingServerBase):
    """Micro-batching server whose workers are separate processes.

    Same client API, admission semantics, drain behaviour, and stats as
    the threaded :class:`~repro.engine.server.InferenceServer` (shared
    base class), but each worker slot owns a child process serving
    through zero-copy shared-memory weights — compute runs outside the
    parent's GIL and scales with cores.

    Construction — one of:

    * :meth:`from_checkpoint` — load a ``WellnessClassifier.save``
      checkpoint once in the parent and publish it to shared memory.
    * :meth:`from_factory` — each worker builds its engine from a
      picklable module-level factory (tests, benchmarks).

    ``start()`` publishes the shared segment (checkpoint mode) and
    spawns the worker processes; :meth:`wait_ready` blocks until every
    worker has built its engine.  ``stop()`` drains admitted requests,
    sends every worker a stop message, reaps the processes, and unlinks
    the shared segment.  A worker that dies mid-request is respawned
    and the batch retried once (inference is side-effect-free).
    """

    def __init__(
        self,
        spec=None,
        *,
        arrays: dict | None = None,
        config: dict | None = None,
        model_id: str | None = None,
        workers: int = 2,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 1024,
        overload: str = "block",
        start_method: str | None = None,
        cache_size: int = 2048,
        batch_size: int = 64,
        inject_latency_ms: float = 0.0,
        spawn_timeout_s: float = 120.0,
        supervisor_interval_s: float = 0.5,
        respawn_backoff_base_s: float = 0.25,
        respawn_backoff_max_s: float = 5.0,
        crash_loop_threshold: int = 5,
        crash_loop_window_s: float = 30.0,
    ) -> None:
        checkpoint_mode = arrays is not None or config is not None
        if checkpoint_mode and (arrays is None or config is None):
            raise ValueError("checkpoint mode needs both arrays and config")
        if spec is None and not checkpoint_mode:
            raise ValueError("provide either a worker spec or arrays+config")
        if spec is not None and checkpoint_mode:
            raise ValueError("provide either a worker spec or arrays+config, not both")
        super().__init__(
            workers=workers,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            max_queue=max_queue,
            overload=overload,
        )
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = self._ctx.get_start_method()
        self._arrays = arrays
        self._config = config
        self._static_spec = spec
        self._engine_opts = {
            "cache_size": cache_size,
            "batch_size": batch_size,
            "inject_latency_ms": inject_latency_ms,
        }
        if model_id is None:
            if spec is not None:
                model_id = getattr(spec, "model_id", "process-server")
            else:
                model_id = f"{config.get('baseline', 'model')}@shared"
        self._model_id = model_id
        self._spawn_timeout_s = spawn_timeout_s
        self._shared: SharedCheckpoint | None = None
        self._spec = None
        self._handles: list[_WorkerHandle | None] = [None] * workers
        # Per-slot locks are stable across respawns: a companion thread
        # holds its slot for the whole send/recv round-trip, so there is
        # exactly one outstanding batch per worker and ensure_workers()
        # can probe with a non-blocking acquire.
        self._slot_locks = [create_lock(f"procserver.slot{i}") for i in range(workers)]
        self._ready_events = [threading.Event() for _ in range(workers)]
        self._restarts = [0] * workers
        self._stats_lock = create_lock("procserver.stats")
        self._stats_base = [EngineStats() for _ in range(workers)]
        self._stats_latest = [EngineStats() for _ in range(workers)]
        # Supervisor: a background thread that respawns dead workers
        # within a bounded interval — liveness no longer depends on
        # /healthz probes or traffic hitting the dead slot.  Respawns
        # back off exponentially per slot, and a slot that keeps dying
        # (crash loop) is retired instead of respawned forever; healthz
        # then reports it dead and the gateway flips to "degraded".
        if supervisor_interval_s <= 0:
            raise ValueError("supervisor_interval_s must be positive")
        if crash_loop_threshold < 2:
            raise ValueError("crash_loop_threshold must be >= 2")
        self._supervisor_interval_s = supervisor_interval_s
        self._respawn_backoff_base_s = respawn_backoff_base_s
        self._respawn_backoff_max_s = respawn_backoff_max_s
        self._crash_loop_threshold = crash_loop_threshold
        self._crash_loop_window_s = crash_loop_window_s
        self._supervisor_stop = threading.Event()
        self._supervisor_thread: threading.Thread | None = None
        self._backoff_until = [0.0] * workers
        self._death_history: list[deque] = [deque() for _ in range(workers)]
        self._crash_looped = [False] * workers

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls, path: str | Path, *, model_id: str | None = None, **kwargs
    ) -> "ProcessInferenceServer":
        """Server over a ``WellnessClassifier.save`` checkpoint directory.

        The checkpoint is read exactly once (here, in the parent); the
        arrays are published to shared memory on ``start()`` and worker
        processes attach views — they never touch the checkpoint files.
        """
        from repro.nn.serialization import load_checkpoint

        arrays, config = load_checkpoint(path)
        if model_id is None:
            model_id = f"{config['baseline']}@{Path(path).name}"
        return cls(arrays=arrays, config=config, model_id=model_id, **kwargs)

    @classmethod
    def from_factory(
        cls,
        factory,
        args: tuple = (),
        kwargs: dict | None = None,
        *,
        model_id: str = "factory-engine",
        **server_kwargs,
    ) -> "ProcessInferenceServer":
        """Server whose workers build engines from a picklable factory."""
        spec = FactoryEngineSpec(
            factory=factory, args=args, kwargs=dict(kwargs or {}), model_id=model_id
        )
        return cls(spec, model_id=model_id, **server_kwargs)

    # ------------------------------------------------------------------
    # Introspection (gateway /healthz, /metrics, tests)
    # ------------------------------------------------------------------
    @property
    def model_id(self) -> str:
        return self._model_id

    @property
    def shared_segment_name(self) -> str | None:
        """The shm segment name while running (``/dev/shm`` leak checks)."""
        shared = self._shared
        return shared.name if shared is not None else None

    @property
    def weights_version(self) -> int:
        """Current shared ``weights_version`` token (0 in factory mode)."""
        shared = self._shared
        return shared.weights_version if shared is not None else 0

    def worker_processes(self) -> list[dict]:
        """Per-worker liveness for ``/healthz`` and ``/metrics``.

        One dict per worker slot: ``worker``, ``pid`` (None before
        ready/after stop), ``alive``, ``restarts``, ``crash_looping``.
        """
        report = []
        for worker, handle in enumerate(self._handles):
            alive = handle is not None and handle.alive()
            report.append(
                {
                    "worker": worker,
                    "pid": handle.pid if handle is not None else None,
                    "alive": bool(alive),
                    "restarts": self._restarts[worker],
                    "crash_looping": self._crash_looped[worker],
                }
            )
        return report

    def ensure_workers(self) -> int:
        """Respawn dead worker processes; returns how many were revived.

        The ``/healthz`` hook: companion threads already respawn lazily
        when a dispatch fails, but a worker that died while idle would
        otherwise stay dead until traffic hits it.  Slots whose lock is
        busy are skipped — a held lock means a batch is in flight and
        the companion thread will handle any death itself.
        """
        if not self.running:
            return 0
        revived = 0
        for worker in range(self.workers):
            if self._crash_looped[worker]:
                continue
            lock = self._slot_locks[worker]
            if not lock.acquire(blocking=False):
                continue
            try:
                handle = self._handles[worker]
                if (
                    handle is not None
                    and not handle.alive()
                    and self._respawn_locked(worker)
                ):
                    revived += 1
            finally:
                lock.release()
        return revived

    def engine_stats(self) -> EngineStats:
        """Aggregate worker-process engine stats (piggybacked on replies)."""
        total = EngineStats()
        with self._stats_lock:
            for base, latest in zip(self._stats_base, self._stats_latest):
                total.merge(base).merge(latest)
        return total

    def wait_ready(self, timeout: float = 60.0) -> None:
        """Block until every worker process has built its engine.

        Raises ``TimeoutError`` if a worker is still starting when the
        deadline passes, and :class:`RemoteWorkerError` if any worker
        failed to build (its remote traceback is in the message).
        """
        deadline = time.monotonic() + timeout
        for worker, event in enumerate(self._ready_events):
            if not event.wait(max(0.0, deadline - time.monotonic())):
                raise TimeoutError(
                    f"worker {worker} not ready within {timeout:.1f}s"
                )
        failed = [
            (worker, handle.error)
            for worker, handle in enumerate(self._handles)
            if handle is None or not handle.alive()
        ]
        if failed:
            worker, error = failed[0]
            raise RemoteWorkerError(
                f"worker process {worker} failed to start: {error or 'died'}"
            )

    # ------------------------------------------------------------------
    # Hot reload
    # ------------------------------------------------------------------
    def reload_weights(self, arrays: dict) -> int:
        """Overwrite the shared weights in place; workers pick the new
        version up on their next batch.  Returns the new version token.

        Checkpoint mode only (factory workers own their weights).  The
        new arrays must match the published names/shapes/dtypes exactly
        — this is a hot *reload*, not a model swap.
        """
        shared = self._shared
        if shared is None:
            raise RuntimeError(
                "no shared segment (server not running, or factory mode)"
            )
        self._arrays = dict(arrays)
        return shared.update(arrays)

    def current_weights(self) -> dict:
        """Copy of the weights currently served (rollback snapshots).

        Checkpoint mode only — factory workers own their weights and
        the parent has nothing to hand back.
        """
        if self._arrays is None:
            raise RuntimeError("no weights held in the parent (factory mode)")
        return dict(self._arrays)

    # ------------------------------------------------------------------
    # Chaos
    # ------------------------------------------------------------------
    def arm_chaos(self, injector) -> None:
        """Arm a :class:`~repro.chaos.FaultInjector` against this server.

        Registers the ``worker_crash`` handler (SIGKILL the target
        slot's process — the real thing, not a simulation), installs the
        injector on the batching seam, and starts its clock.  The
        injector is disarmed automatically on ``stop()``.
        """

        def crash(event) -> None:
            slots = (
                range(self.workers) if event.target is None else (event.target,)
            )
            for worker in slots:
                if worker >= self.workers:
                    continue
                handle = self._handles[worker]
                if handle is not None and handle.alive() and handle.pid:
                    os.kill(handle.pid, signal.SIGKILL)

        injector.register("worker_crash", crash)
        self.chaos = injector
        injector.arm()

    # ------------------------------------------------------------------
    # Supervisor
    # ------------------------------------------------------------------
    def _supervisor_loop(self) -> None:
        """Respawn dead workers without waiting for probes or traffic.

        Every interval, each slot whose lock is free (a held lock means
        a companion thread is mid-dispatch and will handle any death
        itself) and whose process has died is respawned through
        :meth:`_respawn_locked` — which enforces the per-slot backoff
        and the crash-loop breaker, so a slot that keeps dying is
        retired rather than hammered.
        """
        while not self._supervisor_stop.wait(self._supervisor_interval_s):
            for worker in range(self.workers):
                if self._crash_looped[worker]:
                    continue
                lock = self._slot_locks[worker]
                if not lock.acquire(blocking=False):
                    continue
                try:
                    handle = self._handles[worker]
                    if handle is not None and not handle.alive():
                        self._respawn_locked(worker)
                finally:
                    lock.release()

    # ------------------------------------------------------------------
    # BatchingServerBase hooks
    # ------------------------------------------------------------------
    def _before_start(self) -> None:
        # Runs under the lifecycle mutex (see BatchingServerBase.start),
        # which is what makes the lexically-unguarded _handles rebuild
        # below safe: no companion thread exists yet, and submit() is
        # still refusing traffic.
        require_held(self._mutex, "ProcessInferenceServer._before_start")
        if self._static_spec is not None:
            self._spec = self._static_spec
        else:
            self._shared = SharedCheckpoint.publish(self._arrays)
            self._spec = SharedCheckpointEngineSpec(
                manifest=self._shared.manifest,
                config=self._config,
                model_id=self._model_id,
                cache_size=self._engine_opts["cache_size"],
                batch_size=self._engine_opts["batch_size"],
                inject_latency_ms=self._engine_opts["inject_latency_ms"],
            )
        self._ready_events = [threading.Event() for _ in range(self.workers)]
        self._restarts = [0] * self.workers
        self._backoff_until = [0.0] * self.workers
        self._death_history = [deque() for _ in range(self.workers)]
        self._crash_looped = [False] * self.workers
        with self._stats_lock:
            self._stats_base = [EngineStats() for _ in range(self.workers)]
            self._stats_latest = [EngineStats() for _ in range(self.workers)]
        try:
            self._handles = [self._spawn() for _ in range(self.workers)]  # noqa: HX001 - lifecycle mutex held (require_held above)
        except BaseException:
            # A failed spawn must not leak the segment or earlier children.
            self._teardown_processes()
            self._teardown_shared()
            raise
        self._supervisor_stop = threading.Event()
        self._supervisor_thread = threading.Thread(
            target=self._supervisor_loop, name="worker-supervisor", daemon=True
        )
        self._supervisor_thread.start()

    def _on_worker_start(self, worker: int) -> None:
        with self._slot_locks[worker]:
            handle = self._handles[worker]
            if handle is not None and not self._await_ready(handle):
                # One respawn attempt covers transient startup deaths; a
                # deterministic build failure leaves the slot dead and
                # wait_ready()/healthz surface the stored error.
                self._respawn_locked(worker)
        self._ready_events[worker].set()

    def _predict_probs(self, worker: int, texts: list[str]):
        """Serve a batch on ``worker``'s slot, failing over if retired.

        A slot the crash-loop breaker has retired must not keep failing
        its share of the queue: its companion thread re-routes batches
        to the first live slot instead (serialising on that slot's lock
        — degraded throughput, preserved availability).  Only when no
        live slot remains does the batch fail.
        """
        order = [worker] + [w for w in range(self.workers) if w != worker]
        for slot in order:
            if self._crash_looped[slot]:
                continue
            try:
                return self._predict_probs_on(slot, texts)
            except RemoteWorkerError:
                if not self._crash_looped[slot]:
                    raise  # a real serving failure, not a retired slot
                # The slot was retired mid-attempt; try the next one.
        raise RemoteWorkerError(
            f"worker slot {worker} is crash-looping and no live worker "
            "slot remains"
        )

    def _predict_probs_on(self, worker: int, texts: list[str]):
        with self._slot_locks[worker]:
            for _attempt in (0, 1):
                handle = self._handles[worker]
                if handle is None or not handle.alive():
                    if not self._respawn_locked(worker):
                        break
                    handle = self._handles[worker]
                try:
                    # Holding the slot lock across the pipe round-trip is
                    # the design: one in-flight batch per worker process,
                    # and the respawn-retry below needs exclusive slot
                    # ownership.  Other slots proceed in parallel.
                    handle.conn.send(("batch", list(texts)))  # noqa: HX002 - single-flight per slot by design
                    reply = handle.conn.recv()  # noqa: HX002 - single-flight per slot by design
                except (EOFError, OSError, BrokenPipeError):
                    # Worker died mid-request.  Inference has no side
                    # effects, so respawn and retry the batch once.
                    self._respawn_locked(worker)
                    continue
                if reply[0] == "error":
                    raise RemoteWorkerError(
                        f"worker {worker} failed serving a batch: "
                        f"{reply[1]}\n--- remote traceback ---\n{reply[2]}"
                    )
                _, probs, stats = reply
                with self._stats_lock:
                    self._stats_latest[worker] = stats
                return probs
            handle = self._handles[worker]
            detail = handle.error if handle is not None else None
            raise RemoteWorkerError(
                f"worker process {worker} died and could not be respawned"
                + (f": {detail}" if detail else "")
            )

    def _on_worker_exit(self, worker: int) -> None:
        with self._slot_locks[worker]:
            handle = self._handles[worker]
            self._handles[worker] = None
        if handle is not None:
            self._stop_handle(handle)
            with self._stats_lock:
                self._stats_base[worker].merge(self._stats_latest[worker])
                self._stats_latest[worker] = EngineStats()

    def _after_stop(self) -> None:
        # Order matters: silence chaos (no SIGKILLs at recycled pids),
        # stop the supervisor (no respawns mid-teardown), then reap.
        chaos = self.chaos
        if chaos is not None:
            chaos.disarm()
            self.chaos = None
        self._supervisor_stop.set()
        if self._supervisor_thread is not None:
            self._supervisor_thread.join(timeout=10.0)
            self._supervisor_thread = None
        self._teardown_processes()
        self._teardown_shared()
        self._spec = None

    # ------------------------------------------------------------------
    # Process plumbing
    # ------------------------------------------------------------------
    def _spawn(self) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(self._spec, child_conn),
            name="inference-worker",
            daemon=True,
        )
        process.start()
        # The child owns its pipe end; closing ours makes a child death
        # surface as EOF on the parent side instead of a hang.
        child_conn.close()
        return _WorkerHandle(process, parent_conn)

    def _await_ready(self, handle: _WorkerHandle) -> bool:
        """Consume the worker's first message; True iff it was ready."""
        try:
            if not handle.conn.poll(self._spawn_timeout_s):
                handle.error = f"no ready message within {self._spawn_timeout_s:.0f}s"
                return False
            message = handle.conn.recv()
        except (EOFError, OSError):
            handle.error = "worker process died during startup"
            return False
        if message[0] == "ready":
            handle.pid = message[1]
            return True
        handle.error = f"{message[1]}\n--- remote traceback ---\n{message[2]}"
        return False

    def _respawn_locked(self, worker: int) -> bool:
        """Replace a dead worker process (slot lock held).

        All respawn paths (companion-thread retry, supervisor sweep,
        ``ensure_workers``) funnel through here, so the per-slot
        exponential backoff and the crash-loop breaker are enforced
        once: a slot still inside its backoff window is left dead until
        the supervisor's next sweep, and a slot that accumulates
        ``crash_loop_threshold`` deaths within ``crash_loop_window_s``
        is retired — ``worker_processes()`` reports it ``crash_looping``
        and the gateway's ``/healthz`` flips to ``degraded``.

        On an actual attempt: folds the dead incarnation's engine stats
        into the cumulative base so ``engine_stats()`` never regresses,
        bumps the restart counter, and blocks until the replacement is
        ready (or records its failure and returns False).
        """
        require_held(self._slot_locks[worker], "_respawn_locked")
        if self._crash_looped[worker]:
            return False
        now = time.monotonic()
        if now < self._backoff_until[worker]:
            return False
        history = self._death_history[worker]
        history.append(now)
        while history and now - history[0] > self._crash_loop_window_s:
            history.popleft()
        if len(history) >= self._crash_loop_threshold:
            self._crash_looped[worker] = True
            logger.error(
                "worker %d crash-looping (%d deaths in %.1fs); retiring slot",
                worker,
                len(history),
                self._crash_loop_window_s,
            )
            return False
        # Arm the backoff for the *next* attempt: first death respawns
        # immediately, repeat deaths wait base * 2^(n-1), capped.
        self._backoff_until[worker] = now + min(
            self._respawn_backoff_max_s,
            self._respawn_backoff_base_s * (2 ** (len(history) - 1)),
        )
        old = self._handles[worker]
        if old is not None:
            self._stop_handle(old)
        with self._stats_lock:
            self._stats_base[worker].merge(self._stats_latest[worker])
            self._stats_latest[worker] = EngineStats()
        self._restarts[worker] += 1
        handle = self._spawn()
        self._handles[worker] = handle
        if self._await_ready(handle):
            return True
        self._stop_handle(handle)
        return False

    def _stop_handle(self, handle: _WorkerHandle, timeout: float = 10.0) -> None:
        """Best-effort graceful stop, then escalate. Never raises; idempotent."""
        if handle.closed:
            return
        handle.closed = True
        try:
            handle.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - double close
            pass
        handle.process.join(timeout)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(5.0)
        if handle.process.is_alive():  # pragma: no cover - last resort
            handle.process.kill()
            handle.process.join(5.0)
        handle.process.close()

    def _teardown_processes(self) -> None:
        for worker in range(self.workers):
            with self._slot_locks[worker]:
                handle = self._handles[worker]
                self._handles[worker] = None
            if handle is not None:
                self._stop_handle(handle)

    def _teardown_shared(self) -> None:
        if self._shared is not None:
            self._shared.unlink()
            self._shared = None
