"""Declarative registry of the nine Table IV baselines.

One table maps every baseline name to its kind, factory, and
configuration; everything that previously hard-coded baseline lists or
``if name == ...`` construction chains (``core/pipeline.py``,
``experiments/table4.py``, the six wrapper modules under
``repro/models``) resolves models here instead.  Adding a tenth baseline
is one ``register()`` call — the classifier front door, the experiment
harness, and the serving engine all pick it up automatically.

Model classes and configs are resolved lazily (the registry sits below
both ``repro.core`` and ``repro.models`` in the import graph, so it must
not import either at module load).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING
from collections.abc import Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.models.classifier import TransformerClassifier
    from repro.models.config import ModelConfig
    from repro.text.vocab import Vocabulary

__all__ = [
    "BaselineSpec",
    "REGISTRY",
    "register",
    "get_spec",
    "available_baselines",
    "traditional_baselines",
    "transformer_baselines",
    "build_engine",
    "registry_listing",
    "create_traditional_model",
    "create_transformer",
    "transformer_class",
]


@dataclass(frozen=True)
class BaselineSpec:
    """Everything needed to build one baseline.

    Parameters
    ----------
    name:
        The Table IV row name (public identifier, e.g. ``"MentalBERT"``).
    kind:
        ``"traditional"`` (TF-IDF + classical ML) or ``"transformer"``.
    description:
        One line on what distinguishes this baseline.
    factory:
        Traditional only: ``factory(seed)`` returns an unfitted model
        exposing ``fit``/``predict`` (and ``predict_proba`` or
        ``decision_function``).
    config_factory:
        Transformer only: zero-argument callable returning the
        architecture + fine-tuning :class:`ModelConfig`.  A callable (not
        the config itself) so the registry never imports the model layer
        at module load.
    max_features:
        Traditional only: TF-IDF vocabulary size.
    class_name:
        Transformer only: public class name for the generated
        ``TransformerClassifier`` subclass (``BertClassifier``, ...).
    """

    name: str
    kind: str
    description: str
    factory: Callable[[int], object] | None = None
    config_factory: Callable[[], "ModelConfig"] | None = None
    max_features: int = 3000
    class_name: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("traditional", "transformer"):
            raise ValueError(f"unknown baseline kind {self.kind!r}")
        if self.kind == "traditional" and self.factory is None:
            raise ValueError(f"traditional baseline {self.name!r} needs a factory")
        if self.kind == "transformer" and self.config_factory is None:
            raise ValueError(
                f"transformer baseline {self.name!r} needs a config_factory"
            )

    @property
    def is_transformer(self) -> bool:
        return self.kind == "transformer"

    @property
    def config(self) -> "ModelConfig | None":
        """The transformer's config (``None`` for traditional baselines)."""
        if self.config_factory is None:
            return None
        return self.config_factory()


REGISTRY: dict[str, BaselineSpec] = {}


def register(spec: BaselineSpec) -> BaselineSpec:
    """Add ``spec`` to the registry (name must be unused)."""
    if spec.name in REGISTRY:
        raise ValueError(f"baseline {spec.name!r} already registered")
    REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> BaselineSpec:
    """Spec for ``name``; raises with the valid names on a miss."""
    spec = REGISTRY.get(name)
    if spec is None:
        raise ValueError(
            f"unknown baseline {name!r}; expected one of {available_baselines()}"
        )
    return spec


def available_baselines() -> tuple[str, ...]:
    """Every registered baseline name, registration order."""
    return tuple(REGISTRY)


def registry_listing(loaded: "Sequence[str] | None" = None) -> list[dict]:
    """The registry as ``/v1/models`` JSON: one dict per baseline.

    ``loaded`` names the baselines currently resident in the serving
    fleet, so the listing can mark which Table IV rows are live.  The
    serving layer owns no registry knowledge of its own — this is the
    single shaping point for the wire form.
    """
    resident = set(loaded or ())
    return [
        {
            "name": spec.name,
            "kind": spec.kind,
            "description": spec.description,
            "loaded": spec.name in resident,
        }
        for spec in REGISTRY.values()
    ]


def traditional_baselines() -> tuple[str, ...]:
    return tuple(n for n, s in REGISTRY.items() if s.kind == "traditional")


def transformer_baselines() -> tuple[str, ...]:
    return tuple(n for n, s in REGISTRY.items() if s.kind == "transformer")


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
def create_traditional_model(name: str, *, seed: int = 7):
    """Unfitted classical ML model for a traditional baseline."""
    spec = get_spec(name)
    if spec.kind != "traditional":
        raise ValueError(f"{name!r} is a transformer baseline")
    return spec.factory(seed)


def create_transformer(
    name: str,
    vocab: "Vocabulary",
    *,
    n_classes: int = 6,
    config: "ModelConfig | None" = None,
) -> "TransformerClassifier":
    """Unfitted :class:`TransformerClassifier` subclass instance for ``name``."""
    return transformer_class(name)(vocab, n_classes=n_classes, config=config)


def build_engine(
    name: str,
    *,
    model,
    vectorizer=None,
    model_id: str | None = None,
    **kwargs,
):
    """Registry-built :class:`~repro.engine.engine.PredictionEngine`.

    The single construction path for engines over a fitted baseline:
    the spec's ``kind`` picks the backend, so callers (the classifier
    front door, the serving layer's replicas) never hard-code the
    traditional/transformer split.  ``kwargs`` pass through to the
    engine (``batch_size``, ``cache_size``).
    """
    from repro.engine.engine import PredictionEngine

    spec = get_spec(name)
    if model_id is None:
        model_id = f"{name}#{id(model):x}"
    if spec.is_transformer:
        return PredictionEngine.for_transformer(model, model_id=model_id, **kwargs)
    if vectorizer is None:
        raise ValueError(f"traditional baseline {name!r} needs a fitted vectorizer")
    return PredictionEngine.for_traditional(
        vectorizer, model, model_id=model_id, **kwargs
    )


_TRANSFORMER_CLASSES: dict[str, type] = {}


def transformer_class(name: str) -> "type[TransformerClassifier]":
    """The public classifier class for a transformer baseline.

    Classes are generated once from the registry entry; the wrapper
    modules (``repro.models.bert`` etc.) re-export them so the public
    names (``BertClassifier``, ...) are stable.
    """
    spec = get_spec(name)
    if not spec.is_transformer:
        raise ValueError(f"{name!r} is not a transformer baseline")
    cached = _TRANSFORMER_CLASSES.get(name)
    if cached is not None:
        return cached

    from repro.models.classifier import TransformerClassifier

    # Importing the model layer can re-enter this function (the wrapper
    # modules call it at import time) — honour whatever that populated.
    cached = _TRANSFORMER_CLASSES.get(name)
    if cached is not None:
        return cached

    def __init__(self, vocab, *, n_classes: int = 6, config=None) -> None:
        TransformerClassifier.__init__(
            self, config or spec.config, vocab, n_classes
        )

    cls = type(
        spec.class_name or f"{name}Classifier",
        (TransformerClassifier,),
        {"__init__": __init__, "__doc__": spec.description, "BASELINE": name},
    )
    # Bind the class onto this module so instances are picklable
    # (pickle resolves classes by __module__ + __qualname__).
    globals()[cls.__name__] = cls
    _TRANSFORMER_CLASSES[name] = cls
    return cls


# ----------------------------------------------------------------------
# The nine Table IV baselines
# ----------------------------------------------------------------------
def _make_lr(seed: int):
    from repro.ml.logistic import LogisticRegression

    return LogisticRegression(max_iter=300)


def _make_svm(seed: int):
    from repro.ml.svm import LinearSVM

    return LinearSVM(epochs=10, seed=seed)


def _make_gnb(seed: int):
    from repro.ml.naive_bayes import GaussianNaiveBayes

    return GaussianNaiveBayes()


def _paper_config(name: str) -> Callable[[], "ModelConfig"]:
    """Lazy accessor for one of the §III-A published configurations."""

    def resolve() -> "ModelConfig":
        from repro.models.config import MODEL_CONFIGS

        return MODEL_CONFIGS[name]

    return resolve


register(
    BaselineSpec(
        name="LR",
        kind="traditional",
        description="Multinomial logistic regression over TF-IDF features.",
        factory=_make_lr,
    )
)
register(
    BaselineSpec(
        name="Linear SVM",
        kind="traditional",
        description="One-vs-rest Pegasos linear SVM over TF-IDF features.",
        factory=_make_svm,
    )
)
register(
    BaselineSpec(
        name="Gaussian NB",
        kind="traditional",
        description="Gaussian naive Bayes over dense TF-IDF features.",
        factory=_make_gnb,
    )
)
register(
    BaselineSpec(
        name="BERT",
        kind="transformer",
        description=(
            "The BERT recipe: bidirectional self-attention over absolute "
            "positions, a [CLS] classification summary token, and masked "
            "language-model pretraining on a general (mixed-domain) corpus."
        ),
        config_factory=_paper_config("BERT"),
        class_name="BertClassifier",
    )
)
register(
    BaselineSpec(
        name="DistilBERT",
        kind="transformer",
        description=(
            "The BERT recipe at half depth — the knowledge-distillation "
            "regime: smaller and faster, close in accuracy."
        ),
        config_factory=_paper_config("DistilBERT"),
        class_name="DistilBertClassifier",
    )
)
register(
    BaselineSpec(
        name="MentalBERT",
        kind="transformer",
        description=(
            "The BERT recipe pretrained longer on the mental-health domain "
            "corpus — the paper's strongest baseline."
        ),
        config_factory=_paper_config("MentalBERT"),
        class_name="MentalBertClassifier",
    )
)
register(
    BaselineSpec(
        name="Flan-T5",
        kind="transformer",
        description=(
            "Encoder-decoder with an instruction prefix: the encoder reads "
            "the prompt + post, a one-token decoder query pools it."
        ),
        config_factory=_paper_config("Flan-T5"),
        class_name="FlanT5Classifier",
    )
)
register(
    BaselineSpec(
        name="XLNet",
        kind="transformer",
        description=(
            "Relative-position attention with no absolute positions (its "
            "Transformer-XL inheritance) and permutation-style pretraining."
        ),
        config_factory=_paper_config("XLNet"),
        class_name="XLNetClassifier",
    )
)
register(
    BaselineSpec(
        name="GPT-2.0",
        kind="transformer",
        description=(
            "Causal decoder with last-token pooling and autoregressive "
            "language-model pretraining."
        ),
        config_factory=_paper_config("GPT-2.0"),
        class_name="Gpt2Classifier",
    )
)
