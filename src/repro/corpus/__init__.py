"""Synthetic Beyond Blue corpus substrate.

Stands in for the paper's scraped forum data: lexicons seeded from Table
III, a post generator calibrated to Table II, a simulated forum with the
2,000-post raw pool, an HTML scraper, and the preprocessing funnel.
"""

from repro.corpus.calibrate import CalibrationError, calibrate
from repro.corpus.factory import (
    DEFAULT_PERSONAS,
    CorpusFactory,
    PersonaSpec,
    SyntheticDocument,
)
from repro.corpus.forum import JunkProfile, RawForumPost, SimulatedForum
from repro.corpus.generator import (
    FORUM_CATEGORIES,
    PAPER_CLASS_COUNTS,
    DraftPost,
    GeneratorConfig,
    assemble,
    draft_post,
    generate_drafts,
)
from repro.corpus.lexicon import (
    CORE_LEXICON,
    SECONDARY_BLEED,
    SHARED_DISTRESS_WORDS,
    SUPPORT_LEXICON,
    TABLE3_EXPECTED_WORDS,
    all_dimension_words,
)
from repro.corpus.preprocess import FunnelReport, is_on_topic, preprocess
from repro.corpus.scraper import ForumPageParser, scrape_board, scrape_forum

__all__ = [
    "CORE_LEXICON",
    "CalibrationError",
    "CorpusFactory",
    "DEFAULT_PERSONAS",
    "DraftPost",
    "FORUM_CATEGORIES",
    "ForumPageParser",
    "FunnelReport",
    "GeneratorConfig",
    "JunkProfile",
    "PAPER_CLASS_COUNTS",
    "PersonaSpec",
    "RawForumPost",
    "SECONDARY_BLEED",
    "SHARED_DISTRESS_WORDS",
    "SUPPORT_LEXICON",
    "SimulatedForum",
    "SyntheticDocument",
    "TABLE3_EXPECTED_WORDS",
    "all_dimension_words",
    "assemble",
    "calibrate",
    "draft_post",
    "generate_drafts",
    "is_on_topic",
    "preprocess",
    "scrape_board",
    "scrape_forum",
]
