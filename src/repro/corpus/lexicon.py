"""Per-dimension lexicons for the synthetic Beyond Blue corpus.

The lexicons are seeded from Table III of the paper — the most frequent
words observed in gold explanation spans per wellness dimension — and
extended with in-domain vocabulary implied by Table I's class indicators.

Two structural properties of the real dataset are deliberately encoded,
because the paper's entire results section depends on them:

* **Distinctiveness ordering.**  Vocational, Physical and Social spans use
  highly specific vocabulary (job/work/career, anxiety/sleep/diagnosed,
  friends/alone/relationship) while Emotional and Spiritual spans lean on
  vocabulary shared across dimensions (feel, feeling, life, hard,
  struggling).  This is exactly why every model in Table IV scores high on
  VA/PA/SA and low on EA/SpiA.
* **Cross-dimension bleed.**  The paper's Limitations section (§IV) notes
  that Emotional posts routinely mention social isolation, health anxiety
  or loss of purpose as secondary context.  :data:`SECONDARY_BLEED` lists,
  for each dimension, which other dimensions' vocabulary plausibly appears
  as non-dominant context.
"""

from __future__ import annotations

from repro.core.labels import WellnessDimension

__all__ = [
    "CORE_LEXICON",
    "SUPPORT_LEXICON",
    "SHARED_DISTRESS_WORDS",
    "SECONDARY_BLEED",
    "TABLE3_EXPECTED_WORDS",
    "all_dimension_words",
]

_IA = WellnessDimension.INTELLECTUAL
_VA = WellnessDimension.VOCATIONAL
_SpiA = WellnessDimension.SPIRITUAL
_PA = WellnessDimension.PHYSICAL
_SA = WellnessDimension.SOCIAL
_EA = WellnessDimension.EMOTIONAL

# ---------------------------------------------------------------------------
# Core signal words: the Table III frequent words for each dimension.  The
# generator guarantees these dominate the explanation spans so the Table III
# reproduction recovers them.
# ---------------------------------------------------------------------------
CORE_LEXICON: dict[WellnessDimension, tuple[str, ...]] = {
    _IA: ("future", "feel", "hard", "thoughts", "lack", "think", "struggling"),
    _VA: ("job", "work", "money", "career", "financial", "struggling", "unemployed"),
    _SpiA: ("feel", "life", "thoughts", "suicide", "struggling", "feeling"),
    _SA: ("me", "people", "feel", "talk", "alone", "friends", "relationship"),
    _PA: ("anxiety", "sleep", "depression", "disorder", "diagnosed", "bad"),
    _EA: ("feel", "anxiety", "feeling", "me", "sad", "crying", "hard"),
}

# ---------------------------------------------------------------------------
# Supporting vocabulary: in-domain words that flesh out sentences without
# outranking the core words in span frequency counts.
# ---------------------------------------------------------------------------
SUPPORT_LEXICON: dict[WellnessDimension, tuple[str, ...]] = {
    _IA: (
        "exams",
        "study",
        "studying",
        "smart",
        "learning",
        "focus",
        "concentrate",
        "university",
        "grades",
        "failing",
        "assignments",
        "brain",
    ),
    _VA: (
        "boss",
        "workplace",
        "shifts",
        "salary",
        "redundancy",
        "promotion",
        "overtime",
        "deadlines",
        "bills",
        "debt",
        "centrelink",
        "colleagues",
    ),
    _SpiA: (
        "purpose",
        "meaning",
        "meaningless",
        "empty",
        "pointless",
        "hopeless",
        "faith",
        "lost",
        "existence",
        "worthless",
        "direction",
        "void",
    ),
    _PA: (
        "exhausted",
        "tired",
        "insomnia",
        "medication",
        "doctor",
        "weight",
        "eating",
        "body",
        "pain",
        "headaches",
        "appetite",
        "gp",
    ),
    _SA: (
        "family",
        "breakup",
        "isolated",
        "lonely",
        "invisible",
        "excluded",
        "bullied",
        "partner",
        "connect",
        "belong",
        "school",
        "social",
    ),
    _EA: (
        "overwhelmed",
        "cope",
        "tears",
        "numb",
        "panic",
        "unstable",
        "moods",
        "breakdown",
        "cry",
        "angry",
        "hurting",
        "drained",
    ),
}

# Distress vocabulary every dimension may use; these words carry no class
# signal and make bag-of-words separation genuinely harder.
SHARED_DISTRESS_WORDS: tuple[str, ...] = (
    "struggling",
    "hard",
    "feel",
    "feeling",
    "bad",
    "help",
    "support",
    "anymore",
    "really",
    "days",
    "weeks",
    "everything",
    "nothing",
    "time",
)

# Which dimensions plausibly appear as *secondary* (non-dominant) context in
# a post of the keyed dimension.  Weights are relative probabilities.
# Emotional and Spiritual bleed the most — the §IV confusions.  The graph
# is deliberately reciprocal (if A can appear inside B's posts, B can
# appear inside A's): a one-way edge would make "contains A's vocabulary"
# a perfect class signal for bag-of-words models.
# The weights encode a pair-flow matrix tuned against Table IV's per-class
# behaviour.  For a dimension pair (A, B), the expected number of
# "A dominant + B secondary" posts versus "B dominant + A secondary" posts
# decides how a bag-of-words model resolves the bag {A, B}:
#
# * EA loses or ties every pairing (SA/PA absorb its posts) — the paper's
#   EA recall of 0.17-0.39;
# * IA and SpiA lose to SA/PA/VA and tie each other and EA;
# * SA and PA are net receivers — their inflated recall (SA R=.76) and
#   diluted precision (SA P=.50) in the LR row.
SECONDARY_BLEED: dict[WellnessDimension, dict[WellnessDimension, float]] = {
    _IA: {_SpiA: 22, _EA: 14, _SA: 10, _PA: 7, _VA: 6},
    _VA: {_IA: 14, _SA: 8, _EA: 6, _PA: 4},
    _SpiA: {_EA: 35, _SA: 30, _IA: 22, _PA: 5, _VA: 5},
    _PA: {_EA: 50, _SpiA: 15, _SA: 8, _VA: 8, _IA: 7},
    _SA: {_EA: 72, _SpiA: 38, _IA: 18, _PA: 12, _VA: 8},
    _EA: {_SA: 40, _PA: 35, _SpiA: 30, _IA: 14, _VA: 4},
}

# The Table III ground truth this corpus must reproduce: dimension → the
# frequent span words the paper reports (used by tests and the Table III
# experiment to score recovery).
TABLE3_EXPECTED_WORDS: dict[WellnessDimension, tuple[str, ...]] = {
    dim: words for dim, words in CORE_LEXICON.items()
}


def all_dimension_words(dimension: WellnessDimension) -> tuple[str, ...]:
    """Core + support vocabulary for ``dimension`` (deduplicated, ordered)."""
    seen: dict[str, None] = {}
    for word in CORE_LEXICON[dimension] + SUPPORT_LEXICON[dimension]:
        seen.setdefault(word, None)
    return tuple(seen)
