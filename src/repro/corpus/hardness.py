"""Hardness model: why Table IV's numbers look the way they do.

The paper's classifiers separate cleanly into tiers — traditional ML
around 0.32-0.52 accuracy, transformers 0.63-0.74 — with Emotional and
Spiritual posts hard for everyone.  That structure requires the corpus to
contain three kinds of posts:

* **clear** — the span sentence uses the dimension's distinctive
  vocabulary (job/work, sleep/anxiety, friends/alone).  Every model gets
  these right; they dominate VA/PA/SA.
* **balanced** — the post carries *full-strength* content from two
  dimensions; the gold label is the dominant one, signalled only by
  discourse cues (the dominant clause comes first and/or follows an
  emphasis marker).  A bag-of-words model sees the same bag either way
  and sits near chance between the pair; a position/context-aware model
  can learn the cue.  This is the gap between the ML tier and the
  transformer tier.
* **generic** — the span uses only vocabulary shared across dimensions
  (feel, hard, thoughts, life).  The text genuinely underdetermines the
  label; every model is capped.  These concentrate in EA/SpiA/IA, which
  is why those classes anchor the bottom of every column in Table IV.

This module holds the per-dimension type mixture and the shared generic
frames + per-dimension weak phrases the generator samples from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.labels import WellnessDimension

__all__ = [
    "TypeMixture",
    "HARDNESS",
    "GENERIC_FRAMES",
    "GENERIC_QUALIFIERS",
    "WEAK_PHRASES",
]

_IA = WellnessDimension.INTELLECTUAL
_VA = WellnessDimension.VOCATIONAL
_SpiA = WellnessDimension.SPIRITUAL
_PA = WellnessDimension.PHYSICAL
_SA = WellnessDimension.SOCIAL
_EA = WellnessDimension.EMOTIONAL


@dataclass(frozen=True)
class TypeMixture:
    """Probabilities of the three post types for one dimension."""

    clear: float
    balanced: float
    generic: float

    def __post_init__(self) -> None:
        total = self.clear + self.balanced + self.generic
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"type mixture must sum to 1, got {total}")
        if min(self.clear, self.balanced, self.generic) < 0:
            raise ValueError("type probabilities must be non-negative")


# Tuned so the Table IV tiers reproduce: VA/PA/SA mostly clear, EA/SpiA/IA
# mostly balanced or generic.
HARDNESS: dict[WellnessDimension, TypeMixture] = {
    _IA: TypeMixture(clear=0.10, balanced=0.48, generic=0.42),
    _VA: TypeMixture(clear=0.52, balanced=0.28, generic=0.20),
    _SpiA: TypeMixture(clear=0.12, balanced=0.56, generic=0.32),
    _PA: TypeMixture(clear=0.50, balanced=0.32, generic=0.18),
    _SA: TypeMixture(clear=0.26, balanced=0.44, generic=0.30),
    _EA: TypeMixture(clear=0.06, balanced=0.62, generic=0.32),
}

# Sentence frames for generic posts.  The frames themselves are shared by
# every dimension, so they carry no class signal; ``{a}`` takes a shared
# qualifier and ``{b}`` a dimension weak phrase.
GENERIC_FRAMES: tuple[str, ...] = (
    "i feel like everything is {a} and {b} just makes it worse",
    "lately it all feels {a} and i cannot seem to handle {b}",
    "i do not know how to explain it but {b} has been {a} for weeks",
    "some days {b} feels {a} and i just shut down",
    "it is hard to put into words but {b} keeps getting {a}",
    "i feel {a} most of the time and {b} does not help",
    "everything tied to {b} feels {a} and i am done pretending",
    "nothing feels right anymore and {b} is the heaviest part",
)

# Class-agnostic qualifiers for the {a} slot.
GENERIC_QUALIFIERS: tuple[str, ...] = (
    "too much",
    "out of control",
    "heavier than it should be",
    "impossible to manage",
    "wrong",
    "like a blur",
    "harder every week",
    "out of reach",
)

# Weak phrases for the {b} slot, with explicit multi-dimension ownership.
# Every phrase is shared by at least two dimensions (overlap mirroring
# SECONDARY_BLEED), so a generic post's vocabulary genuinely
# underdetermines its label: the best any bag-of-words model can do on a
# generic post is guess the highest-prior owner of its weak phrase.
_PHRASE_OWNERS: tuple[tuple[str, tuple[WellnessDimension, ...]], ...] = (
    ("my thoughts", (_IA, _SpiA, _EA)),
    ("the thoughts i carry", (_IA, _SpiA)),
    ("the future", (_IA, _VA, _SpiA)),
    ("struggling with all of it", (_IA, _VA, _EA)),
    ("thinking straight", (_IA, _SpiA, _EA)),
    ("my life", (_SpiA, _SA, _EA)),
    ("life itself", (_SpiA, _EA)),
    ("the point of it", (_SpiA, _VA)),
    ("this feeling", (_SpiA, _EA)),
    ("the anxiety", (_PA, _EA)),
    ("this anxiety", (_PA, _EA)),
    ("my sleep", (_PA, _EA)),
    ("sleep", (_PA, _EA)),
    ("my body", (_PA, _EA)),
    ("me", (_SA, _EA)),
    ("me and everyone else", (_SA, _EA)),
    ("being around people", (_SA, _EA)),
    ("talking to people", (_SA, _EA)),
    ("work", (_VA, _IA)),
    ("the money side of things", (_VA, _IA)),
    ("feeling sad", (_EA, _SpiA)),
    ("everything i feel", (_EA, _SpiA)),
)

WEAK_PHRASES: dict[WellnessDimension, tuple[str, ...]] = {
    dim: tuple(
        phrase for phrase, owners in _PHRASE_OWNERS if dim in owners
    )
    for dim in (_IA, _VA, _SpiA, _PA, _SA, _EA)
}
