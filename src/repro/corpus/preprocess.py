"""Preprocessing funnel: 2,000 raw posts → 1,420 clean posts.

Implements §II-A's cleaning steps in the paper's order — remove empty
posts, remove duplicates, filter excessively long posts, filter off-topic
posts — and reports per-stage counts so the Fig. 2 experiment can print
the funnel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.forum import RawForumPost
from repro.corpus.hardness import WEAK_PHRASES
from repro.corpus.lexicon import (
    SHARED_DISTRESS_WORDS,
    all_dimension_words,
)
from repro.core.labels import DIMENSIONS
from repro.text.stopwords import STOPWORDS
from repro.text.tokenize import count_words, word_tokenize

__all__ = ["FunnelReport", "preprocess", "is_on_topic", "ONTOPIC_VOCABULARY"]

# Union of every dimension's vocabulary, the shared distress words, and
# the weak-phrase vocabulary used by generic posts: a post mentioning none
# of these carries no mental-distress content and is treated as
# off-topic, the way the paper's curation discarded posts not
# "specifically focused on mental distress".
ONTOPIC_VOCABULARY: frozenset[str] = (
    frozenset(word for dim in DIMENSIONS for word in all_dimension_words(dim))
    | frozenset(SHARED_DISTRESS_WORDS)
    | frozenset(
        token
        for phrases in WEAK_PHRASES.values()
        for phrase in phrases
        for token in word_tokenize(phrase)
        if token not in STOPWORDS and token not in ("everyone", "side", "things")
    )
    | frozenset(("feels", "thinking", "shut", "heaviest", "pretending"))
)


@dataclass(frozen=True)
class FunnelReport:
    """Per-stage post counts for the preprocessing funnel."""

    raw: int
    after_empty_removal: int
    after_deduplication: int
    after_length_filter: int
    after_topic_filter: int

    @property
    def removed_empty(self) -> int:
        return self.raw - self.after_empty_removal

    @property
    def removed_duplicates(self) -> int:
        return self.after_empty_removal - self.after_deduplication

    @property
    def removed_overlong(self) -> int:
        return self.after_deduplication - self.after_length_filter

    @property
    def removed_offtopic(self) -> int:
        return self.after_length_filter - self.after_topic_filter

    def stages(self) -> list[tuple[str, int]]:
        """(stage name, posts remaining) pairs, in funnel order."""
        return [
            ("raw posts", self.raw),
            ("after empty removal", self.after_empty_removal),
            ("after deduplication", self.after_deduplication),
            ("after length filter", self.after_length_filter),
            ("after topic filter", self.after_topic_filter),
        ]


def is_on_topic(text: str) -> bool:
    """True when the post mentions any mental-distress vocabulary."""
    return any(token in ONTOPIC_VOCABULARY for token in word_tokenize(text))


def preprocess(
    raw_posts: list[RawForumPost],
    *,
    max_words: int = 115,
) -> tuple[list[RawForumPost], FunnelReport]:
    """Run the §II-A cleaning funnel over ``raw_posts``.

    Returns the surviving posts (first occurrence kept on duplicate text)
    and the per-stage report.
    """
    non_empty = [p for p in raw_posts if p.text.strip()]

    seen: set[str] = set()
    deduplicated: list[RawForumPost] = []
    for post in non_empty:
        if post.text in seen:
            continue
        seen.add(post.text)
        deduplicated.append(post)

    within_length = [p for p in deduplicated if count_words(p.text) <= max_words]
    on_topic = [p for p in within_length if is_on_topic(p.text)]

    report = FunnelReport(
        raw=len(raw_posts),
        after_empty_removal=len(non_empty),
        after_deduplication=len(deduplicated),
        after_length_filter=len(within_length),
        after_topic_filter=len(on_topic),
    )
    return on_topic, report
