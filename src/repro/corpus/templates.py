"""Sentence templates for the synthetic Beyond Blue corpus.

Each wellness dimension has a bank of *span templates* — the sentence that
carries the gold explanation span — plus *secondary templates* (the same
dimension expressed as non-dominant context inside another dimension's
post), neutral filler sentences, and emphasis markers that signal which
clause is dominant (perplexity guideline 1: "Prioritize Dominant
Dimensions").

Core Table III words are hard-coded into template bodies so their span
frequencies reproduce the paper's frequent-word profiles; slot words drawn
from the support lexicons provide surface variety.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.labels import WellnessDimension

__all__ = [
    "SpanTemplate",
    "SPAN_TEMPLATES",
    "SHORT_FILLER_SENTENCES",
    "MEDIUM_FILLER_SENTENCES",
    "SECONDARY_TEMPLATES",
    "SECONDARY_CLAUSES",
    "FILLER_SENTENCES",
    "PAD_WORDS",
    "EMPHASIS_MARKERS",
    "OFFTOPIC_SENTENCES",
    "render_span_template",
]

_IA = WellnessDimension.INTELLECTUAL
_VA = WellnessDimension.VOCATIONAL
_SpiA = WellnessDimension.SPIRITUAL
_PA = WellnessDimension.PHYSICAL
_SA = WellnessDimension.SOCIAL
_EA = WellnessDimension.EMOTIONAL


@dataclass(frozen=True)
class SpanTemplate:
    """A span-bearing sentence.

    ``body`` is the explanation span (format slots ``{a}``/``{b}`` are
    filled from ``choices_a``/``choices_b``); ``prefix``/``suffix`` wrap it
    into a full sentence.  The rendered span never includes terminal
    punctuation, which keeps later text calibration safe (pad words are
    inserted before the final period, always after ``span.end``).
    """

    prefix: str
    body: str
    suffix: str
    choices_a: tuple[str, ...] = ()
    choices_b: tuple[str, ...] = ()


def render_span_template(
    template: SpanTemplate, rng: np.random.Generator
) -> tuple[str, str]:
    """Render ``template`` into ``(sentence_text, span_text)``."""
    kwargs: dict[str, str] = {}
    if template.choices_a:
        kwargs["a"] = str(rng.choice(template.choices_a))
    if template.choices_b:
        kwargs["b"] = str(rng.choice(template.choices_b))
    span = template.body.format(**kwargs)
    sentence = f"{template.prefix}{span}{template.suffix}"
    return sentence, span


# ---------------------------------------------------------------------------
# Span templates.  Emotional and Spiritual deliberately reuse vocabulary
# that other dimensions own (anxiety→PA, me→SA, feel/hard→shared), which is
# what makes them the hard classes in Table IV.
# ---------------------------------------------------------------------------
SPAN_TEMPLATES: dict[WellnessDimension, tuple[SpanTemplate, ...]] = {
    _IA: (
        SpanTemplate(
            "", "i feel like i will never be {a} enough to pass my exams", ".",
            ("smart", "focused", "good"),
        ),
        SpanTemplate(
            "Lately ",
            "i cannot concentrate on my {a} and my thoughts about the future just spiral",
            ".",
            ("study", "assignments", "learning", "grades"),
        ),
        SpanTemplate(
            "",
            "my mind feels slow and i think there is a real lack of {a} left in my brain",
            ".",
            ("focus", "energy", "curiosity"),
        ),
        SpanTemplate(
            "",
            "i keep struggling with {a} at university and it is hard to even open a book",
            ".",
            ("studying", "assignments", "exams", "lectures"),
        ),
        SpanTemplate(
            "Honestly ",
            "i feel my future is slipping because i keep failing every {a} i attempt",
            ".",
            ("exam", "subject", "assignment", "course"),
        ),
        SpanTemplate(
            "",
            "thinking is hard these days and my thoughts about {a} never settle",
            ".",
            ("the future", "my grades", "my studies"),
        ),
        SpanTemplate(
            "",
            "i used to love learning new things but now i lack the {a} to think at all",
            ".",
            ("motivation", "concentration", "patience"),
        ),
        SpanTemplate(
            "",
            "i feel stupid next to my classmates and struggling through {a} makes it worse",
            ".",
            ("revision", "homework", "every lecture", "each exam"),
        ),
    ),
    _VA: (
        SpanTemplate(
            "",
            "my {a} job drains all my energy and i do not see the point of the work anymore",
            ".",
            ("9-5", "retail", "warehouse", "office", "hospitality"),
        ),
        SpanTemplate(
            "",
            "i lost my job last {a} and being unemployed is destroying my confidence",
            ".",
            ("month", "week", "year"),
        ),
        SpanTemplate(
            "",
            "work has become unbearable since my {a} keeps piling on impossible deadlines",
            ".",
            ("boss", "manager", "supervisor"),
        ),
        SpanTemplate(
            "Right now ",
            "the money is not enough and the financial pressure from {a} keeps my mind racing",
            ".",
            ("rent", "bills", "my debt", "the mortgage"),
        ),
        SpanTemplate(
            "",
            "i am struggling at work because my career has stalled and every {a} goes nowhere",
            ".",
            ("application", "interview", "promotion round"),
        ),
        SpanTemplate(
            "",
            "i dread every shift and my job leaves my confidence in pieces with no {a} ahead",
            ".",
            ("career", "future", "prospects"),
        ),
        SpanTemplate(
            "",
            "being unemployed for {a} months means the money worries never stop",
            ".",
            ("three", "six", "nine", "twelve"),
        ),
        SpanTemplate(
            "",
            "my work pays so little that the financial stress shadows my whole {a}",
            ".",
            ("week", "month", "household"),
        ),
    ),
    _SpiA: (
        SpanTemplate(
            "",
            "i do not know what my purpose is anymore and everything in life feels {a}",
            ".",
            ("meaningless", "pointless", "empty", "hollow"),
        ),
        SpanTemplate(
            "",
            "i feel completely lost and my thoughts keep asking what the point of {a} is",
            ".",
            ("life", "all this", "going on", "existing"),
        ),
        SpanTemplate(
            "Some days ",
            "thoughts of suicide creep in because life feels so {a}",
            ".",
            ("empty", "pointless", "meaningless", "hollow"),
        ),
        SpanTemplate(
            "",
            "i keep struggling to find meaning and the feeling that my life has no {a} will not lift",
            ".",
            ("direction", "purpose", "value", "shape"),
        ),
        SpanTemplate(
            "",
            "there is a feeling of emptiness in me and i question whether {a} matters",
            ".",
            ("anything", "my life", "any of it"),
        ),
        SpanTemplate(
            "",
            "i feel like a passenger in my own life and the {a} i believed in is gone",
            ".",
            ("faith", "hope", "meaning", "purpose"),
        ),
        SpanTemplate(
            "Lately ",
            "i feel hopeless about life and my thoughts drift toward suicide when i am {a}",
            ".",
            ("alone at night", "awake at 3am", "by myself"),
        ),
        SpanTemplate(
            "",
            "my life feels like a {a} and i am struggling to see why i should continue",
            ".",
            ("void", "grey fog", "waiting room", "dead end"),
        ),
    ),
    _PA: (
        SpanTemplate(
            "",
            "i feel exhausted all the time and cannot even sleep {a} anymore",
            ".",
            ("properly", "through the night", "more than a few hours"),
        ),
        SpanTemplate(
            "",
            "my anxiety is so bad that my body shakes and sleep never {a}",
            ".",
            ("comes", "lasts", "helps"),
        ),
        SpanTemplate(
            "",
            "i was diagnosed with an anxiety disorder and the {a} makes me feel worse",
            ".",
            ("medication", "new dosage", "side effects"),
        ),
        SpanTemplate(
            "",
            "the depression leaves me so tired that even {a} feels like running a marathon",
            ".",
            ("showering", "getting dressed", "making toast", "walking outside"),
        ),
        SpanTemplate(
            "",
            "i hate my body and my {a} has become a bad obsession i cannot shake",
            ".",
            ("weight", "appetite", "eating", "reflection"),
        ),
        SpanTemplate(
            "My ",
            "doctor diagnosed the insomnia months ago and the anxiety means my sleep is still {a}",
            ".",
            ("wrecked", "broken", "gone"),
        ),
        SpanTemplate(
            "",
            "the headaches and the {a} pain are constant and the depression makes it worse",
            ".",
            ("stomach", "chest", "back", "joint"),
        ),
        SpanTemplate(
            "",
            "my sleep disorder means i lie awake until {a} and the exhaustion is bad",
            ".",
            ("4am", "sunrise", "the alarm goes"),
        ),
    ),
    _SA: (
        SpanTemplate(
            "",
            "i have no real friends and people at {a} make me feel invisible",
            ".",
            ("school", "work", "uni", "home"),
        ),
        SpanTemplate(
            "",
            "ever since my breakup i feel like everyone around me has {a} and nobody wants to talk to me",
            ".",
            ("moved on", "disappeared", "picked sides"),
        ),
        SpanTemplate(
            "",
            "i feel so alone because there is nobody i can talk to about {a}",
            ".",
            ("any of this", "how i feel", "what happened"),
        ),
        SpanTemplate(
            "",
            "my relationship with my {a} has broken down and people keep their distance from me",
            ".",
            ("family", "partner", "sister", "parents", "best friend"),
        ),
        SpanTemplate(
            "",
            "people talk around me like i am not there and my friends {a} me",
            ".",
            ("forgot about", "stopped calling", "left behind", "exclude"),
        ),
        SpanTemplate(
            "Most days ",
            "i feel isolated and the loneliness of having no one to talk to {a} me",
            ".",
            ("crushes", "follows", "empties", "hollows out"),
        ),
        SpanTemplate(
            "",
            "i was bullied at {a} and now i feel like people will never accept me",
            ".",
            ("school", "work", "my old job"),
        ),
        SpanTemplate(
            "",
            "me and my family do not talk anymore and the people i loved feel like {a}",
            ".",
            ("strangers", "ghosts", "a past life"),
        ),
    ),
    _EA: (
        SpanTemplate(
            "",
            "i feel like i am drowning in this sad heavy feeling and i cannot stop {a}",
            ".",
            ("crying", "shaking", "breaking down"),
        ),
        SpanTemplate(
            "",
            "the anxiety inside me swells until i end up crying in the {a}",
            ".",
            ("car", "bathroom", "dark", "shower"),
        ),
        SpanTemplate(
            "",
            "i hate myself and the feeling that i do not belong in this world is {a}",
            ".",
            ("constant", "overwhelming", "so hard", "always there"),
        ),
        SpanTemplate(
            "",
            "everything feels too hard and i am so sad that even {a} sets me off crying",
            ".",
            ("a kind word", "a song", "nothing at all", "small talk"),
        ),
        SpanTemplate(
            "",
            "my moods swing so fast that the feeling scares me and i cannot {a}",
            ".",
            ("cope", "calm down", "hold it together"),
        ),
        SpanTemplate(
            "",
            "i feel numb one minute and then the sadness hits me so hard i {a}",
            ".",
            ("cannot breathe", "start crying", "fall apart"),
        ),
        SpanTemplate(
            "",
            "the anxiety and the crying come out of nowhere and i feel {a} inside",
            ".",
            ("unstable", "broken", "hollow", "frayed"),
        ),
        SpanTemplate(
            "Honestly ",
            "i feel emotionally exhausted and it is hard for me to get through {a} without tears",
            ".",
            ("a day", "an hour", "one conversation"),
        ),
    ),
}

# ---------------------------------------------------------------------------
# Secondary templates: the dimension expressed as *non-dominant* context.
# Short sentences appended after the span sentence; they inject the
# dimension's vocabulary without being the label.
# ---------------------------------------------------------------------------
SECONDARY_TEMPLATES: dict[WellnessDimension, tuple[str, ...]] = {
    _IA: (
        "My study has started suffering as well and I cannot think straight at uni anymore.",
        "On top of all that my exams are coming up and my concentration is completely shot.",
        "It does not help that every assignment I hand in lately comes back worse than the last.",
    ),
    _VA: (
        "Work is not helping either because my job keeps taking whatever energy I have left.",
        "The money stress from being behind on bills sits underneath all of it every single day.",
        "My career worries keep circling in the background and the job situation only adds pressure.",
    ),
    _SpiA: (
        "Some nights I lie there wondering what the point of any of it is supposed to be.",
        "It makes life feel strangely meaningless and I question my purpose more than I used to.",
        "Underneath it all there is this quiet sense that nothing I do carries any meaning now.",
    ),
    _PA: (
        "My sleep has completely fallen apart because of it and I wake up exhausted every day.",
        "The anxiety makes my body ache and my appetite has all but disappeared lately too.",
        "I am physically exhausted all the time now and even my doctor noticed the change.",
    ),
    _SA: (
        "I have stopped seeing my friends because of it and nobody around me really gets it.",
        "It is slowly pushing the people I love away and the distance keeps growing wider.",
        "My family does not know how to talk to me about it so we mostly avoid each other.",
    ),
    _EA: (
        "I end up crying about it most nights and the sadness takes hours to settle down.",
        "It leaves me feeling so sad and drained that I can barely hold a conversation after.",
        "The feeling builds up during the day until it overwhelms me completely by evening.",
    ),
}

# Secondary context expressed as a trailing clause inside the span sentence
# (keeps the post single-sentence).  Joined with ", " after the span; no
# leading capital, no terminal punctuation.
SECONDARY_CLAUSES: dict[WellnessDimension, tuple[str, ...]] = {
    _IA: (
        "and my study is falling apart because of it",
        "and i cannot concentrate at uni on top of it",
    ),
    _VA: (
        "and work only makes it worse",
        "and the money stress from my job never lets up",
    ),
    _SpiA: (
        "and some nights life itself feels pointless",
        "and i keep questioning what the purpose of it all is",
    ),
    _PA: (
        "and my sleep has fallen apart because of it",
        "and the anxiety leaves my body exhausted",
    ),
    _SA: (
        "and i have pulled away from my friends because of it",
        "and the people around me feel further away than ever",
    ),
    _EA: (
        "and i end up crying about it most nights",
        "and the sad feeling never really lifts",
    ),
}

# Neutral forum sentences: no class signal at all.  Kept around twelve
# words so corpus-level words-per-sentence matches Table II (~16.3).
FILLER_SENTENCES: tuple[str, ...] = (
    "Sorry for the long post but I could not make it shorter.",
    "This is my first time posting here so please bear with me.",
    "I have been reading this forum for a while before posting.",
    "Thanks in advance to anyone who takes the time to read this.",
    "I am not even sure where to start with any of this.",
    "I do not really know what I am hoping to hear.",
    "Maybe writing it all down will make some kind of difference.",
    "I have never said any of this out loud before today.",
    "Any advice from people who have been through similar would mean a lot.",
    "I just needed to put this somewhere outside my own head.",
    "It has been like this for a while now and I cannot tell anymore.",
    "I keep telling myself it will pass but that gets harder to believe.",
    "Writing this post is much harder than I expected it to be.",
    "Thank you for giving people a space like this.",
)

# Short fillers used by word-count calibration: swapping a long filler for
# a short one trims several words without changing the sentence count.
# Medium-length fillers give the sentence-count calibration a word-budget
# middle ground between the long and short pools.
MEDIUM_FILLER_SENTENCES: tuple[str, ...] = (
    "I did not expect this post to get so long.",
    "Even typing all of this out feels strange tonight.",
    "I am not sure this will make sense to anyone.",
    "There is probably more but I will stop here.",
    "I have read similar threads here before posting.",
    "Apologies if this is the wrong board for it.",
    "I nearly deleted this instead of posting it.",
    "It took me a week to write this much.",
)

SHORT_FILLER_SENTENCES: tuple[str, ...] = (
    "Sorry for rambling on.",
    "I appreciate this space.",
    "Thanks for reading anyway.",
    "That is about everything.",
    "Thanks for reading this far.",
    "That is where things stand.",
    "Anyway that is my situation.",
    "So that is where I am.",
    "Anyway that is the short version.",
    "Not sure what else to add.",
    "I will leave it there for now.",
    "Anyway thank you for reading all this.",
)

# Single pad words inserted before a post's final period during word-count
# calibration.  They carry no class signal.
PAD_WORDS: tuple[str, ...] = (
    "honestly",
    "lately",
    "somehow",
    "truly",
    "constantly",
    "completely",
    "again",
    "still",
)

# Dominance markers (perplexity guideline 1).  Class-agnostic on purpose:
# a bag-of-words model gains nothing from them, while a context model can
# learn that the adjacent clause is the dominant dimension.
EMPHASIS_MARKERS: tuple[str, ...] = (
    "what really gets to me is that",
    "more than anything",
    "the main thing is that",
    "worst of all",
    "above everything else",
)

# Off-topic sentences for the preprocessing funnel (§II-A: off-topic posts
# are filtered out).  They contain no distress vocabulary.
OFFTOPIC_SENTENCES: tuple[str, ...] = (
    "Does anyone know when the forum maintenance window ends this weekend?",
    "The weather in Brisbane has been lovely this week.",
    "Can a moderator merge my duplicate account please?",
    "Looking for recommendations for a good podcast about gardening.",
    "Happy new year to everyone on the boards.",
    "Is there a mobile app for this site or just the browser version?",
    "My favourite footy team finally won on the weekend.",
    "What is the best way to quote another reply in a thread?",
)
