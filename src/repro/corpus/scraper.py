"""Scraper for the simulated forum's HTML.

The paper extracted 2,000 raw posts from Beyond Blue with BeautifulSoup,
retaining only the text and its discussion category (§II-A).  This module
plays that role offline: a small ``html.parser`` subclass walks the pages
rendered by :class:`repro.corpus.forum.SimulatedForum` and recovers
``RawForumPost`` records — text and category only, exactly the paper's
privacy-preserving retention policy.
"""

from __future__ import annotations

import html
from html.parser import HTMLParser

from repro.corpus.forum import RawForumPost, SimulatedForum

__all__ = ["ForumPageParser", "scrape_board", "scrape_forum"]


class ForumPageParser(HTMLParser):
    """Extract ``(post_id, text, category)`` triples from a board page.

    Recognises the structure the simulated forum renders:

    .. code-block:: html

        <section class="board" data-category="...">
          <article class="forum-post" data-post-id="...">
            <div class="post-body">...</div>
          </article>
        </section>
    """

    def __init__(self) -> None:
        super().__init__(convert_charrefs=False)
        self.posts: list[RawForumPost] = []
        self._category: str | None = None
        self._post_id: str | None = None
        self._in_body = False
        self._chunks: list[str] = []

    # ------------------------------------------------------------------
    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        attributes = dict(attrs)
        classes = (attributes.get("class") or "").split()
        if tag == "section" and "board" in classes:
            self._category = attributes.get("data-category") or ""
        elif tag == "article" and "forum-post" in classes:
            self._post_id = attributes.get("data-post-id") or ""
        elif tag == "div" and "post-body" in classes:
            self._in_body = True
            self._chunks = []

    def handle_endtag(self, tag: str) -> None:
        if tag == "div" and self._in_body:
            self._in_body = False
            if self._category is None or self._post_id is None:
                raise ValueError("post body found outside a board/article context")
            text = "".join(self._chunks)
            self.posts.append(RawForumPost(self._post_id, text, self._category))
            self._post_id = None

    def handle_data(self, data: str) -> None:
        if self._in_body:
            self._chunks.append(data)

    def handle_entityref(self, name: str) -> None:
        if self._in_body:
            self._chunks.append(html.unescape(f"&{name};"))

    def handle_charref(self, name: str) -> None:
        if self._in_body:
            self._chunks.append(html.unescape(f"&#{name};"))


def scrape_board(page_html: str) -> list[RawForumPost]:
    """Parse one board page into raw posts."""
    parser = ForumPageParser()
    parser.feed(page_html)
    parser.close()
    return parser.posts


def scrape_forum(forum: SimulatedForum) -> list[RawForumPost]:
    """Render and scrape every board; returns posts in board order.

    The round trip (render → parse) must reproduce the forum's posts
    byte-for-byte; tests assert this invariant.
    """
    collected: list[RawForumPost] = []
    for category in forum.categories:
        collected.extend(scrape_board(forum.render_board_html(category)))
    return collected
