"""Streaming persona/template synthetic corpus factory.

:mod:`repro.corpus.generator` builds the paper-faithful 1,420-post
dataset: it calibrates word totals to Table II, enforces global text
uniqueness, and materialises every draft — none of which scales to the
millions of documents realistic load generation needs.  This module is
the generate-once-sweep-many counterpart: a fixed bank of **personas**
(who is posting: label mix, length profile, vocabulary breadth) swept
programmatically over the same span-template banks, producing an
endless labelled document stream.

Design rules:

* **Streaming, constant memory.**  :meth:`CorpusFactory.iter_documents`
  is a generator; nothing about document ``i`` is retained once it is
  yielded, so ``n=10_000_000`` costs the same resident memory as
  ``n=10``.
* **Deterministic.**  One ``random.Random(seed)`` drives the whole
  stream (the Mersenne Twister sequence is stable across Python
  versions), so the same seed always yields the byte-identical document
  sequence, and a load test is replayable end to end: seed -> corpus,
  seed -> arrival schedule.
* **Disjoint streams.**  Document ids embed the seed
  (``syn-<seed>-<index>``), so corpora drawn from different seeds can
  be mixed without id collisions.
* **Length- and vocabulary-controlled.**  Each persona fixes a sentence
  range and a ``vocabulary_scale`` that truncates the template/filler/
  lead-in pools, so corpus shape (document lengths, type-token profile)
  is a declared property of the persona bank, not an accident.

The per-document hot path is pure ``random.Random`` + string formatting
(no numpy ``Generator`` construction, no draft objects), which keeps
generation at hundreds of thousands of documents per second — fast
enough that the corpus never becomes the bottleneck of the load
generator consuming it.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.core.labels import DIMENSIONS, WellnessDimension
from repro.corpus.generator import LEAD_INS
from repro.corpus.templates import FILLER_SENTENCES, SPAN_TEMPLATES

__all__ = [
    "CorpusFactory",
    "DEFAULT_PERSONAS",
    "PersonaSpec",
    "SyntheticDocument",
]


@dataclass(frozen=True)
class PersonaSpec:
    """One synthetic author profile.

    ``label_weights`` is the persona's wellness-dimension mixture (any
    positive weights; normalised internally).  ``sentence_range`` is the
    inclusive document length in sentences; ``vocabulary_scale`` in
    (0, 1] truncates every phrase pool to that fraction (a 0.4 persona
    writes from a deliberately narrower vocabulary).
    """

    name: str
    label_weights: Mapping[WellnessDimension, float]
    sentence_range: tuple[int, int] = (1, 4)
    lead_in_probability: float = 0.3
    vocabulary_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("persona name must be non-empty")
        weights = dict(self.label_weights)
        if not weights or any(w < 0 for w in weights.values()):
            raise ValueError(f"{self.name}: label_weights must be non-negative")
        if sum(weights.values()) <= 0:
            raise ValueError(f"{self.name}: label_weights must not all be zero")
        low, high = self.sentence_range
        if not 1 <= low <= high:
            raise ValueError(f"{self.name}: invalid sentence_range {low, high}")
        if not 0.0 <= self.lead_in_probability <= 1.0:
            raise ValueError(f"{self.name}: lead_in_probability not in [0, 1]")
        if not 0.0 < self.vocabulary_scale <= 1.0:
            raise ValueError(f"{self.name}: vocabulary_scale not in (0, 1]")

    def normalized_label_weights(self) -> dict[WellnessDimension, float]:
        total = sum(self.label_weights.values())
        return {
            dim: self.label_weights.get(dim, 0.0) / total for dim in DIMENSIONS
        }


@dataclass(frozen=True, slots=True)
class SyntheticDocument:
    """One streamed document: id, text, gold label, provenance."""

    doc_id: str
    text: str
    label: WellnessDimension
    persona: str
    n_sentences: int
    n_words: int


# A small bank of deliberately different author shapes.  Weights echo the
# paper's class marginals loosely (SOCIAL/PHYSICAL heavy overall) while
# each persona is individually skewed — sweeping personas, not one global
# distribution, is what produces realistic per-author label correlation.
DEFAULT_PERSONAS: tuple[PersonaSpec, ...] = (
    PersonaSpec(
        "steady-sharer",
        label_weights={
            WellnessDimension.SOCIAL: 0.30,
            WellnessDimension.PHYSICAL: 0.22,
            WellnessDimension.EMOTIONAL: 0.16,
            WellnessDimension.SPIRITUAL: 0.14,
            WellnessDimension.INTELLECTUAL: 0.09,
            WellnessDimension.VOCATIONAL: 0.09,
        },
        sentence_range=(1, 3),
        lead_in_probability=0.35,
        vocabulary_scale=1.0,
    ),
    PersonaSpec(
        "late-night-rambler",
        label_weights={
            WellnessDimension.EMOTIONAL: 0.32,
            WellnessDimension.SPIRITUAL: 0.24,
            WellnessDimension.SOCIAL: 0.24,
            WellnessDimension.PHYSICAL: 0.20,
        },
        sentence_range=(3, 7),
        lead_in_probability=0.5,
        vocabulary_scale=1.0,
    ),
    PersonaSpec(
        "work-burnout",
        label_weights={
            WellnessDimension.VOCATIONAL: 0.55,
            WellnessDimension.EMOTIONAL: 0.20,
            WellnessDimension.PHYSICAL: 0.15,
            WellnessDimension.INTELLECTUAL: 0.10,
        },
        sentence_range=(1, 4),
        lead_in_probability=0.25,
        vocabulary_scale=0.75,
    ),
    PersonaSpec(
        "lonely-heart",
        label_weights={
            WellnessDimension.SOCIAL: 0.60,
            WellnessDimension.EMOTIONAL: 0.25,
            WellnessDimension.SPIRITUAL: 0.15,
        },
        sentence_range=(2, 5),
        lead_in_probability=0.3,
        vocabulary_scale=0.9,
    ),
    PersonaSpec(
        "health-anxious",
        label_weights={
            WellnessDimension.PHYSICAL: 0.62,
            WellnessDimension.EMOTIONAL: 0.20,
            WellnessDimension.INTELLECTUAL: 0.18,
        },
        sentence_range=(1, 3),
        lead_in_probability=0.2,
        vocabulary_scale=0.6,
    ),
    PersonaSpec(
        "seeker",
        label_weights={
            WellnessDimension.SPIRITUAL: 0.45,
            WellnessDimension.INTELLECTUAL: 0.30,
            WellnessDimension.VOCATIONAL: 0.15,
            WellnessDimension.EMOTIONAL: 0.10,
        },
        sentence_range=(2, 6),
        lead_in_probability=0.4,
        vocabulary_scale=0.85,
    ),
)


def _scaled(pool: Sequence, scale: float) -> tuple:
    """The first ``scale`` fraction of ``pool`` (at least one entry)."""
    return tuple(pool[: max(1, int(len(pool) * scale))])


class _PersonaRuntime:
    """Precompiled per-persona state: scaled pools, cumulative weights."""

    __slots__ = ("spec", "span_pools", "fillers", "lead_ins", "label_cdf")

    def __init__(self, spec: PersonaSpec) -> None:
        self.spec = spec
        scale = spec.vocabulary_scale
        self.span_pools = {
            dim: _scaled(SPAN_TEMPLATES[dim], scale) for dim in DIMENSIONS
        }
        self.fillers = _scaled(FILLER_SENTENCES, scale)
        self.lead_ins = _scaled(LEAD_INS, scale)
        weights = spec.normalized_label_weights()
        cdf, running = [], 0.0
        for dim in DIMENSIONS:
            running += weights[dim]
            cdf.append((running, dim))
        cdf[-1] = (1.0, cdf[-1][1])  # guard against float-sum shortfall
        self.label_cdf = tuple(cdf)

    def pick_label(self, roll: float) -> WellnessDimension:
        for bound, dim in self.label_cdf:
            if roll < bound:
                return dim
        return self.label_cdf[-1][1]  # pragma: no cover - guarded above


class CorpusFactory:
    """Persona-swept streaming corpus over the span-template banks.

    Parameters
    ----------
    personas:
        The persona bank (defaults to :data:`DEFAULT_PERSONAS`).
    persona_weights:
        Optional relative weight per persona (same length); defaults to
        uniform.
    """

    def __init__(
        self,
        personas: Sequence[PersonaSpec] = DEFAULT_PERSONAS,
        persona_weights: Sequence[float] | None = None,
    ) -> None:
        if not personas:
            raise ValueError("at least one persona is required")
        names = [p.name for p in personas]
        if len(set(names)) != len(names):
            raise ValueError(f"persona names must be unique, got {names}")
        if persona_weights is None:
            persona_weights = [1.0] * len(personas)
        if len(persona_weights) != len(personas):
            raise ValueError("persona_weights length must match personas")
        if any(w < 0 for w in persona_weights) or sum(persona_weights) <= 0:
            raise ValueError("persona_weights must be non-negative, not all zero")
        self.personas = tuple(personas)
        total = float(sum(persona_weights))
        self.persona_weights = tuple(w / total for w in persona_weights)
        self._runtimes = tuple(_PersonaRuntime(p) for p in personas)
        cdf, running = [], 0.0
        for runtime, weight in zip(self._runtimes, self.persona_weights):
            running += weight
            cdf.append((running, runtime))
        cdf[-1] = (1.0, cdf[-1][1])
        self._persona_cdf = tuple(cdf)

    # ------------------------------------------------------------------
    # Distribution introspection (what the property tests check against)
    # ------------------------------------------------------------------
    def expected_label_distribution(self) -> dict[WellnessDimension, float]:
        """Marginal label probabilities implied by the persona bank."""
        marginal = dict.fromkeys(DIMENSIONS, 0.0)
        for persona, weight in zip(self.personas, self.persona_weights):
            for dim, p in persona.normalized_label_weights().items():
                marginal[dim] += weight * p
        return marginal

    # ------------------------------------------------------------------
    # Streaming generation
    # ------------------------------------------------------------------
    def iter_documents(self, seed: int, n: int) -> Iterator[SyntheticDocument]:
        """Yield ``n`` labelled documents, deterministically from ``seed``.

        Constant memory: documents are built one at a time and never
        retained.  The same ``(seed, n_prefix)`` always yields the
        byte-identical prefix — ``iter_documents(seed, 10)`` is exactly
        the first ten of ``iter_documents(seed, 1_000_000)``.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        rng = random.Random(seed)
        rand = rng.random
        randrange = rng.randrange
        for index in range(n):
            roll = rand()
            runtime = next(
                (rt for bound, rt in self._persona_cdf if roll < bound),
                self._persona_cdf[-1][1],
            )
            spec = runtime.spec
            label = runtime.pick_label(rand())

            pool = runtime.span_pools[label]
            template = pool[randrange(len(pool))]
            body = template.body
            if template.choices_a:
                body = body.replace(
                    "{a}", template.choices_a[randrange(len(template.choices_a))]
                )
            if template.choices_b:
                body = body.replace(
                    "{b}", template.choices_b[randrange(len(template.choices_b))]
                )
            sentence = f"{template.prefix}{body}{template.suffix}"
            if rand() < spec.lead_in_probability:
                lead = runtime.lead_ins[randrange(len(runtime.lead_ins))]
                sentence = f"{lead} {sentence[0].lower()}{sentence[1:]}"

            low, high = spec.sentence_range
            n_sentences = low if low == high else randrange(low, high + 1)
            span_at = randrange(n_sentences) if n_sentences > 1 else 0
            if n_sentences == 1:
                text = sentence
            else:
                fillers = runtime.fillers
                parts = [
                    str(fillers[randrange(len(fillers))])
                    for _ in range(n_sentences - 1)
                ]
                parts.insert(span_at, sentence)
                text = " ".join(parts)

            yield SyntheticDocument(
                doc_id=f"syn-{seed}-{index}",
                text=text,
                label=label,
                persona=spec.name,
                n_sentences=n_sentences,
                n_words=text.count(" ") + 1,
            )

    def iter_texts(self, seed: int, n: int) -> Iterator[str]:
        """Just the text stream (the load-generator feed)."""
        return (doc.text for doc in self.iter_documents(seed, n))

    def texts(self, seed: int, n: int) -> list[str]:
        """Materialised convenience for small corpora (tests, benches)."""
        return list(self.iter_texts(seed, n))

    def sample(self, seed: int, n: int, *, every: int = 1) -> list[SyntheticDocument]:
        """Every ``every``-th document of the first ``n`` (bounded memory)."""
        if every < 1:
            raise ValueError("every must be >= 1")
        return list(
            itertools.islice(self.iter_documents(seed, n), 0, None, every)
        )
