"""Calibration pass: hit Table II's totals exactly.

The paper reports exact corpus-level measurements — 37,082 total words,
2,271 total sentences, a 115-word maximum post and a 9-sentence maximum
post.  Random generation lands close to those numbers; this module nudges
drafts the rest of the way by

1. growing one designated post to the published maxima,
2. adding/removing neutral filler sentences until the sentence total
   matches, and
3. swapping long fillers for short ones / inserting single neutral pad
   words until the word total matches.

All edits touch filler material only (or insert strictly after the gold
span), so annotations survive calibration untouched.  Every mutation is
checked against a registry of live post texts and undone if it would
create a duplicate — corpus uniqueness is an invariant, because the
preprocessing funnel downstream relies on deduplication removing exactly
the injected junk copies.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.corpus.generator import DraftPost, GeneratorConfig
from repro.corpus.templates import (
    FILLER_SENTENCES,
    MEDIUM_FILLER_SENTENCES,
    PAD_WORDS,
    SHORT_FILLER_SENTENCES,
)
from repro.text.tokenize import count_words

__all__ = ["calibrate", "CalibrationError"]


class CalibrationError(RuntimeError):
    """Raised when the drafts cannot reach the requested totals."""


def _total_words(drafts: list[DraftPost]) -> int:
    return sum(d.word_count() for d in drafts)


def _total_sentences(drafts: list[DraftPost]) -> int:
    return sum(d.sentence_count() for d in drafts)


class _TextRegistry:
    """Set of live post texts with transactional mutations.

    ``apply`` snapshots the draft, runs the mutation, and rolls it back if
    the resulting text collides with another post's.
    """

    def __init__(self, drafts: list[DraftPost]) -> None:
        self._texts = {d.text() for d in drafts}
        if len(self._texts) != len(drafts):
            raise CalibrationError("drafts must be unique before calibration")

    def apply(self, draft: DraftPost, mutation: Callable[[], None]) -> bool:
        snapshot = (list(draft.sentences), draft.span_sentence_idx)
        old_text = draft.text()
        mutation()
        new_text = draft.text()
        if new_text != old_text and new_text in self._texts:
            draft.sentences[:] = snapshot[0]
            draft.span_sentence_idx = snapshot[1]
            return False
        self._texts.discard(old_text)
        self._texts.add(new_text)
        return True


def _grow_maximum_post(
    drafts: list[DraftPost],
    config: GeneratorConfig,
    rng: np.random.Generator,
    registry: _TextRegistry,
) -> int:
    """Grow one post to ``max_sentences`` sentences and ``max_words`` words.

    Returns the index of the designated maximum post, which later phases
    must leave alone.  Short fillers keep the sentence-maximal post inside
    the word budget.
    """
    idx = max(range(len(drafts)), key=lambda i: drafts[i].word_count())
    target = drafts[idx]
    guard = 0
    while target.sentence_count() < config.max_sentences:
        filler = str(SHORT_FILLER_SENTENCES[rng.integers(len(SHORT_FILLER_SENTENCES))])
        registry.apply(target, lambda f=filler: target.append_filler(f))
        guard += 1
        if guard > 100:  # pragma: no cover - defensive
            raise CalibrationError("maximum post failed to reach max sentences")
    guard = 0
    while target.word_count() < config.max_words:
        word = str(PAD_WORDS[rng.integers(len(PAD_WORDS))])
        sentence_idx = int(rng.integers(target.sentence_count()))
        registry.apply(
            target, lambda w=word, s=sentence_idx: target.insert_pad_word(w, s)
        )
        guard += 1
        if guard > 8 * config.max_words:  # pragma: no cover - defensive
            raise CalibrationError("maximum post failed to reach max words")
    return idx


def _pick_budgeted_filler(
    words_per_sentence: float | None, rng: np.random.Generator
) -> str:
    """A filler sentence whose length tracks the remaining word budget.

    When the corpus must gain sentences without blowing the word target,
    the right filler length is (remaining word budget) / (remaining
    sentence deficit); this picks randomly among the pool entries closest
    to that number.
    """
    pool = FILLER_SENTENCES + MEDIUM_FILLER_SENTENCES + SHORT_FILLER_SENTENCES
    if words_per_sentence is None:
        return str(pool[rng.integers(len(pool))])
    scored = sorted(pool, key=lambda s: abs(count_words(s) - words_per_sentence))
    top = scored[: max(4, len(scored) // 4)]
    return str(top[rng.integers(len(top))])


def _calibrate_sentences(
    drafts: list[DraftPost],
    config: GeneratorConfig,
    rng: np.random.Generator,
    frozen: set[int],
    registry: _TextRegistry,
) -> None:
    target = config.target_total_sentences
    assert target is not None
    order = [i for i in rng.permutation(len(drafts)) if i not in frozen]
    guard = 0
    deficit = target - _total_sentences(drafts)
    while deficit != 0:
        guard += 1
        if guard > 200 * len(drafts):
            raise CalibrationError(f"sentence calibration stuck at deficit {deficit}")
        draft = drafts[order[guard % len(order)]]
        if deficit > 0:
            if draft.sentence_count() >= config.max_sentences:
                continue
            budget_per_sentence: float | None = None
            if config.target_total_words is not None:
                remaining_words = config.target_total_words - _total_words(drafts)
                budget_per_sentence = max(3.0, remaining_words / deficit)
            filler = _pick_budgeted_filler(budget_per_sentence, rng)
            if draft.word_count() + count_words(filler) > config.max_words:
                continue
            if registry.apply(draft, lambda f=filler: draft.append_filler(f)):
                deficit -= 1
        else:
            if draft.sentence_count() <= 1 or not draft.can_drop_filler():
                continue
            if registry.apply(draft, draft.drop_last_filler):
                deficit += 1


def _shrink_words(
    drafts: list[DraftPost],
    rng: np.random.Generator,
    frozen: set[int],
    registry: _TextRegistry,
    surplus: int,
) -> int:
    """Swap long fillers for short ones until ``surplus`` words are shed.

    Keeps sentence counts intact (one filler out, one filler in).  Returns
    the remaining surplus; 0 or negative means the target is reachable by
    padding back single words.
    """
    while surplus > 0:
        progress = False
        candidates = [
            int(i)
            for i in rng.permutation(len(drafts))
            if int(i) not in frozen and drafts[int(i)].can_drop_filler()
        ]
        for i in candidates:
            if surplus <= 0:
                break
            draft = drafts[i]
            before = draft.word_count()
            replacement = str(
                SHORT_FILLER_SENTENCES[rng.integers(len(SHORT_FILLER_SENTENCES))]
            )
            if count_words(replacement) >= draft.longest_filler_words():
                continue

            def swap(d: DraftPost = draft, r: str = replacement) -> None:
                d.drop_longest_filler()
                d.append_filler(r)

            if registry.apply(draft, swap):
                surplus -= before - draft.word_count()
                progress = True
        if not progress:
            break
    # Phase 2: cross-post swaps — drop a long filler from one post and
    # give a short filler to another, keeping the sentence total intact.
    # Adds capacity when the within-post swaps above are exhausted.
    shortest = min(count_words(s) for s in SHORT_FILLER_SENTENCES)
    max_words = max(d.word_count() for d in drafts)
    while surplus > 0:
        progress = False
        donors = [
            int(i)
            for i in rng.permutation(len(drafts))
            if int(i) not in frozen
            and drafts[int(i)].can_drop_filler()
            and drafts[int(i)].longest_filler_words() > shortest
        ]
        for i in donors:
            if surplus <= 0:
                break
            donor = drafts[i]
            snapshot = (list(donor.sentences), donor.span_sentence_idx)
            dropped_words = donor.longest_filler_words()
            if not registry.apply(donor, donor.drop_longest_filler):
                continue
            replacement = str(
                SHORT_FILLER_SENTENCES[rng.integers(len(SHORT_FILLER_SENTENCES))]
            )
            placed = False
            for j in rng.permutation(len(drafts))[:40]:
                receiver = drafts[int(j)]
                if int(j) == i or int(j) in frozen:
                    continue
                if receiver.word_count() + count_words(replacement) > max_words:
                    continue
                if registry.apply(
                    receiver, lambda r=receiver, s=replacement: r.append_filler(s)
                ):
                    placed = True
                    break
            if placed:
                surplus -= dropped_words - count_words(replacement)
                progress = True
            else:
                # Restore the donor exactly; its old text just left the
                # registry so the restore cannot collide.
                def restore(d: DraftPost = donor, snap=snapshot) -> None:
                    d.sentences[:] = snap[0]
                    d.span_sentence_idx = snap[1]

                registry.apply(donor, restore)
        if not progress:
            break
    return surplus


def _calibrate_words(
    drafts: list[DraftPost],
    config: GeneratorConfig,
    rng: np.random.Generator,
    frozen: set[int],
    registry: _TextRegistry,
) -> None:
    target = config.target_total_words
    assert target is not None
    deficit = target - _total_words(drafts)
    if deficit < 0:
        remaining = _shrink_words(drafts, rng, frozen, registry, -deficit)
        if remaining > 0:
            raise CalibrationError(
                f"word total overshoots target by {remaining} even after "
                "shrinking every filler; lower the generator's richness"
            )
        deficit = target - _total_words(drafts)
    eligible = [i for i in range(len(drafts)) if i not in frozen]
    order = rng.permutation(eligible)
    guard = 0
    pos = 0
    while deficit > 0:
        guard += 1
        if guard > 400 * len(drafts):  # pragma: no cover - defensive
            raise CalibrationError("word calibration stuck")
        draft = drafts[int(order[pos % len(order)])]
        pos += 1
        if draft.word_count() + 1 > config.max_words:
            continue
        word = str(PAD_WORDS[rng.integers(len(PAD_WORDS))])
        if registry.apply(draft, lambda w=word: draft.insert_pad_word(w)):
            deficit -= 1


def calibrate(drafts: list[DraftPost], config: GeneratorConfig) -> list[DraftPost]:
    """Calibrate ``drafts`` in place toward the configured totals.

    Skipped entirely when both targets are ``None`` (small test corpora).
    Returns the same list for chaining.
    """
    if config.target_total_words is None and config.target_total_sentences is None:
        return drafts
    if not drafts:
        raise CalibrationError("cannot calibrate an empty corpus")
    rng = np.random.default_rng(config.seed + 1)
    registry = _TextRegistry(drafts)
    frozen: set[int] = set()
    if config.target_total_words is not None:
        frozen.add(_grow_maximum_post(drafts, config, rng, registry))
    if config.target_total_sentences is not None:
        _calibrate_sentences(drafts, config, rng, frozen, registry)
    if config.target_total_words is not None:
        _calibrate_words(drafts, config, rng, frozen, registry)
    return drafts
