"""Simulated Beyond Blue forum.

Stands in for the live https://www.beyondblue.org.au discussion boards the
paper scraped.  The forum holds 2,000 raw posts across the paper's seven
categories: the 1,420 gold posts plus 580 junk posts (duplicates, empty
posts, excessively long posts, off-topic posts) that the preprocessing
funnel (§II-A) filters out, reproducing the paper's 2,000 → 1,420 path.

The forum can render its boards as minimal HTML pages so the scraping step
(:mod:`repro.corpus.scraper`) exercises an extract-from-markup pipeline
like the paper's BeautifulSoup collection.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field

import numpy as np

from repro.core.instance import AnnotatedInstance
from repro.corpus.generator import FORUM_CATEGORIES
from repro.corpus.templates import FILLER_SENTENCES, OFFTOPIC_SENTENCES

__all__ = ["RawForumPost", "JunkProfile", "SimulatedForum"]


@dataclass(frozen=True)
class RawForumPost:
    """A post as it appears on the forum: text + category only (§II-A)."""

    post_id: str
    text: str
    category: str


@dataclass(frozen=True)
class JunkProfile:
    """How many junk posts of each kind the forum mixes in.

    Defaults sum to 580 so the raw forum holds exactly 2,000 posts and the
    published funnel (2,000 → 1,420) reproduces.
    """

    duplicates: int = 180
    empty: int = 120
    overlong: int = 130
    offtopic: int = 150

    @property
    def total(self) -> int:
        return self.duplicates + self.empty + self.overlong + self.offtopic


@dataclass
class SimulatedForum:
    """The raw forum: gold posts plus junk, shuffled, browsable by board."""

    posts: list[RawForumPost]
    categories: tuple[str, ...] = FORUM_CATEGORIES
    _by_category: dict[str, list[RawForumPost]] = field(
        default_factory=dict, repr=False
    )

    @classmethod
    def populate(
        cls,
        gold: list[AnnotatedInstance],
        *,
        junk: JunkProfile | None = None,
        seed: int = 7,
        max_clean_words: int = 115,
    ) -> "SimulatedForum":
        """Fill the forum with gold posts and injected junk.

        Junk duplicates copy a gold post verbatim (text and category), so
        deduplication keeps exactly one of each text.  Overlong junk is
        on-topic but exceeds ``max_clean_words``; off-topic junk contains
        no mental-distress vocabulary; empty junk is whitespace.
        """
        junk = junk or JunkProfile()
        rng = np.random.default_rng(seed + 2)
        posts: list[RawForumPost] = [
            RawForumPost(inst.post.post_id, inst.post.text, inst.post.category)
            for inst in gold
        ]

        for k in range(junk.duplicates):
            source = gold[int(rng.integers(len(gold)))]
            posts.append(
                RawForumPost(f"junk-dup-{k:04d}", source.post.text, source.post.category)
            )

        whitespace = ("", " ", "\n", "\t", "  ", " \n ")
        for k in range(junk.empty):
            text = str(whitespace[int(rng.integers(len(whitespace)))])
            category = str(FORUM_CATEGORIES[int(rng.integers(len(FORUM_CATEGORIES)))])
            posts.append(RawForumPost(f"junk-empty-{k:04d}", text, category))

        seen = {p.text for p in posts}
        for k in range(junk.overlong):
            text = _overlong_text(gold, rng, max_clean_words, seen)
            seen.add(text)
            category = str(FORUM_CATEGORIES[int(rng.integers(len(FORUM_CATEGORIES)))])
            posts.append(RawForumPost(f"junk-long-{k:04d}", text, category))

        for k in range(junk.offtopic):
            text = _offtopic_text(rng, seen)
            seen.add(text)
            category = str(FORUM_CATEGORIES[int(rng.integers(len(FORUM_CATEGORIES)))])
            posts.append(RawForumPost(f"junk-offtopic-{k:04d}", text, category))

        order = rng.permutation(len(posts))
        return cls(posts=[posts[i] for i in order])

    # ------------------------------------------------------------------
    def board(self, category: str) -> list[RawForumPost]:
        """All posts on one discussion board, in forum order."""
        if not self._by_category:
            for post in self.posts:
                self._by_category.setdefault(post.category, []).append(post)
        return list(self._by_category.get(category, []))

    def render_board_html(self, category: str) -> str:
        """Render one board as the minimal HTML page the scraper parses."""
        rows = []
        for post in self.board(category):
            rows.append(
                f'    <article class="forum-post" data-post-id="{html.escape(post.post_id)}">\n'
                f'      <div class="post-body">{html.escape(post.text)}</div>\n'
                f"    </article>"
            )
        body = "\n".join(rows)
        return (
            "<!DOCTYPE html>\n<html>\n<head>"
            f"<title>{html.escape(category)} | Beyond Blue Forums (simulated)</title>"
            "</head>\n<body>\n"
            f'  <section class="board" data-category="{html.escape(category)}">\n'
            f"{body}\n"
            "  </section>\n</body>\n</html>\n"
        )

    def render_site(self) -> dict[str, str]:
        """HTML for every board, keyed by category."""
        return {c: self.render_board_html(c) for c in self.categories}

    def __len__(self) -> int:
        return len(self.posts)


def _overlong_text(
    gold: list[AnnotatedInstance],
    rng: np.random.Generator,
    max_clean_words: int,
    seen: set[str],
) -> str:
    """An on-topic post that exceeds the clean-word limit."""
    from repro.text.tokenize import count_words

    for _ in range(100):
        pieces = [gold[int(rng.integers(len(gold)))].post.text for _ in range(3)]
        while count_words(" ".join(pieces)) <= max_clean_words:
            pieces.append(str(FILLER_SENTENCES[int(rng.integers(len(FILLER_SENTENCES)))]))
        text = " ".join(pieces)
        if text not in seen:
            return text
    raise RuntimeError("could not build a unique overlong post")  # pragma: no cover


def _offtopic_text(rng: np.random.Generator, seen: set[str]) -> str:
    """A post with no mental-distress vocabulary at all."""
    for _ in range(200):
        n = int(rng.integers(1, 4))
        picks = rng.choice(len(OFFTOPIC_SENTENCES), size=n, replace=False)
        text = " ".join(str(OFFTOPIC_SENTENCES[int(i)]) for i in picks)
        if text not in seen:
            return text
    raise RuntimeError("could not build a unique off-topic post")  # pragma: no cover
