"""Synthetic Holistix post generator.

Builds the 1,420 annotated posts whose marginal statistics match the
paper's Table II and whose span vocabulary reproduces Table III.  The
generator works in drafts — a post is a list of tagged sentences plus the
location of the explanation span — so the calibration pass
(:mod:`repro.corpus.calibrate`) can add or remove filler material to hit
the published word and sentence totals exactly before final assembly.

This generator is deliberately *materialising*: it holds every draft to
calibrate totals and enforce global uniqueness, which is right for the
1,420-post paper corpus and wrong for load testing.  For an unbounded,
constant-memory stream of labelled documents over the same template
banks (millions of posts for the serving benchmarks), use the
persona-swept :class:`repro.corpus.factory.CorpusFactory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

import numpy as np

from repro.core.instance import AnnotatedInstance, Post, Span
from repro.core.labels import DIMENSIONS, WellnessDimension
from repro.corpus.hardness import (
    GENERIC_FRAMES,
    GENERIC_QUALIFIERS,
    HARDNESS,
    WEAK_PHRASES,
    TypeMixture,
)
from repro.corpus.lexicon import SECONDARY_BLEED
from repro.corpus.templates import (
    EMPHASIS_MARKERS,
    FILLER_SENTENCES,
    SPAN_TEMPLATES,
    render_span_template,
)
from repro.text.tokenize import count_words

__all__ = [
    "PAPER_CLASS_COUNTS",
    "FORUM_CATEGORIES",
    "LEAD_INS",
    "GeneratorConfig",
    "DraftPost",
    "draft_post",
    "assemble",
    "generate_drafts",
]

# Table II class marginals.
PAPER_CLASS_COUNTS: dict[WellnessDimension, int] = {
    WellnessDimension.INTELLECTUAL: 155,
    WellnessDimension.VOCATIONAL: 150,
    WellnessDimension.SPIRITUAL: 190,
    WellnessDimension.PHYSICAL: 296,
    WellnessDimension.SOCIAL: 406,
    WellnessDimension.EMOTIONAL: 223,
}

# §II-A: the seven Beyond Blue discussion categories the paper scraped.
FORUM_CATEGORIES: tuple[str, ...] = (
    "Anxiety",
    "Depression",
    "PTSD and Trauma",
    "Suicidal Thoughts and Self-Harm",
    "Relationship and Family Issues",
    "Supporting Friends and Family",
    "Grief and Loss",
)

# Which boards a post of each dimension plausibly appears on.
_CATEGORY_AFFINITY: dict[WellnessDimension, tuple[tuple[str, float], ...]] = {
    WellnessDimension.PHYSICAL: (
        ("Anxiety", 0.50),
        ("Depression", 0.30),
        ("PTSD and Trauma", 0.20),
    ),
    WellnessDimension.EMOTIONAL: (
        ("Depression", 0.40),
        ("Anxiety", 0.30),
        ("PTSD and Trauma", 0.15),
        ("Grief and Loss", 0.15),
    ),
    WellnessDimension.SOCIAL: (
        ("Relationship and Family Issues", 0.50),
        ("Supporting Friends and Family", 0.20),
        ("Grief and Loss", 0.15),
        ("Depression", 0.15),
    ),
    WellnessDimension.SPIRITUAL: (
        ("Suicidal Thoughts and Self-Harm", 0.45),
        ("Depression", 0.35),
        ("Grief and Loss", 0.20),
    ),
    WellnessDimension.INTELLECTUAL: (
        ("Anxiety", 0.40),
        ("Depression", 0.40),
        ("PTSD and Trauma", 0.20),
    ),
    WellnessDimension.VOCATIONAL: (
        ("Depression", 0.40),
        ("Anxiety", 0.40),
        ("Supporting Friends and Family", 0.20),
    ),
}

# Probability of extra filler sentences beyond the span sentence; tuned so
# the pre-calibration sentence total lands just under Table II's 2,271 (the
# calibration pass only needs to top up, never carve deeply).
_EXTRA_SENTENCE_PMF: tuple[float, ...] = (0.88, 0.08, 0.025, 0.008, 0.004, 0.003)

# Short lead-ins prepended to the span sentence (outside the span).  They
# multiply surface variety so single-sentence posts stay unique without the
# retry loop biasing the corpus toward long posts.  Public because the
# streaming corpus factory reuses the same bank.
LEAD_INS: tuple[str, ...] = (
    "These days",
    "Right now",
    "For months now",
    "To be honest",
    "Truthfully",
    "Most mornings",
    "Most nights",
    "Every single day",
    "Week after week",
    "Since last year",
    "More and more",
    "At the moment",
    "Some weeks",
    "Most of the time",
    "Deep down",
    "If i am honest",
    "Looking back",
    "Day after day",
    "Out of nowhere",
    "Bit by bit",
    "For a long time now",
    "Even on good days",
    "No matter what i try",
    "Somewhere along the way",
)


@dataclass
class GeneratorConfig:
    """Knobs for the synthetic corpus.

    Defaults reproduce the paper's Table II exactly; tests and ablations
    shrink ``class_counts`` for speed.
    """

    class_counts: Mapping[WellnessDimension, int] = field(
        default_factory=lambda: dict(PAPER_CLASS_COUNTS)
    )
    seed: int = 7
    max_words: int = 115
    max_sentences: int = 9
    target_total_words: int | None = 37082
    target_total_sentences: int | None = 2271
    hardness: Mapping[WellnessDimension, TypeMixture] | None = None
    # Annotation subjectivity (§IV): fraction of posts whose gold label
    # reflects the adjudicators' holistic reading rather than the surface
    # content — the post is written from a confusable dimension's
    # vocabulary but carries this dimension's label.  This is irreducible
    # error for every model and is what caps even MentalBERT at ~0.74.
    label_noise: float = 0.12

    def __post_init__(self) -> None:
        for dim, count in self.class_counts.items():
            if count < 0:
                raise ValueError(f"negative class count for {dim}")
        if self.max_words < 20:
            raise ValueError("max_words must be at least 20")
        if self.max_sentences < 1:
            raise ValueError("max_sentences must be at least 1")
        if not 0.0 <= self.label_noise < 1.0:
            raise ValueError("label_noise must be in [0, 1)")

    @property
    def total_posts(self) -> int:
        return sum(self.class_counts.values())


@dataclass
class DraftPost:
    """A post under construction: tagged sentences + span location.

    ``sentences`` holds ``(text, kind)`` pairs with ``kind`` one of
    ``"span"``, ``"secondary"``, ``"filler"``.  ``span_local`` is the span's
    character range *within* the span sentence; global offsets are computed
    at assembly time.
    """

    label: WellnessDimension
    category: str
    sentences: list[tuple[str, str]]
    span_sentence_idx: int
    span_local: tuple[int, int]
    secondary_dims: tuple[WellnessDimension, ...] = ()
    post_type: str = "clear"  # clear | balanced | generic
    label_first: bool = True
    marked: bool = False
    noisy: bool = False  # label reflects adjudication, not surface content

    # ------------------------------------------------------------------
    def word_count(self) -> int:
        return sum(count_words(s) for s, _ in self.sentences)

    def sentence_count(self) -> int:
        return len(self.sentences)

    def text(self) -> str:
        return " ".join(s for s, _ in self.sentences)

    # ------------------------------------------------------------------
    # Calibration hooks
    # ------------------------------------------------------------------
    def can_drop_filler(self) -> bool:
        return any(kind == "filler" for _, kind in self.sentences)

    def drop_last_filler(self) -> int:
        """Remove the last filler sentence; returns its word count."""
        for i in range(len(self.sentences) - 1, -1, -1):
            text, kind = self.sentences[i]
            if kind == "filler":
                del self.sentences[i]
                if i < self.span_sentence_idx:
                    self.span_sentence_idx -= 1
                return count_words(text)
        raise ValueError("no filler sentence to drop")

    def drop_longest_filler(self) -> int:
        """Remove the longest filler sentence; returns its word count."""
        best_idx, best_words = -1, -1
        for i, (text, kind) in enumerate(self.sentences):
            if kind == "filler" and count_words(text) > best_words:
                best_idx, best_words = i, count_words(text)
        if best_idx < 0:
            raise ValueError("no filler sentence to drop")
        del self.sentences[best_idx]
        if best_idx < self.span_sentence_idx:
            self.span_sentence_idx -= 1
        return best_words

    def longest_filler_words(self) -> int:
        """Word count of the filler :meth:`drop_longest_filler` removes."""
        counts = [count_words(t) for t, k in self.sentences if k == "filler"]
        if not counts:
            raise ValueError("draft has no filler sentence")
        return max(counts)

    def append_filler(self, sentence: str) -> int:
        """Append a filler sentence; returns its word count."""
        self.sentences.append((sentence, "filler"))
        return count_words(sentence)

    def insert_pad_word(self, word: str, sentence_idx: int | None = None) -> None:
        """Insert ``word`` before the final period of a sentence.

        Defaults to the last sentence.  When targeting the span sentence the
        insertion point (just before the terminal period) is always at or
        after ``span_local[1]``, so the gold span is never disturbed.
        """
        idx = len(self.sentences) - 1 if sentence_idx is None else sentence_idx
        text, kind = self.sentences[idx]
        if not text.endswith("."):
            raise ValueError(f"sentence does not end with a period: {text!r}")
        if kind == "span" and self.span_local[1] > len(text) - 1:
            raise ValueError("span extends to the final period; cannot pad")
        self.sentences[idx] = (f"{text[:-1]} {word}.", kind)


# ---------------------------------------------------------------------------
# Draft construction
# ---------------------------------------------------------------------------
def _pick_category(dim: WellnessDimension, rng: np.random.Generator) -> str:
    names, weights = zip(*_CATEGORY_AFFINITY[dim])
    probs = np.asarray(weights, dtype=float)
    return str(names[rng.choice(len(names), p=probs / probs.sum())])


def _pick_secondary(
    dim: WellnessDimension, rng: np.random.Generator
) -> WellnessDimension:
    bleed = SECONDARY_BLEED[dim]
    dims = list(bleed)
    probs = np.asarray([bleed[d] for d in dims], dtype=float)
    return dims[rng.choice(len(dims), p=probs / probs.sum())]


def _lead_in(
    sentence: str, rng: np.random.Generator, probability: float = 0.25
) -> str:
    """Optionally prepend a short lead-in (never part of the span).

    Lead-ins multiply surface variety; clear posts use a higher
    probability because their template space is the smallest and the
    uniqueness retry loop must not bias the corpus toward long posts.
    """
    if rng.random() < probability:
        lead = str(LEAD_INS[rng.integers(len(LEAD_INS))])
        return f"{lead} {sentence[0].lower()}{sentence[1:]}"
    return sentence


def _with_marker(sentence: str, span_text: str, rng: np.random.Generator) -> str:
    """Prepend an emphasis marker to the sentence prefix (rule 1 cue)."""
    marker = EMPHASIS_MARKERS[rng.integers(len(EMPHASIS_MARKERS))]
    body_start = sentence.index(span_text)
    prefix = sentence[:body_start]
    suffix = sentence[body_start + len(span_text) :]
    lead = marker.capitalize() if not prefix else f"{prefix.rstrip()} {marker}"
    return f"{lead} {span_text}{suffix}"


def _generic_sentence(
    label: WellnessDimension, rng: np.random.Generator
) -> tuple[str, str]:
    """Render a generic (shared-vocabulary) span sentence."""
    frame = str(GENERIC_FRAMES[rng.integers(len(GENERIC_FRAMES))])
    qualifier = str(GENERIC_QUALIFIERS[rng.integers(len(GENERIC_QUALIFIERS))])
    phrases = WEAK_PHRASES[label]
    phrase = str(phrases[rng.integers(len(phrases))])
    span = frame.format(a=qualifier, b=phrase)
    return f"{span}.", span


def draft_post(
    label: WellnessDimension,
    rng: np.random.Generator,
    *,
    max_words: int = 115,
    max_sentences: int = 9,
    hardness: Mapping[WellnessDimension, TypeMixture] | None = None,
) -> DraftPost:
    """Draft one post for ``label``.

    The post type (clear / balanced / generic) is drawn from the
    dimension's hardness mixture; see :mod:`repro.corpus.hardness` for why
    each type exists.  Fillers and an optional leading sentence are added
    around the content.
    """
    mixture = (hardness or HARDNESS)[label]
    roll = rng.random()
    if roll < mixture.clear:
        post_type = "clear"
    elif roll < mixture.clear + mixture.balanced:
        post_type = "balanced"
    else:
        post_type = "generic"

    secondary_dims: list[WellnessDimension] = []
    partner_sentence: str | None = None
    label_first = True
    marked = False

    if post_type == "generic":
        sentence, span_text = _generic_sentence(label, rng)
        sentence = _lead_in(sentence, rng)
    else:
        templates = SPAN_TEMPLATES[label]
        template = templates[rng.integers(len(templates))]
        sentence, span_text = render_span_template(template, rng)
        sentence = _lead_in(
            sentence, rng, probability=0.6 if post_type == "clear" else 0.25
        )

    if post_type == "balanced":
        partner = _pick_secondary(label, rng)
        secondary_dims.append(partner)
        marked = rng.random() < 0.35
        if marked:
            sentence = _with_marker(sentence, span_text, rng)
        # Partner content is a full-strength span template of the partner
        # dimension — the SAME vocabulary pool it uses when it is the
        # label.  A bag-of-words model therefore sees an identical bag for
        # "A dominant + B secondary" and "B dominant + A secondary"; only
        # order and the emphasis marker break the tie.
        partner_templates = SPAN_TEMPLATES[partner]
        partner_template = partner_templates[rng.integers(len(partner_templates))]
        _, partner_body = render_span_template(partner_template, rng)
        if rng.random() < 0.30:
            # Compound form: one sentence, label clause first.
            if not sentence.endswith("."):  # pragma: no cover - templates end with .
                raise RuntimeError("span sentence must end with a period")
            sentence = f"{sentence[:-1]}, and {partner_body}."
        else:
            # Sentence form: the dominant (label) sentence leads 85% of
            # the time — the perplexity rules' "context or emphasis"
            # dominance cue is primarily positional (narratives lead with
            # what matters most), which is exactly the signal an
            # attention model can learn and a bag-of-words model cannot.
            partner_sentence = f"{partner_body[0].upper()}{partner_body[1:]}."
            label_first = rng.random() < 0.85

    local_start = sentence.index(span_text)
    span_local = (local_start, local_start + len(span_text))

    if partner_sentence is None:
        sentences: list[tuple[str, str]] = [(sentence, "span")]
    elif label_first:
        sentences = [(sentence, "span"), (partner_sentence, "secondary")]
    else:
        sentences = [(partner_sentence, "secondary"), (sentence, "span")]

    n_extra = int(rng.choice(len(_EXTRA_SENTENCE_PMF), p=_EXTRA_SENTENCE_PMF))
    for _ in range(n_extra):
        if len(sentences) >= max_sentences:
            break
        filler = FILLER_SENTENCES[rng.integers(len(FILLER_SENTENCES))]
        sentences.append((str(filler), "filler"))

    # Leading filler occasionally, so spans are not always sentence 0.
    if len(sentences) < max_sentences and rng.random() < 0.04:
        filler = FILLER_SENTENCES[rng.integers(len(FILLER_SENTENCES))]
        sentences.insert(0, (str(filler), "filler"))

    span_idx = next(i for i, (_, kind) in enumerate(sentences) if kind == "span")
    draft = DraftPost(
        label=label,
        category=_pick_category(label, rng),
        sentences=sentences,
        span_sentence_idx=span_idx,
        span_local=span_local,
        secondary_dims=tuple(secondary_dims),
        post_type=post_type,
        label_first=label_first,
        marked=marked,
    )
    while draft.word_count() > max_words and draft.can_drop_filler():
        draft.drop_last_filler()
    return draft


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------
def assemble(draft: DraftPost, post_id: str) -> AnnotatedInstance:
    """Turn a draft into a frozen :class:`AnnotatedInstance`."""
    parts = [s for s, _ in draft.sentences]
    text = " ".join(parts)
    offset = sum(len(p) + 1 for p in parts[: draft.span_sentence_idx])
    start = offset + draft.span_local[0]
    end = offset + draft.span_local[1]
    span = Span(start, end, text[start:end])
    post = Post(post_id=post_id, text=text, category=draft.category)
    metadata = {
        "secondary_dims": [d.code for d in draft.secondary_dims],
        "n_sentences": draft.sentence_count(),
        "post_type": draft.post_type,
        "label_first": draft.label_first,
        "marked": draft.marked,
        "noisy": draft.noisy,
    }
    return AnnotatedInstance(post=post, span=span, label=draft.label, metadata=metadata)


def generate_drafts(config: GeneratorConfig) -> list[DraftPost]:
    """Generate all drafts with unique texts, interleaved across classes.

    Posts are shuffled so class labels are not grouped by position — the
    fixed 990/212/213 split downstream then has all classes in every part.
    """
    rng = np.random.default_rng(config.seed)
    drafts: list[DraftPost] = []
    seen_texts: set[str] = set()
    for dim in DIMENSIONS:
        for _ in range(int(config.class_counts.get(dim, 0))):
            # Annotation subjectivity: the post is *written* from a
            # confusable dimension's content but *labelled* with this
            # dimension (the adjudicated gold).  Class counts stay exact
            # because the quota is counted against the final label.
            noisy = rng.random() < config.label_noise
            content_dim = _pick_secondary(dim, rng) if noisy else dim
            for _attempt in range(60):
                draft = draft_post(
                    content_dim,
                    rng,
                    max_words=config.max_words,
                    max_sentences=config.max_sentences,
                    hardness=config.hardness,
                )
                if draft.text() not in seen_texts:
                    break
            else:  # pragma: no cover - astronomically unlikely
                raise RuntimeError(f"could not draft a unique post for {dim}")
            seen_texts.add(draft.text())
            if noisy:
                draft.label = dim
                draft.noisy = True
            drafts.append(draft)
    order = rng.permutation(len(drafts))
    return [drafts[i] for i in order]
