"""Model configurations for the six transformer baselines.

Sizes are scaled to what a numpy autograd engine can train in minutes,
but every *architectural* distinction the paper leans on is physically
present:

==============  =====================================================
Baseline        Distinguishing mechanism
==============  =====================================================
BERT            bidirectional encoder, CLS pooling, generic MLM
DistilBERT      the BERT recipe at half depth (knowledge-distillation
                regime: smaller, faster, close in accuracy)
MentalBERT      the BERT recipe pretrained on the *mental-health
                domain* corpus (more steps, in-domain text)
Flan-T5         encoder-decoder with an instruction prefix
XLNet           relative-position attention, no absolute positions
                (its Transformer-XL inheritance), permutation-style LM
GPT-2           causal decoder, last-token pooling, autoregressive LM
==============  =====================================================

The fine-tuning hyperparameters (learning rate, batch size, epochs) are
the paper's §III-A table verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ModelConfig", "MODEL_CONFIGS", "scaled_for_tests"]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture + fine-tuning hyperparameters for one baseline."""

    name: str
    dim: int = 48
    n_layers: int = 2
    n_heads: int = 4
    ffn_hidden: int = 96
    max_len: int = 40
    dropout: float = 0.1
    # Fine-tuning hyperparameters (paper §III-A).
    learning_rate: float = 1e-3
    batch_size: int = 16
    epochs: int = 10
    # Architecture switches.
    causal: bool = False
    relative_positions: bool = False
    use_absolute_positions: bool = True
    encoder_decoder: bool = False
    pooling: str = "cls"  # cls | mean | last
    instruction_prefix: str | None = None
    # Pretraining recipe.
    pretrain_objective: str | None = "mlm"  # mlm | clm | plm | None
    pretrain_domain: str = "mixed"  # mixed | mental_health
    pretrain_steps: int = 300
    seed: int = 11

    def __post_init__(self) -> None:
        if self.pooling not in ("cls", "mean", "last"):
            raise ValueError(f"unknown pooling {self.pooling!r}")
        if self.pretrain_objective not in (None, "mlm", "clm", "plm"):
            raise ValueError(f"unknown objective {self.pretrain_objective!r}")
        if self.pretrain_domain not in ("mixed", "mental_health"):
            raise ValueError(f"unknown pretrain domain {self.pretrain_domain!r}")


MODEL_CONFIGS: dict[str, ModelConfig] = {
    "BERT": ModelConfig(
        name="BERT",
        learning_rate=1e-3,
        batch_size=16,
        epochs=10,
        pooling="cls",
        pretrain_objective="mlm",
        pretrain_domain="mixed",
        pretrain_steps=300,
        seed=11,
    ),
    "DistilBERT": ModelConfig(
        name="DistilBERT",
        n_layers=1,
        learning_rate=1e-3,
        batch_size=16,
        epochs=10,
        pooling="cls",
        pretrain_objective="mlm",
        pretrain_domain="mixed",
        pretrain_steps=300,
        seed=13,
    ),
    "MentalBERT": ModelConfig(
        name="MentalBERT",
        learning_rate=1e-3,
        batch_size=16,
        epochs=10,
        pooling="cls",
        pretrain_objective="mlm",
        pretrain_domain="mental_health",
        pretrain_steps=1500,
        seed=17,
    ),
    "Flan-T5": ModelConfig(
        name="Flan-T5",
        learning_rate=3e-4,
        batch_size=8,
        epochs=10,
        encoder_decoder=True,
        pooling="mean",
        instruction_prefix="classify the wellness dimension :",
        pretrain_objective="mlm",
        pretrain_domain="mixed",
        pretrain_steps=300,
        seed=19,
    ),
    "XLNet": ModelConfig(
        name="XLNet",
        learning_rate=1e-3,
        batch_size=8,
        epochs=10,
        relative_positions=True,
        use_absolute_positions=False,
        pooling="mean",
        pretrain_objective="plm",
        pretrain_domain="mixed",
        pretrain_steps=300,
        seed=23,
    ),
    "GPT-2.0": ModelConfig(
        name="GPT-2.0",
        learning_rate=3e-4,
        batch_size=4,
        epochs=10,
        causal=True,
        pooling="last",
        pretrain_objective="clm",
        pretrain_domain="mixed",
        pretrain_steps=600,
        seed=29,
    ),
}


def scaled_for_tests(config: ModelConfig) -> ModelConfig:
    """A fast variant for unit tests: tiny model, one epoch, no pretrain."""
    return replace(
        config,
        dim=16,
        n_layers=1,
        n_heads=2,
        ffn_hidden=32,
        max_len=24,
        epochs=1,
        pretrain_objective=None,
        pretrain_steps=0,
    )
