"""BERT baseline: bidirectional encoder, CLS pooling, generic MLM.

The class is generated from the :mod:`repro.engine.registry` entry; this
module re-exports it (and the published config) under its stable public
name.
"""

from __future__ import annotations

from repro.engine.registry import get_spec, transformer_class
from repro.models.config import ModelConfig

__all__ = ["BertClassifier", "BERT_CONFIG"]

BERT_CONFIG: ModelConfig = get_spec("BERT").config
BertClassifier = transformer_class("BERT")
