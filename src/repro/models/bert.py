"""BERT baseline: bidirectional encoder, CLS pooling, generic MLM."""

from __future__ import annotations

from repro.core.labels import DIMENSIONS
from repro.models.classifier import TransformerClassifier
from repro.models.config import MODEL_CONFIGS, ModelConfig
from repro.text.vocab import Vocabulary

__all__ = ["BertClassifier", "BERT_CONFIG"]

BERT_CONFIG: ModelConfig = MODEL_CONFIGS["BERT"]


class BertClassifier(TransformerClassifier):
    """The BERT recipe: bidirectional self-attention over absolute
    positions, a ``[CLS]`` classification summary token, and masked
    language-model pretraining on a general (mixed-domain) corpus."""

    def __init__(
        self,
        vocab: Vocabulary,
        *,
        n_classes: int = len(DIMENSIONS),
        config: ModelConfig | None = None,
    ) -> None:
        super().__init__(config or BERT_CONFIG, vocab, n_classes)
