"""GPT-2 baseline: causal decoder, last-token pooling, CLM pretraining.

The class is generated from the :mod:`repro.engine.registry` entry; this
module re-exports it (and the published config) under its stable public
name.
"""

from __future__ import annotations

from repro.engine.registry import get_spec, transformer_class
from repro.models.config import ModelConfig

__all__ = ["Gpt2Classifier", "GPT2_CONFIG"]

GPT2_CONFIG: ModelConfig = get_spec("GPT-2.0").config
Gpt2Classifier = transformer_class("GPT-2.0")
