"""GPT-2 baseline: causal decoder with last-token pooling."""

from __future__ import annotations

from repro.core.labels import DIMENSIONS
from repro.models.classifier import TransformerClassifier
from repro.models.config import MODEL_CONFIGS, ModelConfig
from repro.text.vocab import Vocabulary

__all__ = ["Gpt2Classifier", "GPT2_CONFIG"]

GPT2_CONFIG: ModelConfig = MODEL_CONFIGS["GPT-2.0"]


class Gpt2Classifier(TransformerClassifier):
    """The autoregressive recipe: causal self-attention (every token sees
    only its left context), causal language-model pretraining, and the
    last non-pad token as the sequence summary."""

    def __init__(
        self,
        vocab: Vocabulary,
        *,
        n_classes: int = len(DIMENSIONS),
        config: ModelConfig | None = None,
    ) -> None:
        super().__init__(config or GPT2_CONFIG, vocab, n_classes)
