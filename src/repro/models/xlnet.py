"""XLNet baseline: relative positions, permutation-style pretraining.

The class is generated from the :mod:`repro.engine.registry` entry; this
module re-exports it (and the published config) under its stable public
name.
"""

from __future__ import annotations

from repro.engine.registry import get_spec, transformer_class
from repro.models.config import ModelConfig

__all__ = ["XLNetClassifier", "XLNET_CONFIG"]

XLNET_CONFIG: ModelConfig = get_spec("XLNet").config
XLNetClassifier = transformer_class("XLNet")
