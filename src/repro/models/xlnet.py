"""XLNet baseline: relative-position attention, permutation-style LM."""

from __future__ import annotations

from repro.core.labels import DIMENSIONS
from repro.models.classifier import TransformerClassifier
from repro.models.config import MODEL_CONFIGS, ModelConfig
from repro.text.vocab import Vocabulary

__all__ = ["XLNetClassifier", "XLNET_CONFIG"]

XLNET_CONFIG: ModelConfig = MODEL_CONFIGS["XLNet"]


class XLNetClassifier(TransformerClassifier):
    """The Transformer-XL inheritance: no absolute position table —
    position information flows only through learned relative-position
    biases — trained with a permutation-style masked objective."""

    def __init__(
        self,
        vocab: Vocabulary,
        *,
        n_classes: int = len(DIMENSIONS),
        config: ModelConfig | None = None,
    ) -> None:
        super().__init__(config or XLNET_CONFIG, vocab, n_classes)
