"""Pretraining: the corpora and objectives behind the baseline gap.

MentalBERT's advantage in Table IV comes from domain pretraining, so the
mechanism must physically exist here: a large unlabeled mental-health
corpus (more synthetic forum posts, disjoint seed from the labelled
data), a mixed general-domain corpus, and three objectives —

* **MLM** (BERT family): 15% of tokens masked, 80/10/10 mask/random/keep;
* **CLM** (GPT-2): next-token prediction under the causal mask;
* **PLM** (XLNet): masked prediction like MLM but trained on the
  relative-position encoder, standing in for permutation language
  modelling (the part of XLNet's objective a small model can exploit).
"""

from __future__ import annotations

import numpy as np

from repro.corpus.generator import GeneratorConfig, assemble, generate_drafts
from repro.corpus.templates import FILLER_SENTENCES, OFFTOPIC_SENTENCES
from repro.core.labels import DIMENSIONS
from repro.models.classifier import TransformerClassifier
from repro.nn.batching import window_bucketed_batches
from repro.nn.functional import cross_entropy
from repro.nn.optim import Adam

__all__ = [
    "build_pretraining_corpus",
    "mask_tokens",
    "pretrain",
]


def build_pretraining_corpus(
    domain: str, *, size: int = 1500, seed: int = 101
) -> list[str]:
    """Unlabeled pretraining texts.

    ``mental_health`` draws fresh synthetic forum posts (disjoint seed
    from the labelled corpus, so no train/test leakage).  ``mixed``
    replaces a third of them with general-domain text (off-topic forum
    chatter and meta sentences), diluting the in-domain signal the way
    web-scale pretraining dilutes any one domain.
    """
    if domain not in ("mixed", "mental_health"):
        raise ValueError(f"unknown pretraining domain {domain!r}")
    per_class = max(1, size // len(DIMENSIONS))
    config = GeneratorConfig(
        class_counts={dim: per_class for dim in DIMENSIONS},
        seed=seed,
        target_total_words=None,
        target_total_sentences=None,
        label_noise=0.0,
    )
    drafts = generate_drafts(config)
    texts = [assemble(d, f"pretrain-{i}").text for i, d in enumerate(drafts)]
    if domain == "mental_health":
        return texts
    rng = np.random.default_rng(seed + 1)
    generic_pool = OFFTOPIC_SENTENCES + FILLER_SENTENCES
    n_generic = len(texts) // 2
    generic = [
        " ".join(
            str(generic_pool[int(j)])
            for j in rng.choice(len(generic_pool), size=int(rng.integers(1, 4)))
        )
        for _ in range(n_generic)
    ]
    mixed = texts[: len(texts) - n_generic] + generic
    order = rng.permutation(len(mixed))
    return [mixed[i] for i in order]


def mask_tokens(
    token_ids: np.ndarray,
    *,
    mask_id: int,
    pad_id: int,
    vocab_size: int,
    rng: np.random.Generator,
    mask_prob: float = 0.15,
) -> tuple[np.ndarray, np.ndarray]:
    """BERT-style masking: returns ``(corrupted_ids, mlm_targets)``.

    Targets are -100 except at selected positions.  Of the selected
    tokens, 80% become ``[MASK]``, 10% a random token, 10% unchanged.
    """
    ids = np.asarray(token_ids, dtype=np.int64)
    targets = np.full_like(ids, -100)
    selectable = ids != pad_id
    selected = selectable & (rng.random(ids.shape) < mask_prob)
    targets[selected] = ids[selected]

    corrupted = ids.copy()
    roll = rng.random(ids.shape)
    to_mask = selected & (roll < 0.8)
    to_random = selected & (roll >= 0.8) & (roll < 0.9)
    corrupted[to_mask] = mask_id
    corrupted[to_random] = rng.integers(5, vocab_size, size=int(to_random.sum()))
    return corrupted, targets


def _mlm_step(
    model: TransformerClassifier, batch: np.ndarray, rng: np.random.Generator
):
    corrupted, targets = mask_tokens(
        batch,
        mask_id=model.vocab.mask_id,
        pad_id=model.vocab.pad_id,
        vocab_size=len(model.vocab),
        rng=rng,
    )
    if not (targets != -100).any():
        return None
    logits = model.lm_logits(corrupted)
    return cross_entropy(logits, np.where(targets == -100, -100, targets), ignore_index=-100)


def _clm_step(model: TransformerClassifier, batch: np.ndarray, rng):
    inputs = batch[:, :-1]
    targets = batch[:, 1:].copy()
    targets[targets == model.vocab.pad_id] = -100
    if not (targets != -100).any():
        return None
    logits = model.lm_logits(inputs)
    return cross_entropy(logits, targets, ignore_index=-100)


def pretrain(
    model: TransformerClassifier,
    texts: list[str],
    *,
    steps: int,
    objective: str,
    batch_size: int = 16,
    learning_rate: float = 1e-3,
    seed: int = 0,
    bucket_window: int = 8,
) -> list[float]:
    """Run the pretraining objective; returns the per-step loss trace.

    PLM shares the masked-prediction step with MLM — the permutation
    flavour lives in the model's relative-position attention, which is
    what the objective trains.

    ``bucket_window > 1`` draws that many batches' worth of sample ids
    at once and sorts them by token count before slicing into batches,
    so each batch pads to near-uniform lengths; ``<= 1`` restores one
    independent uniform draw per step.
    """
    if objective not in ("mlm", "clm", "plm"):
        raise ValueError(f"unknown objective {objective!r}")
    if not texts:
        raise ValueError("pretraining corpus is empty")
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), learning_rate)
    step_fn = _clm_step if objective == "clm" else _mlm_step
    losses: list[float] = []
    n = len(texts)
    # Tokenise the corpus once; every step then only gathers and pads.
    rows = [model.encode_ids(text) for text in texts]
    lengths = [len(row) for row in rows]
    queue: list[list[int]] = []
    for _step in range(steps):
        if bucket_window > 1:
            if not queue:
                block = rng.integers(0, n, size=batch_size * bucket_window)
                queue = list(
                    window_bucketed_batches(
                        block.tolist(), lengths, batch_size, window=bucket_window
                    )
                )
                queue.reverse()  # pop() consumes in sorted order
            picks = queue.pop()
        else:
            picks = rng.integers(0, n, size=batch_size).tolist()
        token_ids = model.pad_rows([rows[i] for i in picks])
        loss = step_fn(model, token_ids, rng)
        if loss is None:  # pragma: no cover - requires degenerate batch
            continue
        optimizer.zero_grad()
        loss.backward()
        optimizer.clip_grad_norm(1.0)
        optimizer.step()
        losses.append(loss.item())
    return losses
