"""Flan-T5 baseline: instruction-prefixed encoder-decoder."""

from __future__ import annotations

from repro.core.labels import DIMENSIONS
from repro.models.classifier import TransformerClassifier
from repro.models.config import MODEL_CONFIGS, ModelConfig
from repro.text.vocab import Vocabulary

__all__ = ["FlanT5Classifier", "FLAN_T5_CONFIG"]

FLAN_T5_CONFIG: ModelConfig = MODEL_CONFIGS["Flan-T5"]


class FlanT5Classifier(TransformerClassifier):
    """The instruction-tuned encoder-decoder recipe: the input is
    prefixed with a natural-language instruction, the encoder reads the
    post, and a single-step decoder cross-attends to produce the class —
    T5's text-to-text framing reduced to classification."""

    def __init__(
        self,
        vocab: Vocabulary,
        *,
        n_classes: int = len(DIMENSIONS),
        config: ModelConfig | None = None,
    ) -> None:
        super().__init__(config or FLAN_T5_CONFIG, vocab, n_classes)
