"""Flan-T5 baseline: instruction-prefixed encoder-decoder.

The class is generated from the :mod:`repro.engine.registry` entry; this
module re-exports it (and the published config) under its stable public
name.
"""

from __future__ import annotations

from repro.engine.registry import get_spec, transformer_class
from repro.models.config import ModelConfig

__all__ = ["FlanT5Classifier", "FLAN_T5_CONFIG"]

FLAN_T5_CONFIG: ModelConfig = get_spec("Flan-T5").config
FlanT5Classifier = transformer_class("Flan-T5")
