"""The shared transformer classifier wrapping all six baseline variants.

A single parameterised module covers every architecture in Table IV: the
config decides causality, position encoding, pooling, and (for Flan-T5)
an encoder-decoder layout with an instruction prefix.  Model-specific
subclasses in :mod:`repro.models.bert` etc. exist to give each baseline a
stable public name and its published configuration.
"""

from __future__ import annotations

import numpy as np

from repro.models.config import ModelConfig
from repro.nn.attention import MultiHeadAttention  # noqa: F401 (re-export context)
from repro.nn.functional import attention_mask_from_padding, cross_entropy
from repro.nn.layers import Embedding, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor
from repro.nn.transformer import DecoderBlock, TransformerEncoder
from repro.text.vocab import Vocabulary

__all__ = ["TransformerClassifier"]


class TransformerClassifier(Module):
    """Sequence classifier over token ids, architecture set by config."""

    def __init__(
        self, config: ModelConfig, vocab: Vocabulary, n_classes: int
    ) -> None:
        super().__init__()
        if not vocab.has_specials:
            raise ValueError("classifier vocabulary needs special tokens")
        self.config = config
        self.vocab = vocab
        self.n_classes = n_classes
        self.encoder = TransformerEncoder(
            vocab_size=len(vocab),
            max_len=config.max_len + 8,  # headroom for CLS / prefix tokens
            dim=config.dim,
            n_layers=config.n_layers,
            n_heads=config.n_heads,
            ffn_hidden=config.ffn_hidden,
            causal=config.causal,
            relative_positions=config.relative_positions,
            use_absolute_positions=config.use_absolute_positions,
            dropout=config.dropout,
            seed=config.seed,
        )
        if config.encoder_decoder:
            self.decoder_query = Embedding(1, config.dim, seed=config.seed + 7)
            self.decoder_block = DecoderBlock(
                config.dim,
                config.n_heads,
                config.ffn_hidden,
                dropout=config.dropout,
                seed=config.seed + 8,
            )
            self.decoder_norm = LayerNorm(config.dim)
        self.pooler = Linear(config.dim, config.dim, seed=config.seed + 5)
        self.classifier = Linear(config.dim, n_classes, seed=config.seed + 6)
        # Language-model head for pretraining (MLM / CLM / PLM).
        self.lm_head = Linear(config.dim, len(vocab), seed=config.seed + 9)
        self._prefix_ids = self._encode_prefix()

    @property
    def weights_version(self) -> int:
        """Monotonic count of in-place weight mutations on this model.

        Bumped by ``Module.load_state_dict`` (checkpoint / pretraining-
        cache restore) and by ``Trainer.fit`` at epoch boundaries; the
        ``PredictionEngine`` mixes it into cache keys so stale cached
        predictions are never served after the weights change.
        """
        return int(getattr(self, "_weights_version", 0))

    # ------------------------------------------------------------------
    # Tokenisation
    # ------------------------------------------------------------------
    def _encode_prefix(self) -> list[int]:
        if self.config.instruction_prefix is None:
            return []
        return [self.vocab[t] for t in self.config.instruction_prefix.split()]

    def encode_ids(self, text: str) -> list[int]:
        """Token ids for one text, with CLS/prefix handling applied.

        This is the single tokenisation path: ``encode_batch`` and the
        prediction engine's length-bucketed batching both build on it.
        """
        config = self.config
        ids = self.vocab.encode(text, max_len=config.max_len)
        if config.pooling == "cls":
            ids = [self.vocab.cls_id] + ids
        if self._prefix_ids:
            ids = self._prefix_ids + ids
        return ids

    def pad_rows(self, rows: list[list[int]]) -> np.ndarray:
        """Right-pad id rows to the longest row → ``(B, T)`` matrix."""
        width = max(len(r) for r in rows)
        batch = np.full((len(rows), width), self.vocab.pad_id, dtype=np.int64)
        for i, row in enumerate(rows):
            batch[i, : len(row)] = row
        return batch

    def encode_batch(self, texts: list[str]) -> np.ndarray:
        """Token-id matrix ``(B, T)`` with CLS/prefix and right padding."""
        return self.pad_rows([self.encode_ids(text) for text in texts])

    # ------------------------------------------------------------------
    # Forward passes
    # ------------------------------------------------------------------
    def _pool(self, hidden: Tensor, token_ids: np.ndarray) -> Tensor:
        config = self.config
        pad = self.vocab.pad_id
        if config.pooling == "cls":
            pooled = hidden[:, 0, :]
        elif config.pooling == "mean":
            keep = (token_ids != pad).astype(np.float32)[:, :, None]
            weights = Tensor(keep / np.maximum(keep.sum(axis=1, keepdims=True), 1.0))
            pooled = (hidden * weights).sum(axis=1)
        else:  # last non-pad token (GPT-2 style)
            lengths = (token_ids != pad).sum(axis=1)
            rows = np.arange(token_ids.shape[0])
            pooled = hidden[rows, np.maximum(lengths - 1, 0), :]
        return pooled

    def forward(self, token_ids: np.ndarray) -> Tensor:
        """Class logits ``(B, n_classes)`` from a token-id batch."""
        mask = attention_mask_from_padding(token_ids, self.vocab.pad_id)
        hidden = self.encoder(token_ids, padding_mask=mask)
        if self.config.encoder_decoder:
            batch = token_ids.shape[0]
            query = self.decoder_query(np.zeros((batch, 1), dtype=np.int64))
            decoded = self.decoder_block(query, hidden, memory_padding_mask=mask)
            pooled = self.decoder_norm(decoded)[:, 0, :]
        else:
            pooled = self._pool(hidden, token_ids)
        return self.classifier(self.pooler(pooled).tanh())

    def lm_logits(self, token_ids: np.ndarray) -> Tensor:
        """Token logits ``(B, T, V)`` for the pretraining objectives."""
        mask = attention_mask_from_padding(token_ids, self.vocab.pad_id)
        hidden = self.encoder(token_ids, padding_mask=mask)
        return self.lm_head(hidden)

    # ------------------------------------------------------------------
    def classification_loss(
        self, token_ids: np.ndarray, labels: np.ndarray
    ) -> Tensor:
        return cross_entropy(self.forward(token_ids), labels)

    def predict(self, texts: list[str], *, batch_size: int = 64) -> np.ndarray:
        """Predicted class ids for raw texts (inference mode)."""
        from repro.nn.tensor import no_grad

        self.eval()
        outputs: list[np.ndarray] = []
        with no_grad():
            for start in range(0, len(texts), batch_size):
                chunk = texts[start : start + batch_size]
                token_ids = self.encode_batch(chunk)
                outputs.append(self.forward(token_ids).data.argmax(axis=1))
        self.train()
        return np.concatenate(outputs) if outputs else np.empty(0, dtype=np.int64)

    def predict_proba(self, texts: list[str], *, batch_size: int = 64) -> np.ndarray:
        """Class probabilities for raw texts (used by LIME)."""
        from repro.nn.tensor import no_grad

        self.eval()
        outputs: list[np.ndarray] = []
        with no_grad():
            for start in range(0, len(texts), batch_size):
                chunk = texts[start : start + batch_size]
                token_ids = self.encode_batch(chunk)
                logits = self.forward(token_ids)
                outputs.append(logits.softmax(axis=-1).data)
        self.train()
        if not outputs:
            return np.empty((0, self.n_classes))
        return np.concatenate(outputs)
