"""Fine-tuning loop for the transformer baselines.

The Trainer owns the full §III-A protocol for one model: build (or reuse)
a vocabulary, optionally pretrain with the model's objective and domain
corpus, then fine-tune on labelled posts with the paper's hyperparameters
(learning rate / batch size / epochs per model), tracking validation
accuracy.

Pretraining is deterministic given its config and vocabulary, so the
pretrained checkpoint is cached twice over: an in-process dict (folds of
one cross-validation share it for free) and an on-disk store shared by
parallel experiment workers and later runs (``--jobs N`` processes each
fine-tune from the same checkpoint instead of re-pretraining; a second
``run all`` skips pretraining entirely).  Set ``REPRO_PRETRAIN_CACHE``
to a directory to relocate the disk store, or to ``0`` to disable it.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.labels import DIMENSIONS, WellnessDimension
from repro.models.classifier import TransformerClassifier
from repro.models.config import ModelConfig
from repro.models.pretrain import build_pretraining_corpus, pretrain
from repro.nn.batching import window_bucketed_batches
from repro.nn.optim import Adam, WarmupLinearSchedule
from repro.text.vocab import Vocabulary

__all__ = ["TrainResult", "Trainer"]

_N_CLASSES = len(DIMENSIONS)

_PRETRAINED_CACHE: dict[tuple, dict[str, np.ndarray]] = {}


def _disk_cache_dir() -> Path | None:
    """Directory of the on-disk pretraining cache (None = disabled)."""
    raw = os.environ.get("REPRO_PRETRAIN_CACHE")
    if raw == "0":
        return None
    if raw:
        return Path(raw)
    return Path.home() / ".cache" / "holistix-repro" / "pretrain"


def _disk_cache_load(path: Path) -> dict[str, np.ndarray] | None:
    try:
        with np.load(path) as payload:
            return {name: payload[name] for name in payload.files}
    except (OSError, ValueError, EOFError):
        return None  # missing or half-written file: just re-pretrain


def _disk_cache_store(path: Path, state: dict[str, np.ndarray]) -> None:
    """Write atomically so concurrent workers never read a torn file."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **state)
            os.replace(tmp_name, path)
        except BaseException:
            os.unlink(tmp_name)
            raise
    except OSError:
        pass  # read-only filesystem etc.: caching is best-effort


# Single-flight coordination for the disk cache: with ``--jobs N`` every
# worker process used to miss the cold cache simultaneously and pretrain
# the same checkpoint N times — the pool ran no faster than one job.  The
# first worker to create ``<path>.lock`` (O_CREAT|O_EXCL is atomic on
# every filesystem we care about) pretrains; the rest poll for the stored
# checkpoint instead of burning a core on duplicate work.
_LOCK_POLL_S = 0.1
_LOCK_STALE_S = 1800.0  # a healthy holder finishes well within this


def _pretrain_lock_path(path: Path) -> Path:
    return path.with_name(path.name + ".lock")


def _try_acquire_pretrain_lock(lock_path: Path) -> bool:
    """Atomically claim the single-flight lock (best-effort)."""
    try:
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        # Unwritable cache dir: behave as if we hold the lock so the
        # caller pretrains locally — caching stays best-effort.
        return True
    with os.fdopen(fd, "w") as handle:
        handle.write(str(os.getpid()))
    return True


def _release_pretrain_lock(lock_path: Path) -> None:
    try:
        os.unlink(lock_path)
    except OSError:
        pass


def _await_pretrain_cache(
    path: Path,
    lock_path: Path,
    *,
    poll_s: float = _LOCK_POLL_S,
    stale_s: float = _LOCK_STALE_S,
) -> dict[str, np.ndarray] | None:
    """Wait for the lock holder's checkpoint; ``None`` = pretrain locally.

    Returns as soon as the checkpoint lands.  Gives up when the lock
    disappears without a checkpoint (the holder crashed or could not
    write) or goes stale (the holder died without unlinking), so a
    broken peer degrades to duplicate work, never to a hang.
    """
    while True:
        state = _disk_cache_load(path)
        if state is not None:
            return state
        try:
            lock_age = time.time() - lock_path.stat().st_mtime
        except OSError:
            # Lock released: one final read catches the store/unlink
            # race, then we fall back to pretraining ourselves.
            return _disk_cache_load(path)
        if lock_age > stale_s:
            return None
        time.sleep(poll_s)


@dataclass
class TrainResult:
    """Losses and validation accuracies collected during fine-tuning."""

    train_losses: list[float] = field(default_factory=list)
    val_accuracies: list[float] = field(default_factory=list)
    pretrain_losses: list[float] = field(default_factory=list)


class Trainer:
    """Train one baseline transformer end to end.

    Parameters
    ----------
    config:
        The model's architecture + hyperparameters.
    vocab:
        Shared vocabulary; build once from the unlabeled corpus so every
        model sees the same token space.
    use_pretraining_cache:
        Pretraining is deterministic given (config, vocab size); caching
        the pretrained weights makes 10-fold cross-validation affordable
        — each fold starts from the same pretrained checkpoint and only
        fine-tuning differs, exactly like fine-tuning a published
        checkpoint per fold.
    bucket_window:
        Length-bucketing window for training minibatches (see
        :func:`repro.nn.batching.window_bucketed_batches`): every
        ``bucket_window`` batches' worth of the shuffled epoch order is
        sorted by token count so batches pad to near-uniform lengths.
        ``0`` or ``1`` restores plain shuffled slicing.
    """

    def __init__(
        self,
        config: ModelConfig,
        vocab: Vocabulary,
        *,
        n_classes: int = _N_CLASSES,
        use_pretraining_cache: bool = True,
        bucket_window: int = 8,
    ) -> None:
        self.config = config
        self.vocab = vocab
        self.n_classes = n_classes
        self.use_pretraining_cache = use_pretraining_cache
        self.bucket_window = bucket_window
        self.model = TransformerClassifier(config, vocab, n_classes)
        self.result = TrainResult()
        self._engine = None

    @property
    def engine(self):
        """Batched, cached inference engine over the trainer's model.

        Built lazily; ``fit`` invalidates its cache whenever the weights
        change so mid-training evaluation never sees stale predictions.
        """
        if self._engine is None:
            from repro.engine.engine import PredictionEngine

            self._engine = PredictionEngine.for_transformer(
                self.model,
                model_id=f"trainer:{self.config.name}:{id(self.model):x}",
                batch_size=64,
            )
        return self._engine

    def _invalidate_engine(self) -> None:
        from repro.engine.engine import bump_weights_version

        # Optimiser steps mutate parameters in place without going
        # through load_state_dict, so bump the weights version here;
        # any engine over this model (including serving replicas built
        # elsewhere) stops hitting stale cache entries.  Our own
        # engine's cache is also cleared to release the dead rows.
        bump_weights_version(self.model)
        if self._engine is not None:
            self._engine.invalidate()

    # ------------------------------------------------------------------
    def _pretrain_cache_key(self) -> tuple:
        """Everything the pretrained weights depend on.

        The vocabulary is keyed by content (not just size): two vocabs
        of equal length map tokens to different embedding rows, so their
        checkpoints must never be shared.
        """
        config = self.config
        vocab_fingerprint = hashlib.sha256(
            "\n".join(self.vocab.ordinary_tokens()).encode("utf-8")
        ).hexdigest()
        return (
            config.name,
            config.pretrain_objective,
            config.pretrain_domain,
            config.pretrain_steps,
            config.dim,
            config.n_layers,
            len(self.vocab),
            vocab_fingerprint,
            # Batch composition is part of the pretraining trajectory:
            # checkpoints from different bucketing windows must not mix.
            ("bucket_window", self.bucket_window),
        )

    def maybe_pretrain(self) -> None:
        """Run (or restore from cache) the model's pretraining phase.

        Restore order: in-process dict, then the on-disk store, then a
        real pretraining run (which populates both).  All three paths
        leave the model with identical weights; ``fit`` reseeds the
        stochastic streams afterwards, so downstream results do not
        depend on which path was taken.
        """
        config = self.config
        if config.pretrain_objective is None or config.pretrain_steps <= 0:
            return
        cache_key = self._pretrain_cache_key()
        disk_path: Path | None = None
        holds_lock = False
        if self.use_pretraining_cache:
            state = _PRETRAINED_CACHE.get(cache_key)
            if state is not None:
                self.model.load_state_dict(state)
                self._invalidate_engine()
                return
            disk_dir = _disk_cache_dir()
            if disk_dir is not None:
                digest = hashlib.sha256(repr(cache_key).encode()).hexdigest()[:32]
                disk_path = disk_dir / f"{digest}.npz"
                state = _disk_cache_load(disk_path)
                if state is None:
                    # Cold cache: elect one single-flight pretrainer;
                    # everyone else waits for its checkpoint instead of
                    # redundantly pretraining in parallel.
                    lock_path = _pretrain_lock_path(disk_path)
                    holds_lock = _try_acquire_pretrain_lock(lock_path)
                    if not holds_lock:
                        state = _await_pretrain_cache(disk_path, lock_path)
                if state is not None:
                    _PRETRAINED_CACHE[cache_key] = state
                    self.model.load_state_dict(state)
                    self._invalidate_engine()
                    return
        try:
            corpus = build_pretraining_corpus(config.pretrain_domain, seed=101)
            losses = pretrain(
                self.model,
                corpus,
                steps=config.pretrain_steps,
                objective=config.pretrain_objective,
                batch_size=16,
                learning_rate=1e-3,
                seed=config.seed,
                bucket_window=self.bucket_window,
            )
            self.result.pretrain_losses = losses
            self._invalidate_engine()
            if self.use_pretraining_cache:
                state = self.model.state_dict()
                _PRETRAINED_CACHE[cache_key] = state
                if disk_path is not None:
                    _disk_cache_store(disk_path, state)
        finally:
            if holds_lock and disk_path is not None:
                _release_pretrain_lock(_pretrain_lock_path(disk_path))

    # ------------------------------------------------------------------
    def fit(
        self,
        train_texts: list[str],
        train_labels: list[WellnessDimension],
        *,
        val_texts: list[str] | None = None,
        val_labels: list[WellnessDimension] | None = None,
    ) -> TrainResult:
        """Pretrain (once) then fine-tune with the paper hyperparameters."""
        if len(train_texts) != len(train_labels):
            raise ValueError("texts and labels length mismatch")
        if not train_texts:
            raise ValueError("cannot fine-tune on an empty training set")
        self.maybe_pretrain()
        # Fine-tuning must not depend on whether pretraining ran here or
        # was restored from cache, so restart the stochastic streams.
        self.model.reseed_rngs(self.config.seed + 500)

        config = self.config
        label_ids = np.asarray(
            [DIMENSIONS.index(label) for label in train_labels], dtype=np.int64
        )
        n = len(train_texts)
        steps_per_epoch = max(1, n // config.batch_size)
        total_steps = steps_per_epoch * config.epochs
        optimizer = Adam(self.model.parameters(), config.learning_rate)
        schedule = WarmupLinearSchedule(
            optimizer,
            warmup_steps=max(2, total_steps // 10),
            total_steps=total_steps + 1,
        )
        rng = np.random.default_rng(config.seed + 1000)

        # Tokenise once up front; epochs only re-shuffle and re-pad.
        rows = [self.model.encode_ids(text) for text in train_texts]
        lengths = [len(row) for row in rows]

        for _epoch in range(config.epochs):
            order = rng.permutation(n)[: steps_per_epoch * config.batch_size]
            for picks in window_bucketed_batches(
                order, lengths, config.batch_size, window=self.bucket_window, rng=rng
            ):
                token_ids = self.model.pad_rows([rows[i] for i in picks])
                loss = self.model.classification_loss(
                    token_ids, label_ids[np.asarray(picks)]
                )
                optimizer.zero_grad()
                loss.backward()
                optimizer.clip_grad_norm(1.0)
                schedule.step()
                optimizer.step()
                self.result.train_losses.append(loss.item())
            self._invalidate_engine()
            if val_texts and val_labels:
                self.result.val_accuracies.append(
                    self.score(val_texts, val_labels)
                )
        return self.result

    # ------------------------------------------------------------------
    def predict(self, texts: list[str]) -> list[WellnessDimension]:
        """Predicted wellness dimensions, via the prediction engine."""
        ids = self.engine.predict_ids(texts)
        return [DIMENSIONS[int(i)] for i in ids]

    def score(self, texts: list[str], labels: list[WellnessDimension]) -> float:
        """Accuracy on a labelled set."""
        predictions = self.predict(texts)
        return sum(p == g for p, g in zip(predictions, labels)) / len(labels)
