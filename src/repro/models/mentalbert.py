"""MentalBERT baseline: BERT pretrained on the mental-health domain."""

from __future__ import annotations

from repro.core.labels import DIMENSIONS
from repro.models.classifier import TransformerClassifier
from repro.models.config import MODEL_CONFIGS, ModelConfig
from repro.text.vocab import Vocabulary

__all__ = ["MentalBertClassifier", "MENTALBERT_CONFIG"]

MENTALBERT_CONFIG: ModelConfig = MODEL_CONFIGS["MentalBERT"]


class MentalBertClassifier(TransformerClassifier):
    """BERT's architecture with *domain* pretraining: twice the MLM steps
    on an all-mental-health corpus.  This is the mechanism behind
    MentalBERT's lead in Table IV — better in-domain representations
    before any labelled data is seen."""

    def __init__(
        self,
        vocab: Vocabulary,
        *,
        n_classes: int = len(DIMENSIONS),
        config: ModelConfig | None = None,
    ) -> None:
        super().__init__(config or MENTALBERT_CONFIG, vocab, n_classes)
