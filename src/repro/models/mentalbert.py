"""MentalBERT baseline: BERT pretrained longer on in-domain text.

The class is generated from the :mod:`repro.engine.registry` entry; this
module re-exports it (and the published config) under its stable public
name.
"""

from __future__ import annotations

from repro.engine.registry import get_spec, transformer_class
from repro.models.config import ModelConfig

__all__ = ["MentalBertClassifier", "MENTALBERT_CONFIG"]

MENTALBERT_CONFIG: ModelConfig = get_spec("MentalBERT").config
MentalBertClassifier = transformer_class("MentalBERT")
