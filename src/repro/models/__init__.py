"""The six transformer baselines from Table IV."""

from repro.models.bert import BERT_CONFIG, BertClassifier
from repro.models.classifier import TransformerClassifier
from repro.models.config import MODEL_CONFIGS, ModelConfig, scaled_for_tests
from repro.models.distilbert import DISTILBERT_CONFIG, DistilBertClassifier
from repro.models.flan_t5 import FLAN_T5_CONFIG, FlanT5Classifier
from repro.models.gpt2 import GPT2_CONFIG, Gpt2Classifier
from repro.models.mentalbert import MENTALBERT_CONFIG, MentalBertClassifier
from repro.models.pretrain import build_pretraining_corpus, mask_tokens, pretrain
from repro.models.trainer import Trainer, TrainResult
from repro.models.xlnet import XLNET_CONFIG, XLNetClassifier

__all__ = [
    "BERT_CONFIG",
    "BertClassifier",
    "DISTILBERT_CONFIG",
    "DistilBertClassifier",
    "FLAN_T5_CONFIG",
    "FlanT5Classifier",
    "GPT2_CONFIG",
    "Gpt2Classifier",
    "MENTALBERT_CONFIG",
    "MentalBertClassifier",
    "MODEL_CONFIGS",
    "ModelConfig",
    "Trainer",
    "TrainResult",
    "TransformerClassifier",
    "XLNET_CONFIG",
    "XLNetClassifier",
    "build_pretraining_corpus",
    "mask_tokens",
    "pretrain",
    "scaled_for_tests",
]
