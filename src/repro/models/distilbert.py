"""DistilBERT baseline: the BERT recipe at half depth."""

from __future__ import annotations

from repro.core.labels import DIMENSIONS
from repro.models.classifier import TransformerClassifier
from repro.models.config import MODEL_CONFIGS, ModelConfig
from repro.text.vocab import Vocabulary

__all__ = ["DistilBertClassifier", "DISTILBERT_CONFIG"]

DISTILBERT_CONFIG: ModelConfig = MODEL_CONFIGS["DistilBERT"]


class DistilBertClassifier(TransformerClassifier):
    """The knowledge-distillation regime: the same interface and
    pretraining as BERT with half the layers — smaller and faster at a
    small accuracy cost, which is DistilBERT's published trade-off."""

    def __init__(
        self,
        vocab: Vocabulary,
        *,
        n_classes: int = len(DIMENSIONS),
        config: ModelConfig | None = None,
    ) -> None:
        super().__init__(config or DISTILBERT_CONFIG, vocab, n_classes)
