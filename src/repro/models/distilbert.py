"""DistilBERT baseline: the BERT recipe at half depth.

The class is generated from the :mod:`repro.engine.registry` entry; this
module re-exports it (and the published config) under its stable public
name.
"""

from __future__ import annotations

from repro.engine.registry import get_spec, transformer_class
from repro.models.config import ModelConfig

__all__ = ["DistilBertClassifier", "DISTILBERT_CONFIG"]

DISTILBERT_CONFIG: ModelConfig = get_spec("DistilBERT").config
DistilBertClassifier = transformer_class("DistilBERT")
