"""Vocabulary mapping tokens to integer ids.

Shared by the TF-IDF vectoriser (feature index) and the transformer models
(embedding table index).  Supports special tokens (padding, unknown, CLS,
SEP, MASK) so a single class serves both consumers.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Iterable
from pathlib import Path

from repro.text.tokenize import word_tokenize

PAD = "[PAD]"
UNK = "[UNK]"
CLS = "[CLS]"
SEP = "[SEP]"
MASK = "[MASK]"

__all__ = ["Vocabulary", "PAD", "UNK", "CLS", "SEP", "MASK"]


class Vocabulary:
    """A frozen token ↔ id mapping built from a corpus.

    Parameters
    ----------
    tokens:
        Ordinary tokens, most frequent first.  Special tokens must not be
        included; they are always prepended in the canonical order
        ``[PAD], [UNK], [CLS], [SEP], [MASK]`` when ``specials`` is True.
    specials:
        Whether to reserve ids for the five special tokens.  TF-IDF uses
        ``specials=False``; neural models use the default True.
    """

    def __init__(self, tokens: Iterable[str], *, specials: bool = True) -> None:
        self._specials = bool(specials)
        base = [PAD, UNK, CLS, SEP, MASK] if specials else []
        self._itos: list[str] = list(base)
        seen = set(base)
        for token in tokens:
            if token in seen:
                raise ValueError(f"duplicate token in vocabulary: {token!r}")
            seen.add(token)
            self._itos.append(token)
        self._stoi: dict[str, int] = {t: i for i, t in enumerate(self._itos)}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        texts: Iterable[str],
        *,
        max_size: int | None = None,
        min_freq: int = 1,
        specials: bool = True,
    ) -> "Vocabulary":
        """Build a vocabulary from raw documents.

        Tokens are ranked by ``(-count, token)`` so ties break
        deterministically.
        """
        counts: Counter[str] = Counter()
        for text in texts:
            counts.update(word_tokenize(text))
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        kept = [t for t, c in ranked if c >= min_freq]
        if max_size is not None:
            budget = max_size - (5 if specials else 0)
            if budget < 0:
                raise ValueError("max_size too small for special tokens")
            kept = kept[:budget]
        return cls(kept, specials=specials)

    # ------------------------------------------------------------------
    # Mapping API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._itos)

    def __contains__(self, token: str) -> bool:
        return token in self._stoi

    def __getitem__(self, token: str) -> int:
        """Id of ``token``; falls back to ``[UNK]`` when specials exist."""
        idx = self._stoi.get(token)
        if idx is not None:
            return idx
        if self._specials:
            return self._stoi[UNK]
        raise KeyError(token)

    def token(self, idx: int) -> str:
        """Inverse lookup: token string for ``idx``."""
        return self._itos[idx]

    @property
    def has_specials(self) -> bool:
        return self._specials

    @property
    def num_specials(self) -> int:
        """How many reserved special-token ids precede ordinary tokens."""
        return len((PAD, UNK, CLS, SEP, MASK)) if self._specials else 0

    def ordinary_tokens(self) -> list[str]:
        """The non-special tokens in id order (what :meth:`save` persists)."""
        return self._itos[self.num_specials :]

    @property
    def pad_id(self) -> int:
        return self._require_special(PAD)

    @property
    def unk_id(self) -> int:
        return self._require_special(UNK)

    @property
    def cls_id(self) -> int:
        return self._require_special(CLS)

    @property
    def sep_id(self) -> int:
        return self._require_special(SEP)

    @property
    def mask_id(self) -> int:
        return self._require_special(MASK)

    def _require_special(self, token: str) -> int:
        if not self._specials:
            raise ValueError(f"vocabulary was built without special tokens ({token})")
        return self._stoi[token]

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(
        self,
        text: str,
        *,
        max_len: int | None = None,
        add_cls: bool = False,
        add_sep: bool = False,
        pad_to: int | None = None,
    ) -> list[int]:
        """Encode ``text`` into token ids.

        ``max_len`` truncates the *word* portion (CLS/SEP are extra),
        ``pad_to`` right-pads with ``[PAD]`` up to a total length.
        """
        ids = [self[t] for t in word_tokenize(text)]
        if max_len is not None:
            ids = ids[:max_len]
        if add_cls:
            ids = [self.cls_id] + ids
        if add_sep:
            ids = ids + [self.sep_id]
        if pad_to is not None:
            if len(ids) > pad_to:
                ids = ids[:pad_to]
            ids = ids + [self.pad_id] * (pad_to - len(ids))
        return ids

    def decode(self, ids: Iterable[int], *, skip_special: bool = True) -> list[str]:
        """Token strings for ``ids``, optionally dropping special tokens."""
        specials = {PAD, UNK, CLS, SEP, MASK} if skip_special else set()
        return [self._itos[i] for i in ids if self._itos[i] not in specials]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the vocabulary to a JSON file."""
        payload = {
            "specials": self._specials,
            "tokens": self.ordinary_tokens(),
        }
        Path(path).write_text(json.dumps(payload), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "Vocabulary":
        """Read a vocabulary previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(payload["tokens"], specials=payload["specials"])
