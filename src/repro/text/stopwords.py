"""English stop-word list.

Used by the frequent-word analysis (Table III) and optionally by the TF-IDF
vectoriser.  The list is a compact, hand-curated set of English function
words; the paper's Table III keeps some pronouns ("me") as signal words, so
the dataset-statistics code uses :data:`FUNCTION_WORDS` (a smaller list that
keeps first-person pronouns) while feature extraction may use the full
:data:`STOPWORDS`.
"""

from __future__ import annotations

__all__ = ["STOPWORDS", "FUNCTION_WORDS", "is_stopword"]

# Full stop-word list for feature extraction.
STOPWORDS: frozenset[str] = frozenset(
    """
    a about above after again against all am an and any are aren't as at be
    because been before being below between both but by can can't cannot
    could couldn't did didn't do does doesn't doing don't down during each
    few for from further had hadn't has hasn't have haven't having he he'd
    he'll he's her here here's hers herself him himself his how how's i i'd
    i'll i'm i've if in into is isn't it it's its itself let's me more most
    mustn't my myself no nor not of off on once only or other ought our ours
    ourselves out over own same shan't she she'd she'll she's should
    shouldn't so some such than that that's the their theirs them themselves
    then there there's these they they'd they'll they're they've this those
    through to too under until up very was wasn't we we'd we'll we're we've
    were weren't what what's when when's where where's which while who who's
    whom why why's with won't would wouldn't you you'd you'll you're you've
    your yours yourself yourselves
    """.split()
)

# Reduced list for Table III style frequent-word profiles: the paper keeps
# content-bearing pronouns such as "me" (Social Aspect) and words like
# "feel", so only pure grammatical glue is removed.
FUNCTION_WORDS: frozenset[str] = frozenset(
    """
    a about after all am an and any anymore are as at be because been being
    but by can cannot could did do does doing even every feels for from get means
    had has have having he her here his how i if in into is it its just keep
    keeps like my never no nobody not nothing now of off on one or our out
    over she since so some such than that the their them then there these
    they this those through to too up was we were what when where which
    while who why will with would you your
    """.split()
)


def is_stopword(token: str, *, full: bool = True) -> bool:
    """True when ``token`` is a stop word.

    ``full`` selects between :data:`STOPWORDS` (feature extraction) and
    :data:`FUNCTION_WORDS` (Table III profiles).

    >>> is_stopword("The")
    True
    >>> is_stopword("me", full=False)  # kept as Table III signal
    False
    """
    words = STOPWORDS if full else FUNCTION_WORDS
    return token.lower() in words
