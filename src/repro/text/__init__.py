"""Text-processing substrate: tokenisation, vocabulary, n-grams, TF-IDF.

The TF-IDF vectoriser assembles its matrix in sparse CSR form (see
:mod:`repro.sparse`) with a shared per-document tokenisation cache;
``sparse_output=True`` hands the CSR matrix straight to the classical
classifiers in :mod:`repro.ml`.
"""

from repro.text.ngrams import ngram_counts, ngrams, skipgrams
from repro.text.stopwords import FUNCTION_WORDS, STOPWORDS, is_stopword
from repro.text.tfidf import TfidfVectorizer
from repro.text.tokenize import (
    count_sentences,
    count_words,
    iter_tokens,
    sent_tokenize,
    word_tokenize,
)
from repro.text.vocab import CLS, MASK, PAD, SEP, UNK, Vocabulary

__all__ = [
    "CLS",
    "FUNCTION_WORDS",
    "MASK",
    "PAD",
    "SEP",
    "STOPWORDS",
    "TfidfVectorizer",
    "UNK",
    "Vocabulary",
    "count_sentences",
    "count_words",
    "is_stopword",
    "iter_tokens",
    "ngram_counts",
    "ngrams",
    "sent_tokenize",
    "skipgrams",
    "word_tokenize",
]
