"""TF-IDF vectoriser built from scratch.

The paper's traditional ML baselines "convert text data into numerical
representation using Term Frequency-Inverse Document Frequency (TF-IDF)".
This implementation mirrors scikit-learn's ``TfidfVectorizer`` defaults:

* smooth idf: ``idf(t) = ln((1 + N) / (1 + df(t))) + 1``
* optional sublinear tf: ``1 + ln(tf)``
* L2 row normalisation

so the downstream classifiers see features with the familiar scaling.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence

import numpy as np

from repro.text.stopwords import STOPWORDS
from repro.text.tokenize import word_tokenize
from repro.text.vocab import Vocabulary

__all__ = ["TfidfVectorizer"]


class TfidfVectorizer:
    """Fit a TF-IDF model on a corpus and transform documents to vectors.

    Parameters
    ----------
    max_features:
        Keep only the ``max_features`` most frequent terms (by collection
        frequency, ties broken alphabetically), like scikit-learn.
    min_df / max_df:
        Document-frequency bounds.  ``min_df`` is an absolute count;
        ``max_df`` is a fraction of documents.
    sublinear_tf:
        Use ``1 + ln(tf)`` instead of raw term frequency.
    remove_stopwords:
        Drop English stop words before counting.
    ngram_range:
        Inclusive ``(lo, hi)`` range of word n-gram lengths; unigrams only
        by default, matching the paper's frequency-based features.
    """

    def __init__(
        self,
        *,
        max_features: int | None = None,
        min_df: int = 1,
        max_df: float = 1.0,
        sublinear_tf: bool = False,
        remove_stopwords: bool = False,
        ngram_range: tuple[int, int] = (1, 1),
    ) -> None:
        if min_df < 1:
            raise ValueError("min_df must be >= 1")
        if not 0.0 < max_df <= 1.0:
            raise ValueError("max_df must be in (0, 1]")
        lo, hi = ngram_range
        if lo < 1 or hi < lo:
            raise ValueError(f"invalid ngram_range {ngram_range}")
        self.max_features = max_features
        self.min_df = min_df
        self.max_df = max_df
        self.sublinear_tf = sublinear_tf
        self.remove_stopwords = remove_stopwords
        self.ngram_range = ngram_range
        self._vocab: Vocabulary | None = None
        self._idf: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _analyze(self, text: str) -> list[str]:
        """Tokenise ``text`` into the terms this vectoriser counts."""
        tokens = word_tokenize(text)
        if self.remove_stopwords:
            tokens = [t for t in tokens if t not in STOPWORDS]
        lo, hi = self.ngram_range
        if (lo, hi) == (1, 1):
            return tokens
        terms: list[str] = []
        for n in range(lo, hi + 1):
            terms.extend(
                " ".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)
            )
        return terms

    # ------------------------------------------------------------------
    def fit(self, documents: Sequence[str]) -> "TfidfVectorizer":
        """Learn vocabulary and idf weights from ``documents``."""
        if not documents:
            raise ValueError("cannot fit TfidfVectorizer on an empty corpus")
        collection: Counter[str] = Counter()
        doc_freq: Counter[str] = Counter()
        n_docs = len(documents)
        for doc in documents:
            terms = self._analyze(doc)
            collection.update(terms)
            doc_freq.update(set(terms))

        max_df_count = self.max_df * n_docs
        eligible = [
            term
            for term, df in doc_freq.items()
            if df >= self.min_df and df <= max_df_count
        ]
        eligible.sort(key=lambda t: (-collection[t], t))
        if self.max_features is not None:
            eligible = eligible[: self.max_features]
        # Feature order is alphabetical for a stable column layout.
        eligible.sort()

        self._vocab = Vocabulary(eligible, specials=False)
        idf = np.empty(len(eligible), dtype=np.float64)
        for j, term in enumerate(eligible):
            idf[j] = math.log((1.0 + n_docs) / (1.0 + doc_freq[term])) + 1.0
        self._idf = idf
        return self

    def fit_transform(self, documents: Sequence[str]) -> np.ndarray:
        """Fit on ``documents`` and return their TF-IDF matrix."""
        return self.fit(documents).transform(documents)

    def transform(self, documents: Iterable[str]) -> np.ndarray:
        """TF-IDF matrix of shape ``(n_docs, n_features)``.

        Unknown terms are ignored; all-zero rows stay zero after the L2
        normalisation (no division by zero).
        """
        if self._vocab is None or self._idf is None:
            raise RuntimeError("TfidfVectorizer must be fitted before transform")
        docs = list(documents)
        matrix = np.zeros((len(docs), len(self._vocab)), dtype=np.float64)
        for i, doc in enumerate(docs):
            counts = Counter(t for t in self._analyze(doc) if t in self._vocab)
            for term, tf in counts.items():
                weight = 1.0 + math.log(tf) if self.sublinear_tf else float(tf)
                matrix[i, self._vocab[term]] = weight
        matrix *= self._idf
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        np.divide(matrix, norms, out=matrix, where=norms > 0)
        return matrix

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def get_state(self) -> tuple[dict, np.ndarray]:
        """Fitted state as ``(json-safe config, idf array)``.

        The config carries the constructor parameters plus the learned
        terms in column order; together with the idf vector it fully
        reconstructs the vectoriser via :meth:`from_state`.
        """
        if self._vocab is None or self._idf is None:
            raise RuntimeError("TfidfVectorizer must be fitted first")
        config = {
            "max_features": self.max_features,
            "min_df": self.min_df,
            "max_df": self.max_df,
            "sublinear_tf": self.sublinear_tf,
            "remove_stopwords": self.remove_stopwords,
            "ngram_range": list(self.ngram_range),
            "terms": self.feature_names,
        }
        return config, self._idf.copy()

    @classmethod
    def from_state(cls, config: dict, idf: np.ndarray) -> "TfidfVectorizer":
        """Rebuild a fitted vectoriser from :meth:`get_state` output."""
        terms = list(config["terms"])
        if len(terms) != idf.shape[0]:
            raise ValueError(
                f"terms/idf length mismatch: {len(terms)} vs {idf.shape[0]}"
            )
        vectorizer = cls(
            max_features=config["max_features"],
            min_df=config["min_df"],
            max_df=config["max_df"],
            sublinear_tf=config["sublinear_tf"],
            remove_stopwords=config["remove_stopwords"],
            ngram_range=tuple(config["ngram_range"]),
        )
        vectorizer._vocab = Vocabulary(terms, specials=False)
        vectorizer._idf = np.asarray(idf, dtype=np.float64).copy()
        return vectorizer

    # ------------------------------------------------------------------
    @property
    def feature_names(self) -> list[str]:
        """Terms in column order."""
        if self._vocab is None:
            raise RuntimeError("TfidfVectorizer must be fitted first")
        return [self._vocab.token(i) for i in range(len(self._vocab))]

    @property
    def idf(self) -> np.ndarray:
        """Learned idf vector (copy)."""
        if self._idf is None:
            raise RuntimeError("TfidfVectorizer must be fitted first")
        return self._idf.copy()

    @property
    def n_features(self) -> int:
        if self._vocab is None:
            raise RuntimeError("TfidfVectorizer must be fitted first")
        return len(self._vocab)
