"""TF-IDF vectoriser built from scratch, with sparse (CSR) output.

The paper's traditional ML baselines "convert text data into numerical
representation using Term Frequency-Inverse Document Frequency (TF-IDF)".
This implementation mirrors scikit-learn's ``TfidfVectorizer`` defaults:

* smooth idf: ``idf(t) = ln((1 + N) / (1 + df(t))) + 1``
* optional sublinear tf: ``1 + ln(tf)``
* L2 row normalisation

so the downstream classifiers see features with the familiar scaling.

Two performance properties matter on the hot path:

* **Sparse assembly** — the matrix is always built in CSR form
  (:class:`repro.sparse.CSRMatrix`); ``sparse_output=True`` returns it
  directly, the default densifies for backward compatibility.  The
  classical classifiers in :mod:`repro.ml` consume the CSR form natively.
* **Shared tokenisation cache** — term counts are cached per training
  document, so ``fit_transform`` tokenises each document exactly once
  and a later ``transform`` over text seen during ``fit``
  (cross-validation folds, repeated experiment passes) skips
  tokenisation entirely.  Only ``fit`` populates the cache, keeping it
  bounded by the training corpus rather than by inference traffic.

Example
-------
>>> from repro.text.tfidf import TfidfVectorizer
>>> docs = ["the cat sat", "the dog sat"]
>>> vec = TfidfVectorizer(sparse_output=True)
>>> matrix = vec.fit_transform(docs)
>>> matrix.shape == (2, 4) and matrix.nnz == 6
True
>>> vec.feature_names
['cat', 'dog', 'sat', 'the']
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence

import numpy as np

from repro.sparse import CSRMatrix
from repro.text.stopwords import STOPWORDS
from repro.text.tokenize import word_tokenize
from repro.text.vocab import Vocabulary

__all__ = ["TfidfVectorizer"]

# Training documents whose analysed term counts we keep around.  Only
# ``fit`` stores entries, but the limit still guards against a
# pathological multi-million-document corpus; 100k entries comfortably
# covers every experiment corpus.
_COUNT_CACHE_LIMIT = 100_000


class TfidfVectorizer:
    """Fit a TF-IDF model on a corpus and transform documents to vectors.

    Parameters
    ----------
    max_features:
        Keep only the ``max_features`` most frequent terms (by collection
        frequency, ties broken alphabetically), like scikit-learn.
    min_df / max_df:
        Document-frequency bounds.  ``min_df`` is an absolute count;
        ``max_df`` is a fraction of documents.
    sublinear_tf:
        Use ``1 + ln(tf)`` instead of raw term frequency.
    remove_stopwords:
        Drop English stop words before counting.
    ngram_range:
        Inclusive ``(lo, hi)`` range of word n-gram lengths; unigrams only
        by default, matching the paper's frequency-based features.
    sparse_output:
        When True, :meth:`transform` / :meth:`fit_transform` return a
        :class:`~repro.sparse.CSRMatrix` instead of a dense array.  The
        matrix is assembled sparsely either way; this flag only controls
        whether it is densified before returning.

    Example
    -------
    >>> vec = TfidfVectorizer()
    >>> matrix = vec.fit_transform(["good sleep", "bad sleep"])
    >>> matrix.shape
    (2, 3)
    >>> round(float(np.linalg.norm(matrix[0])), 9)  # rows are L2-normalised
    1.0
    """

    def __init__(
        self,
        *,
        max_features: int | None = None,
        min_df: int = 1,
        max_df: float = 1.0,
        sublinear_tf: bool = False,
        remove_stopwords: bool = False,
        ngram_range: tuple[int, int] = (1, 1),
        sparse_output: bool = False,
    ) -> None:
        if min_df < 1:
            raise ValueError("min_df must be >= 1")
        if not 0.0 < max_df <= 1.0:
            raise ValueError("max_df must be in (0, 1]")
        lo, hi = ngram_range
        if lo < 1 or hi < lo:
            raise ValueError(f"invalid ngram_range {ngram_range}")
        self.max_features = max_features
        self.min_df = min_df
        self.max_df = max_df
        self.sublinear_tf = sublinear_tf
        self.remove_stopwords = remove_stopwords
        self.ngram_range = ngram_range
        self.sparse_output = sparse_output
        self._vocab: Vocabulary | None = None
        self._idf: np.ndarray | None = None
        self._index: dict[str, int] = {}
        self._count_cache: dict[str, Counter[str]] = {}

    # ------------------------------------------------------------------
    def _analyze(self, text: str) -> list[str]:
        """Tokenise ``text`` into the terms this vectoriser counts."""
        tokens = word_tokenize(text)
        if self.remove_stopwords:
            tokens = [t for t in tokens if t not in STOPWORDS]
        lo, hi = self.ngram_range
        if (lo, hi) == (1, 1):
            return tokens
        terms: list[str] = []
        for n in range(lo, hi + 1):
            terms.extend(
                " ".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)
            )
        return terms

    def _count_cached(self, text: str, *, store: bool = False) -> Counter[str]:
        """Term counts of ``text``, memoised per document.

        The analyser's behaviour is fixed at construction time (the
        parameters are never mutated) and term counts are independent of
        the fitted vocabulary, so a document's counts can be reused
        across ``fit`` and ``transform`` — ``fit_transform`` tokenises
        each document exactly once, and a later ``transform`` over text
        seen during ``fit`` (cross-validation folds, LIME's base text)
        skips tokenisation entirely.

        Only ``fit`` stores (``store=True``): the cache stays bounded by
        the training corpus instead of growing with every inference
        request a long-lived serving vectoriser ever sees.
        """
        counts = self._count_cache.get(text)
        if counts is None:
            counts = Counter(self._analyze(text))
            if store and len(self._count_cache) < _COUNT_CACHE_LIMIT:
                self._count_cache[text] = counts
        return counts

    # ------------------------------------------------------------------
    def fit(self, documents: Sequence[str]) -> "TfidfVectorizer":
        """Learn vocabulary and idf weights from ``documents``.

        Parameters
        ----------
        documents:
            Non-empty sequence of raw text documents.

        Returns
        -------
        TfidfVectorizer
            ``self`` (fitted), for chaining.
        """
        if not documents:
            raise ValueError("cannot fit TfidfVectorizer on an empty corpus")
        collection: Counter[str] = Counter()
        doc_freq: Counter[str] = Counter()
        n_docs = len(documents)
        for doc in documents:
            counts = self._count_cached(doc, store=True)
            collection.update(counts)
            doc_freq.update(counts.keys())

        max_df_count = self.max_df * n_docs
        eligible = [
            term
            for term, df in doc_freq.items()
            if df >= self.min_df and df <= max_df_count
        ]
        eligible.sort(key=lambda t: (-collection[t], t))
        if self.max_features is not None:
            eligible = eligible[: self.max_features]
        # Feature order is alphabetical for a stable column layout.
        eligible.sort()

        self._vocab = Vocabulary(eligible, specials=False)
        self._index = {term: j for j, term in enumerate(eligible)}
        idf = np.empty(len(eligible), dtype=np.float64)
        for j, term in enumerate(eligible):
            idf[j] = math.log((1.0 + n_docs) / (1.0 + doc_freq[term])) + 1.0
        self._idf = idf
        return self

    def fit_transform(self, documents: Sequence[str]) -> np.ndarray | CSRMatrix:
        """Fit on ``documents`` and return their TF-IDF matrix.

        Thanks to the shared tokenisation cache this analyses each
        document once, not once for ``fit`` and again for ``transform``.
        """
        return self.fit(documents).transform(documents)

    def transform(self, documents: Iterable[str]) -> np.ndarray | CSRMatrix:
        """TF-IDF matrix of shape ``(n_docs, n_features)``.

        Parameters
        ----------
        documents:
            Raw texts; unknown terms are ignored, and all-zero rows stay
            zero after the L2 normalisation (no division by zero).

        Returns
        -------
        numpy.ndarray or CSRMatrix
            Dense array by default; :class:`~repro.sparse.CSRMatrix`
            when the vectoriser was built with ``sparse_output=True``.
        """
        matrix = self.transform_sparse(documents)
        return matrix if self.sparse_output else matrix.toarray()

    def transform_sparse(self, documents: Iterable[str]) -> CSRMatrix:
        """The CSR TF-IDF matrix, regardless of ``sparse_output``."""
        if self._vocab is None or self._idf is None:
            raise RuntimeError("TfidfVectorizer must be fitted before transform")
        index = self._index
        flat_cols: list[int] = []
        flat_tf: list[float] = []
        lengths: list[int] = []
        for doc in documents:
            before = len(flat_cols)
            for term, count in self._count_cached(doc).items():
                j = index.get(term)
                if j is not None:
                    flat_cols.append(j)
                    flat_tf.append(count)
            lengths.append(len(flat_cols) - before)
        indptr = np.zeros(len(lengths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        indices = np.asarray(flat_cols, dtype=np.int64)
        tf = np.asarray(flat_tf, dtype=np.float64)
        if self.sublinear_tf:
            tf = 1.0 + np.log(tf)
        matrix = CSRMatrix(
            tf * self._idf[indices],
            indices,
            indptr,
            (len(lengths), len(self._idf)),
        )
        return matrix.normalized_rows()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def get_state(self) -> tuple[dict, np.ndarray]:
        """Fitted state as ``(json-safe config, idf array)``.

        The config carries the constructor parameters plus the learned
        terms in column order; together with the idf vector it fully
        reconstructs the vectoriser via :meth:`from_state`.
        """
        if self._vocab is None or self._idf is None:
            raise RuntimeError("TfidfVectorizer must be fitted first")
        config = {
            "max_features": self.max_features,
            "min_df": self.min_df,
            "max_df": self.max_df,
            "sublinear_tf": self.sublinear_tf,
            "remove_stopwords": self.remove_stopwords,
            "ngram_range": list(self.ngram_range),
            "sparse_output": self.sparse_output,
            "terms": self.feature_names,
        }
        return config, self._idf.copy()

    @classmethod
    def from_state(cls, config: dict, idf: np.ndarray) -> "TfidfVectorizer":
        """Rebuild a fitted vectoriser from :meth:`get_state` output."""
        terms = list(config["terms"])
        if len(terms) != idf.shape[0]:
            raise ValueError(
                f"terms/idf length mismatch: {len(terms)} vs {idf.shape[0]}"
            )
        vectorizer = cls(
            max_features=config["max_features"],
            min_df=config["min_df"],
            max_df=config["max_df"],
            sublinear_tf=config["sublinear_tf"],
            remove_stopwords=config["remove_stopwords"],
            ngram_range=tuple(config["ngram_range"]),
            # Checkpoints written before the sparse pipeline carry no flag.
            sparse_output=config.get("sparse_output", False),
        )
        vectorizer._vocab = Vocabulary(terms, specials=False)
        vectorizer._index = {term: j for j, term in enumerate(terms)}
        vectorizer._idf = np.asarray(idf, dtype=np.float64).copy()
        return vectorizer

    # ------------------------------------------------------------------
    @property
    def feature_names(self) -> list[str]:
        """Terms in column order."""
        if self._vocab is None:
            raise RuntimeError("TfidfVectorizer must be fitted first")
        return [self._vocab.token(i) for i in range(len(self._vocab))]

    @property
    def idf(self) -> np.ndarray:
        """Learned idf vector (copy)."""
        if self._idf is None:
            raise RuntimeError("TfidfVectorizer must be fitted first")
        return self._idf.copy()

    @property
    def n_features(self) -> int:
        """Vocabulary size (number of matrix columns)."""
        if self._vocab is None:
            raise RuntimeError("TfidfVectorizer must be fitted first")
        return len(self._vocab)
