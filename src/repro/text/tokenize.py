"""Word and sentence tokenisation.

The paper computes word counts, sentence counts (Table II) and frequent-word
profiles over explanation spans (Table III).  Both rely on a deterministic,
dependency-free tokeniser, which this module provides.

The word tokeniser is intentionally simple — lowercased alphanumeric runs
with internal apostrophes kept (``don't`` stays one token) — because the
paper's statistics are plain word counts, and TF-IDF features downstream
want a stable, reproducible token stream rather than a linguistically
sophisticated one.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator

__all__ = [
    "word_tokenize",
    "sent_tokenize",
    "count_words",
    "count_sentences",
    "iter_tokens",
]

# A word is a run of letters/digits, optionally joined by a single internal
# apostrophe or hyphen ("don't", "self-harm" stay single tokens).
_WORD_RE = re.compile(r"[a-z0-9]+(?:['\-][a-z0-9]+)*")

# Sentence boundaries: ., !, ? possibly repeated, followed by whitespace or
# end of string.  Common abbreviations are protected first.
_ABBREVIATIONS = ("mr", "mrs", "ms", "dr", "prof", "e.g", "i.e", "etc", "vs")
_SENT_RE = re.compile(r"[.!?]+(?:\s+|$)")


def word_tokenize(text: str) -> list[str]:
    """Split ``text`` into lowercase word tokens.

    >>> word_tokenize("I can't sleep -- my anxiety is BAD.")
    ['i', "can't", 'sleep', 'my', 'anxiety', 'is', 'bad']
    """
    return _WORD_RE.findall(text.lower())


def iter_tokens(texts: Iterable[str]) -> Iterator[str]:
    """Stream tokens from many documents without materialising lists.

    >>> list(iter_tokens(["one two", "three"]))
    ['one', 'two', 'three']
    """
    for text in texts:
        yield from word_tokenize(text)


def _protect_abbreviations(text: str) -> str:
    """Replace the trailing period of known abbreviations with a marker."""
    out = text
    for abbr in _ABBREVIATIONS:
        out = re.sub(
            rf"\b{re.escape(abbr)}\.",
            lambda match: match.group(0).replace(".", "\x00"),
            out,
            flags=re.IGNORECASE,
        )
    return out


def sent_tokenize(text: str) -> list[str]:
    """Split ``text`` into sentences.

    Handles runs of terminal punctuation ("What?!"), protects a small list
    of abbreviations, and never returns empty sentences.

    >>> sent_tokenize("I feel lost. Nothing helps! What now?")
    ['I feel lost.', 'Nothing helps!', 'What now?']
    """
    protected = _protect_abbreviations(text.strip())
    if not protected:
        return []
    sentences: list[str] = []
    start = 0
    for match in _SENT_RE.finditer(protected):
        chunk = protected[start : match.end()].strip()
        if chunk:
            sentences.append(chunk.replace("\x00", "."))
        start = match.end()
    tail = protected[start:].strip()
    if tail:
        sentences.append(tail.replace("\x00", "."))
    return sentences


def count_words(text: str) -> int:
    """Number of word tokens in ``text`` (the paper's word-count measure)."""
    return len(word_tokenize(text))


def count_sentences(text: str) -> int:
    """Number of sentences in ``text`` (the paper's sentence-count measure)."""
    return len(sent_tokenize(text))
