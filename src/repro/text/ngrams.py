"""N-gram utilities shared by BLEU, ROUGE and feature extraction."""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

__all__ = ["ngrams", "ngram_counts", "skipgrams"]


def ngrams(tokens: Sequence[str], n: int) -> list[tuple[str, ...]]:
    """All contiguous ``n``-grams of ``tokens`` in order.

    >>> ngrams(["a", "b", "c"], 2)
    [('a', 'b'), ('b', 'c')]
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def ngram_counts(tokens: Sequence[str], n: int) -> Counter[tuple[str, ...]]:
    """Multiset of ``n``-grams — the object BLEU's clipped precision needs.

    >>> ngram_counts(["a", "a", "a"], 2)[("a", "a")]
    2
    """
    return Counter(ngrams(tokens, n))


def skipgrams(tokens: Sequence[str], n: int, k: int) -> list[tuple[str, ...]]:
    """``n``-grams allowing up to ``k`` skipped tokens between elements.

    Only ``n=2`` is needed by ROUGE-S; the general recursion is provided for
    completeness and tested for small ``n``.

    >>> skipgrams(["a", "b", "c"], 2, 1)
    [('a', 'b'), ('a', 'c'), ('b', 'c')]
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    results: list[tuple[str, ...]] = []

    def extend(prefix: tuple[str, ...], start: int, skips_left: int) -> None:
        if len(prefix) == n:
            results.append(prefix)
            return
        for j in range(start, len(tokens)):
            gap = j - start
            if prefix and gap > skips_left:
                break
            extend(
                prefix + (tokens[j],),
                j + 1,
                skips_left - gap if prefix else skips_left,
            )

    extend((), 0, k)
    return results
