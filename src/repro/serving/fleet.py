"""Multi-model fleet control plane for the serving gateway.

One :class:`ModelFleet` owns N named :class:`ModelEntry` instances —
each a :class:`~repro.engine.server.BatchingServerBase`-backed worker
pool with its own admission budget — plus the routing table that
decides which entry answers a request:

1. An explicit ``model`` field in the request body wins outright.
2. Otherwise the request id is hashed against the fleet's A/B split
   (entry ``weight``\\s over the non-shadow entries, seeded per fleet so
   the same request id always lands on the same entry).
3. Entries with ``weight=0`` only serve explicit traffic; when no
   weighted entry exists the fleet's default entry answers.

Shadow entries (``shadow=True``) never answer: every answered predict
is *also* submitted to each shadow entry fire-and-forget, so shadow
targets score the same texts and their :class:`ServerStats` fill up —
visible on ``/metrics`` — without a byte of their output reaching the
client.  Shadow submission failures (sheds, drains) are swallowed and
counted; mirrored traffic must never degrade the primary path.

The fleet is immutable after construction (entries, weights, and the
default never change), so the only shared mutable state is the shadow
failure counter — guarded by ``create_lock`` like every other counter
in the repo, clean under ``REPRO_LOCK_CHECK=1``.
"""

from __future__ import annotations

import hashlib
import logging
from collections.abc import Sequence

from repro.analysis.lockcheck import create_lock
from repro.engine.server import BatchingServerBase

__all__ = ["ModelEntry", "ModelFleet", "UnknownModelError"]

log = logging.getLogger("repro.serving.fleet")


class UnknownModelError(LookupError):
    """A request named a model the fleet does not serve."""

    def __init__(self, model: str, known: Sequence[str]) -> None:
        super().__init__(
            f"unknown model {model!r}; fleet serves {sorted(known)}"
        )
        self.model = model
        self.known = tuple(known)


class ModelEntry:
    """One named model in the fleet: a server pool plus routing config.

    Parameters
    ----------
    name:
        Routing name — what request bodies, admin selectors, and the
        ``model`` Prometheus label use.  Unique within a fleet.
    server:
        The :class:`BatchingServerBase` pool that serves this entry
        (threaded :class:`InferenceServer` or
        :class:`~repro.engine.procserver.ProcessInferenceServer`), with
        its own admission queue, overload policy, and stats.
    weight:
        Relative share of A/B-split traffic.  ``0.0`` means the entry
        only serves requests that name it explicitly.  Ignored for
        shadow entries.
    shadow:
        Shadow entries mirror answered traffic (scored, counted, never
        answering) and are excluded from the A/B split.
    baseline:
        Registry name of the served model, for the ``/v1/models``
        status document.  Optional for stub-backed entries.
    """

    def __init__(
        self,
        name: str,
        server: BatchingServerBase,
        *,
        weight: float = 1.0,
        shadow: bool = False,
        baseline: str | None = None,
        model_id: str | None = None,
    ) -> None:
        if not name:
            raise ValueError("model entry name must be non-empty")
        if weight < 0:
            raise ValueError(f"weight must be >= 0, got {weight}")
        self.name = name
        self.server = server
        self.weight = 0.0 if shadow else float(weight)
        self.shadow = shadow
        self.baseline = baseline
        if model_id is None:
            model_id = getattr(server, "model_id", None)
        if model_id is None:
            engines = getattr(server, "engines", None)
            model_id = engines[0].model_id if engines else name
        self.model_id = model_id

    @property
    def weights_version(self) -> int:
        """The served weights' version token (0 for static backends)."""
        version = getattr(self.server, "weights_version", None)
        if version is not None:
            return int(version)
        engine = getattr(self.server, "engine", None)
        if engine is not None:
            return int(getattr(engine, "weights_version", 0))
        return 0

    @property
    def reloadable(self) -> bool:
        """Whether this entry's server supports hot weight reload."""
        return callable(getattr(self.server, "reload_weights", None))

    def status(self) -> str:
        """Lifecycle state word for the fleet status document."""
        if not self.server.running:
            return "stopped"
        if not self.server.accepting:
            return "draining"
        return "serving"


class ModelFleet:
    """N named model entries behind one routing table.

    Parameters
    ----------
    entries:
        The fleet members.  Names must be unique and at least one entry
        must be non-shadow (someone has to answer).
    default:
        Name of the entry that serves unrouted traffic; defaults to the
        first non-shadow entry.
    split_seed:
        Seeds the request-id hash for the A/B split, so two fleets with
        the same weights can still decorrelate their routing.
    """

    def __init__(
        self,
        entries: Sequence[ModelEntry],
        *,
        default: str | None = None,
        split_seed: int = 0,
    ) -> None:
        if not entries:
            raise ValueError("a fleet needs at least one model entry")
        self._entries: dict[str, ModelEntry] = {}
        for entry in entries:
            if entry.name in self._entries:
                raise ValueError(f"duplicate model entry name {entry.name!r}")
            self._entries[entry.name] = entry
        primaries = [e for e in entries if not e.shadow]
        if not primaries:
            raise ValueError("a fleet needs at least one non-shadow entry")
        if default is None:
            default = primaries[0].name
        if default not in self._entries:
            raise ValueError(f"default model {default!r} is not in the fleet")
        if self._entries[default].shadow:
            raise ValueError(f"default model {default!r} is a shadow entry")
        self.default = default
        self.split_seed = split_seed
        self._split = tuple(e for e in primaries if e.weight > 0)
        self._total_weight = sum(e.weight for e in self._split)
        self._shadow_lock = create_lock("fleet.shadow")
        self._shadow_submitted = 0
        self._shadow_failures = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def single(
        cls,
        server: BatchingServerBase,
        *,
        name: str = "default",
        baseline: str | None = None,
        model_id: str | None = None,
    ) -> "ModelFleet":
        """The compatibility mapping: one server as a one-entry fleet.

        This is what the gateway builds when handed a bare server, and
        what ``holistix-serve --checkpoint`` maps the old single-model
        invocation onto.
        """
        return cls(
            [ModelEntry(name, server, baseline=baseline, model_id=model_id)]
        )

    # ------------------------------------------------------------------
    # Lookup + routing
    # ------------------------------------------------------------------
    @property
    def entries(self) -> tuple[ModelEntry, ...]:
        """Every entry, in registration order."""
        return tuple(self._entries.values())

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._entries)

    @property
    def shadow_entries(self) -> tuple[ModelEntry, ...]:
        return tuple(e for e in self._entries.values() if e.shadow)

    @property
    def default_entry(self) -> ModelEntry:
        return self._entries[self.default]

    def entry(self, name: str) -> ModelEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownModelError(name, tuple(self._entries)) from None

    def traffic_share(self, entry: ModelEntry) -> float:
        """Fraction of A/B-split traffic this entry receives."""
        if entry.shadow or self._total_weight <= 0:
            return 0.0
        if entry.weight <= 0:
            return 0.0
        return entry.weight / self._total_weight

    def split_fraction(self, request_id: str) -> float:
        """Deterministic position of a request id in ``[0, 1)``.

        A seeded sha256 keeps the split stable across processes and
        Python hash randomisation — the same request id always lands on
        the same entry, which is what makes A/B assignments auditable.
        """
        digest = hashlib.sha256(
            f"{self.split_seed}:{request_id}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def route(self, model: str | None, request_id: str) -> ModelEntry:
        """Apply the routing table: explicit > A/B split > default."""
        if model is not None:
            return self.entry(model)
        if self._split and self._total_weight > 0:
            point = self.split_fraction(request_id) * self._total_weight
            cumulative = 0.0
            for entry in self._split:
                cumulative += entry.weight
                if point < cumulative:
                    return entry
        return self.default_entry

    # ------------------------------------------------------------------
    # Shadow traffic
    # ------------------------------------------------------------------
    def shadow_submit(self, texts: Sequence[str]) -> None:
        """Mirror answered texts to every shadow entry, fire-and-forget.

        Shadow scoring shares the primary request's text but nothing
        else: failures (shed, draining, engine errors) are swallowed
        and counted, the futures' results are dropped unread, and no
        shadow output ever reaches a client.  Sheds still land in the
        shadow entry's own ``ServerStats`` — an undersized shadow pool
        is visible on ``/metrics``, not in user-facing latency.
        """
        for entry in self.shadow_entries:
            for text in texts:
                try:
                    future = entry.server.submit(text)
                except Exception:  # noqa: BLE001 - mirrored traffic is best-effort
                    self._record_shadow(failed=True)
                    continue
                future.add_done_callback(self._consume_shadow_result)
                self._record_shadow(failed=False)

    def _consume_shadow_result(self, future) -> None:
        try:
            future.result()
        except Exception:  # noqa: BLE001 - shadow outcomes never propagate
            self._record_shadow(failed=True)

    def _record_shadow(self, *, failed: bool) -> None:
        with self._shadow_lock:
            if failed:
                self._shadow_failures += 1
            else:
                self._shadow_submitted += 1

    def shadow_counts(self) -> dict[str, int]:
        """``{"submitted": n, "failed": n}`` mirrored-traffic counters."""
        with self._shadow_lock:
            return {
                "submitted": self._shadow_submitted,
                "failed": self._shadow_failures,
            }

    # ------------------------------------------------------------------
    # Lifecycle (delegated across every entry)
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """True while every non-shadow entry's pool is running."""
        return all(e.server.running for e in self._entries.values() if not e.shadow)

    @property
    def accepting(self) -> bool:
        """True while every non-shadow entry admits new requests."""
        return all(
            e.server.accepting for e in self._entries.values() if not e.shadow
        )

    def start_stopped(self) -> tuple[ModelEntry, ...]:
        """Start every entry that is not already running; returns them.

        The gateway uses the return value to know which servers it owns
        (and must drain + stop) versus caller-managed ones it leaves
        untouched — the same contract the single-server gateway had.
        """
        started: list[ModelEntry] = []
        for entry in self._entries.values():
            if not entry.server.running:
                entry.server.start()
                started.append(entry)
        return tuple(started)

    def drain(self, entries: Sequence[ModelEntry] | None = None) -> None:
        for entry in entries if entries is not None else self.entries:
            entry.server.drain()

    def stop(self, entries: Sequence[ModelEntry] | None = None) -> None:
        for entry in entries if entries is not None else self.entries:
            entry.server.stop()
