"""HTTP serving layer: the network boundary over the inference engine.

The stack, bottom-up:

* :mod:`repro.engine.server` — in-process replicated
  :class:`InferenceServer` (workers, admission queue, backpressure).
* :mod:`repro.serving.protocol` — the JSON wire contract (request
  validation, response shaping, typed error payloads).
* :mod:`repro.serving.gateway` — :class:`ServingGateway`, a stdlib
  ``ThreadingHTTPServer`` speaking that contract, with Prometheus
  ``/metrics`` (:mod:`repro.serving.metrics`) and graceful drain.
* :mod:`repro.serving.client` — :class:`ServingClient`, a stdlib
  ``urllib`` client with retry-on-429 + deadline semantics.
* :mod:`repro.serving.cli` — the ``holistix-serve`` console script.

See ``docs/SERVING.md`` for the wire protocol reference and deployment
notes.
"""

from repro.serving.client import (
    GatewayOverloaded,
    GatewayUnavailable,
    ServingClient,
    ServingError,
)
from repro.serving.gateway import ServingGateway
from repro.serving.metrics import parse_metrics, render_metrics
from repro.serving.protocol import (
    MAX_BATCH_TEXTS,
    MAX_BODY_BYTES,
    ProtocolError,
)

__all__ = [
    "GatewayOverloaded",
    "GatewayUnavailable",
    "MAX_BATCH_TEXTS",
    "MAX_BODY_BYTES",
    "ProtocolError",
    "ServingClient",
    "ServingError",
    "ServingGateway",
    "parse_metrics",
    "render_metrics",
]
