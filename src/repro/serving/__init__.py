"""HTTP serving layer: the network boundary over the inference engine.

The stack, bottom-up:

* :mod:`repro.engine.server` — in-process replicated
  :class:`InferenceServer` (workers, admission queue, backpressure).
* :mod:`repro.serving.fleet` — :class:`ModelFleet`, N named model
  entries with A/B routing, shadow mirroring, and per-entry stats.
* :mod:`repro.serving.protocol` — the JSON wire contract (request
  validation, response shaping, typed error payloads, the ``served_by``
  envelope).
* :mod:`repro.serving.gateway` — :class:`ServingGateway`, a stdlib
  ``ThreadingHTTPServer`` speaking that contract over a fleet, with
  Prometheus ``/metrics`` (:mod:`repro.serving.metrics`) and graceful
  drain.
* :mod:`repro.serving.client` — :class:`ServingClient`, a stdlib
  ``urllib`` client with retry-on-429 + deadline semantics, returning
  typed :class:`PredictResult` objects.
* :mod:`repro.serving.cli` — the ``holistix-serve`` console script
  (single ``--checkpoint`` or repeatable ``--model`` fleet flags).

See ``docs/SERVING.md`` for the wire protocol reference and deployment
notes.
"""

from repro.serving.client import (
    GatewayOverloaded,
    GatewayUnavailable,
    PredictBatchResult,
    PredictResult,
    ServedBy,
    ServingClient,
    ServingError,
)
from repro.serving.fleet import ModelEntry, ModelFleet, UnknownModelError
from repro.serving.gateway import ServingGateway
from repro.serving.metrics import parse_metrics, render_metrics
from repro.serving.protocol import (
    MAX_BATCH_TEXTS,
    MAX_BODY_BYTES,
    ProtocolError,
)

__all__ = [
    "GatewayOverloaded",
    "GatewayUnavailable",
    "MAX_BATCH_TEXTS",
    "MAX_BODY_BYTES",
    "ModelEntry",
    "ModelFleet",
    "PredictBatchResult",
    "PredictResult",
    "ProtocolError",
    "ServedBy",
    "ServingClient",
    "ServingError",
    "ServingGateway",
    "UnknownModelError",
    "parse_metrics",
    "render_metrics",
]
