"""``holistix-serve`` — serve a saved checkpoint over HTTP.

Loads a :meth:`~repro.core.pipeline.WellnessClassifier.save` checkpoint
directory, builds a :class:`PredictionEngine` for it through the model
registry (:func:`repro.engine.registry.build_engine` — the same single
construction path every in-process caller uses), wraps it in the
replicated :class:`InferenceServer`, and exposes it through
:class:`~repro.serving.gateway.ServingGateway`::

    holistix-serve --checkpoint /path/to/checkpoint --port 8420 \\
        --workers 4 --max-queue 512 --overload shed

SIGTERM and SIGINT trigger a graceful drain: readiness flips to 503,
in-flight requests finish, the admitted backlog resolves, and the
process exits 0 — the contract the ``e2e-serving-smoke`` CI job and any
rolling-restart deployment rely on.
"""

from __future__ import annotations

import argparse
import logging
import signal
import sys
import threading
from pathlib import Path

from repro.core.pipeline import WellnessClassifier
from repro.engine.engine import LatencyInjectedBackend
from repro.engine.procserver import ProcessInferenceServer
from repro.engine.registry import build_engine
from repro.engine.server import InferenceServer
from repro.serving.gateway import ServingGateway

__all__ = ["main"]

log = logging.getLogger("repro.serving.cli")

# Back-compat alias: the wrapper moved to the engine layer so
# multi-process worker specs can rebuild it inside worker processes.
_LatencyInjectedBackend = LatencyInjectedBackend


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="holistix-serve",
        description="Serve a saved WellnessClassifier checkpoint over HTTP.",
    )
    parser.add_argument(
        "--checkpoint",
        required=True,
        type=Path,
        help="checkpoint directory written by WellnessClassifier.save()",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8420, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="serving threads / engine replicas"
    )
    parser.add_argument(
        "--worker-processes",
        type=int,
        default=0,
        help=(
            "serve from N worker processes over shared-memory weights "
            "instead of threads (0 = threaded serving; GIL-bound compute)"
        ),
    )
    parser.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for --worker-processes "
        "(default: the platform default)",
    )
    parser.add_argument(
        "--max-batch-size", type=int, default=32, help="texts per coalesced batch"
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="how long a worker holds an open batch for more traffic",
    )
    parser.add_argument(
        "--max-queue", type=int, default=512, help="admission queue bound"
    )
    parser.add_argument(
        "--overload",
        choices=("block", "shed"),
        default="shed",
        help="full-queue policy: block submitters or shed with HTTP 429",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=2048,
        help="per-replica prediction LRU capacity (0 disables caching)",
    )
    parser.add_argument(
        "--request-timeout-s",
        type=float,
        default=30.0,
        help="shared engine deadline per HTTP request",
    )
    parser.add_argument(
        "--inject-latency-ms",
        type=float,
        default=0.0,
        help="testing aid: add fixed latency to every inference batch",
    )
    parser.add_argument(
        "--admin-token",
        default=None,
        help=(
            "shared secret enabling the /v1/admin/* endpoints (weight "
            "reload, chaos arming); omitted = admin surface disabled"
        ),
    )
    parser.add_argument(
        "--log-level",
        default="INFO",
        choices=("DEBUG", "INFO", "WARNING", "ERROR"),
        help="stderr log verbosity",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level),
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stderr,
    )

    log.info("loading checkpoint %s", args.checkpoint)
    if args.worker_processes > 0:
        # Multi-process serving: the checkpoint is read once here and
        # published to shared memory; each worker process attaches
        # zero-copy views and computes outside this process's GIL.
        server = ProcessInferenceServer.from_checkpoint(
            args.checkpoint,
            workers=args.worker_processes,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue,
            overload=args.overload,
            start_method=args.start_method,
            cache_size=args.cache_size,
            inject_latency_ms=args.inject_latency_ms,
        )
        baseline = server.model_id.split("@", 1)[0]
    else:
        classifier = WellnessClassifier.load(args.checkpoint)
        baseline = classifier.baseline
        engine = build_engine(
            classifier.baseline,
            model=classifier.model,
            vectorizer=classifier.vectorizer,
            model_id=f"{classifier.baseline}@{args.checkpoint.name}",
            cache_size=args.cache_size,
        )
        if args.inject_latency_ms > 0:
            engine.backend = LatencyInjectedBackend(
                engine.backend, args.inject_latency_ms / 1000.0
            )
        server = InferenceServer(
            engine,
            workers=args.workers,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue,
            overload=args.overload,
        )
    gateway = ServingGateway(
        server,
        baseline=baseline,
        host=args.host,
        port=args.port,
        request_timeout_s=args.request_timeout_s,
        admin_token=args.admin_token,
    )

    stop_event = threading.Event()

    def request_shutdown(signum, frame) -> None:
        log.info("received signal %s; draining", signal.Signals(signum).name)
        stop_event.set()

    signal.signal(signal.SIGTERM, request_shutdown)
    signal.signal(signal.SIGINT, request_shutdown)

    gateway.start()
    if args.worker_processes > 0:
        # Workers build their engines asynchronously; holding the ready
        # line until every process answered keeps the contract that a
        # parsed ready line means requests will actually be served.
        server.wait_ready(timeout=120.0)
    mode = (
        f"worker_processes={server.workers}"
        if args.worker_processes > 0
        else f"workers={server.workers}"
    )
    # The ready line is machine-readable: the e2e smoke driver and any
    # process supervisor can parse the bound port from it.
    print(
        f"holistix-serve ready on {gateway.url} "
        f"(model_id={gateway.model_id}, {mode}, "
        f"overload={server.overload})",
        flush=True,
    )
    stop_event.wait()
    gateway.stop()
    log.info("drained and stopped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
