"""``holistix-serve`` — serve saved checkpoints over HTTP.

Loads :meth:`~repro.core.pipeline.WellnessClassifier.save` checkpoint
directories, builds a :class:`PredictionEngine` for each through the
model registry (:func:`repro.engine.registry.build_engine` — the same
single construction path every in-process caller uses), wraps each in
its own replicated :class:`InferenceServer`, and exposes the resulting
:class:`~repro.serving.fleet.ModelFleet` through
:class:`~repro.serving.gateway.ServingGateway`::

    # One model (the classic invocation, mapped onto a one-entry fleet):
    holistix-serve --checkpoint /path/to/checkpoint --port 8420 \\
        --workers 4 --max-queue 512 --overload shed

    # A fleet: 90/10 champion/challenger A/B split plus a shadow scorer:
    holistix-serve --port 8420 \\
        --model champion=/ckpts/lr:weight=0.9 \\
        --model challenger=/ckpts/retrained:weight=0.1 \\
        --model shadow_bert=/ckpts/bert:shadow

SIGTERM and SIGINT trigger a graceful drain: readiness flips to 503,
in-flight requests finish, the admitted backlog resolves, and the
process exits 0 — the contract the ``e2e-serving-smoke`` CI job and any
rolling-restart deployment rely on.
"""

from __future__ import annotations

import argparse
import logging
import signal
import sys
import threading
from pathlib import Path

from repro.core.pipeline import WellnessClassifier
from repro.engine.engine import LatencyInjectedBackend
from repro.engine.procserver import ProcessInferenceServer
from repro.engine.registry import build_engine
from repro.engine.server import InferenceServer
from repro.serving.fleet import ModelEntry, ModelFleet
from repro.serving.gateway import ServingGateway

__all__ = ["main", "parse_model_spec"]

log = logging.getLogger("repro.serving.cli")

# Back-compat alias: the wrapper moved to the engine layer so
# multi-process worker specs can rebuild it inside worker processes.
_LatencyInjectedBackend = LatencyInjectedBackend


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="holistix-serve",
        description="Serve a saved WellnessClassifier checkpoint over HTTP.",
    )
    parser.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        help=(
            "checkpoint directory written by WellnessClassifier.save(); "
            "the single-model form, served as a one-entry fleet "
            "(mutually exclusive with --model)"
        ),
    )
    parser.add_argument(
        "--model",
        dest="models",
        action="append",
        default=None,
        metavar="NAME=CKPT[:weight=W][:shadow]",
        help=(
            "add a named fleet entry serving CKPT; repeatable.  "
            "weight sets its share of A/B-split traffic (default 1.0; "
            "0 = explicit-only); :shadow mirrors answered traffic to it "
            "without ever answering.  The first non-shadow entry is the "
            "default model."
        ),
    )
    parser.add_argument(
        "--split-seed",
        type=int,
        default=0,
        help="seed for the per-request-id A/B split hash",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8420, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="serving threads / engine replicas"
    )
    parser.add_argument(
        "--worker-processes",
        type=int,
        default=0,
        help=(
            "serve from N worker processes over shared-memory weights "
            "instead of threads (0 = threaded serving; GIL-bound compute)"
        ),
    )
    parser.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for --worker-processes "
        "(default: the platform default)",
    )
    parser.add_argument(
        "--max-batch-size", type=int, default=32, help="texts per coalesced batch"
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="how long a worker holds an open batch for more traffic",
    )
    parser.add_argument(
        "--max-queue", type=int, default=512, help="admission queue bound"
    )
    parser.add_argument(
        "--overload",
        choices=("block", "shed"),
        default="shed",
        help="full-queue policy: block submitters or shed with HTTP 429",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=2048,
        help="per-replica prediction LRU capacity (0 disables caching)",
    )
    parser.add_argument(
        "--request-timeout-s",
        type=float,
        default=30.0,
        help="shared engine deadline per HTTP request",
    )
    parser.add_argument(
        "--inject-latency-ms",
        type=float,
        default=0.0,
        help="testing aid: add fixed latency to every inference batch",
    )
    parser.add_argument(
        "--admin-token",
        default=None,
        help=(
            "shared secret enabling the /v1/admin/* endpoints (weight "
            "reload, chaos arming); omitted = admin surface disabled"
        ),
    )
    parser.add_argument(
        "--log-level",
        default="INFO",
        choices=("DEBUG", "INFO", "WARNING", "ERROR"),
        help="stderr log verbosity",
    )
    return parser


def parse_model_spec(spec: str) -> tuple[str, Path, float, bool]:
    """Parse one ``--model NAME=CKPT[:weight=W][:shadow]`` flag.

    Options are stripped off the right end, so checkpoint paths may
    themselves contain colons.  Returns ``(name, path, weight, shadow)``.
    """
    name, sep, rest = spec.partition("=")
    if not sep or not name or not rest:
        raise ValueError(
            f"--model must look like name=ckpt[:weight=W][:shadow], got {spec!r}"
        )
    weight: float | None = None
    shadow = False
    while True:
        head, colon, tail = rest.rpartition(":")
        if not colon:
            break
        if tail == "shadow":
            shadow = True
            rest = head
        elif tail.startswith("weight="):
            try:
                weight = float(tail[len("weight=") :])
            except ValueError:
                raise ValueError(
                    f"bad weight in --model {spec!r}: {tail!r}"
                ) from None
            if weight < 0:
                raise ValueError(f"--model weight must be >= 0, got {weight}")
            rest = head
        else:
            break
    if not rest:
        raise ValueError(f"--model {spec!r} has an empty checkpoint path")
    return name, Path(rest), 1.0 if weight is None else weight, shadow


def _build_entry_server(args, checkpoint: Path):
    """One worker pool over one checkpoint; returns (server, baseline)."""
    if args.worker_processes > 0:
        # Multi-process serving: the checkpoint is read once here and
        # published to shared memory; each worker process attaches
        # zero-copy views and computes outside this process's GIL.
        server = ProcessInferenceServer.from_checkpoint(
            checkpoint,
            workers=args.worker_processes,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue,
            overload=args.overload,
            start_method=args.start_method,
            cache_size=args.cache_size,
            inject_latency_ms=args.inject_latency_ms,
        )
        return server, server.model_id.split("@", 1)[0]
    classifier = WellnessClassifier.load(checkpoint)
    engine = build_engine(
        classifier.baseline,
        model=classifier.model,
        vectorizer=classifier.vectorizer,
        model_id=f"{classifier.baseline}@{checkpoint.name}",
        cache_size=args.cache_size,
    )
    if args.inject_latency_ms > 0:
        engine.backend = LatencyInjectedBackend(
            engine.backend, args.inject_latency_ms / 1000.0
        )
    server = InferenceServer(
        engine,
        workers=args.workers,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
        overload=args.overload,
    )
    return server, classifier.baseline


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level),
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stderr,
    )

    if args.checkpoint is not None and args.models:
        parser.error("--checkpoint and --model are mutually exclusive")
    if args.checkpoint is None and not args.models:
        parser.error("one of --checkpoint or --model is required")
    if args.checkpoint is not None:
        # The classic single-checkpoint invocation maps onto a
        # one-entry fleet named "default".
        specs = [("default", args.checkpoint, 1.0, False)]
    else:
        try:
            specs = [parse_model_spec(spec) for spec in args.models]
        except ValueError as error:
            parser.error(str(error))

    entries: list[ModelEntry] = []
    for name, checkpoint, weight, shadow in specs:
        log.info(
            "loading %s from %s (weight=%g%s)",
            name,
            checkpoint,
            weight,
            ", shadow" if shadow else "",
        )
        server, baseline = _build_entry_server(args, checkpoint)
        entries.append(
            ModelEntry(name, server, weight=weight, shadow=shadow, baseline=baseline)
        )
    try:
        fleet = ModelFleet(entries, split_seed=args.split_seed)
    except ValueError as error:
        parser.error(str(error))
    gateway = ServingGateway(
        fleet,
        host=args.host,
        port=args.port,
        request_timeout_s=args.request_timeout_s,
        admin_token=args.admin_token,
    )

    stop_event = threading.Event()

    def request_shutdown(signum, frame) -> None:
        log.info("received signal %s; draining", signal.Signals(signum).name)
        stop_event.set()

    signal.signal(signal.SIGTERM, request_shutdown)
    signal.signal(signal.SIGINT, request_shutdown)

    gateway.start()
    if args.worker_processes > 0:
        # Workers build their engines asynchronously; holding the ready
        # line until every process answered keeps the contract that a
        # parsed ready line means requests will actually be served.
        for entry in fleet.entries:
            entry.server.wait_ready(timeout=120.0)
    pool = gateway.server.workers
    mode = (
        f"worker_processes={pool}" if args.worker_processes > 0 else f"workers={pool}"
    )
    overload = gateway.server.overload
    if len(fleet.entries) == 1:
        detail = f"model_id={gateway.model_id}, {mode}, overload={overload}"
    else:
        fleet_desc = ",".join(
            f"{e.name}:" + ("shadow" if e.shadow else f"{e.weight:g}")
            for e in fleet.entries
        )
        detail = (
            f"models={fleet_desc}, default={fleet.default}, "
            f"{mode}, overload={overload}"
        )
    # The ready line is machine-readable: the e2e smoke driver and any
    # process supervisor can parse the bound port from it.
    print(f"holistix-serve ready on {gateway.url} ({detail})", flush=True)
    stop_event.wait()
    gateway.stop()
    log.info("drained and stopped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
