"""Stdlib HTTP client for the serving gateway.

``ServingClient`` wraps :mod:`urllib.request` (no third-party
dependencies) around the wire protocol in :mod:`repro.serving.protocol`
with production retry semantics:

* **Retry on 429** — a shed-mode admission rejection is transient by
  contract, so the client backs off (honouring the server's
  ``Retry-After`` hint, capped exponential otherwise) and retries until
  the deadline runs out.
* **Deadline, not attempts** — every call takes an overall ``deadline_s``
  budget covering connection time, all retries, and backoff sleeps; the
  per-request socket timeout is always clipped to what remains.
* **Jittered backoff** — each sleep is scaled by a random factor in
  ``[1 - retry_jitter, 1.0]`` so a herd of clients shed at the same
  instant desynchronises instead of retrying in lockstep and shedding
  again together.

Typed failures: :class:`GatewayOverloaded` (deadline exhausted while the
server kept shedding), :class:`GatewayUnavailable` (503 — draining or
stopped), :class:`ServingError` (any other non-2xx, with the decoded
error payload attached).
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from collections.abc import Sequence

from repro.serving.metrics import parse_metrics

__all__ = [
    "GatewayOverloaded",
    "GatewayUnavailable",
    "ServingClient",
    "ServingError",
]


class ServingError(RuntimeError):
    """A non-2xx gateway response (the decoded error payload attached)."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.message = message


class GatewayOverloaded(ServingError):
    """Every attempt within the deadline was answered 429."""


class GatewayUnavailable(ServingError):
    """The gateway answered 503: draining, stopped, or not ready."""


def _error_from_response(status: int, body: bytes) -> ServingError:
    code, message = "unknown", body.decode("utf-8", "replace")[:200]
    try:
        payload = json.loads(body.decode("utf-8"))
        code = payload["error"]["code"]
        message = payload["error"]["message"]
    except (ValueError, KeyError, TypeError, UnicodeDecodeError):
        pass
    if status == 429:
        return GatewayOverloaded(status, code, message)
    if status == 503:
        return GatewayUnavailable(status, code, message)
    return ServingError(status, code, message)


class ServingClient:
    """Client for one gateway base URL.

    Parameters
    ----------
    base_url:
        E.g. ``"http://127.0.0.1:8420"`` (no trailing slash needed).
    deadline_s:
        Default overall budget per call: connection + retries + backoff.
    retry_base_s / retry_max_s:
        Capped exponential backoff schedule used when a 429 carries no
        usable ``Retry-After`` hint.
    retry_jitter:
        Fraction of each backoff randomly shaved off (multiplier drawn
        uniformly from ``[1 - retry_jitter, 1.0]``).  ``0.0`` reproduces
        the deterministic schedule exactly.
    retry_seed:
        Seeds the per-client jitter RNG for reproducible tests.  Each
        client gets its own :class:`random.Random` either way, so
        concurrent clients never contend on (or correlate through) the
        global RNG.
    """

    def __init__(
        self,
        base_url: str,
        *,
        deadline_s: float = 30.0,
        retry_base_s: float = 0.05,
        retry_max_s: float = 2.0,
        retry_jitter: float = 0.5,
        retry_seed: int | None = None,
    ) -> None:
        if not 0.0 <= retry_jitter <= 1.0:
            raise ValueError(f"retry_jitter must be in [0, 1], got {retry_jitter}")
        self.base_url = base_url.rstrip("/")
        self.deadline_s = deadline_s
        self.retry_base_s = retry_base_s
        self.retry_max_s = retry_max_s
        self.retry_jitter = retry_jitter
        self._rng = random.Random(retry_seed)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def predict(
        self,
        text: str,
        *,
        top_k: int | None = None,
        deadline_s: float | None = None,
        retry_on_overload: bool = True,
        intended_at: float | None = None,
    ) -> dict:
        """``POST /v1/predict`` -> decoded response object.

        ``retry_on_overload=False`` surfaces the first 429 as
        :class:`GatewayOverloaded` immediately — for callers that
        implement their own backoff (or count sheds, like the e2e smoke
        driver).

        ``intended_at`` (a ``time.monotonic`` timestamp) anchors the
        deadline budget at the request's *intended* send time instead of
        now.  Open-loop load generators pass the scheduled arrival time
        so a request that left the pacer late does not get extra retry
        budget — time already lost in the client queue counts against
        the deadline, exactly as the latency histogram counts it.
        """
        body: dict = {"text": text}
        if top_k is not None:
            body["top_k"] = top_k
        return self._call(
            "POST",
            "/v1/predict",
            body,
            deadline_s,
            retry_429=retry_on_overload,
            intended_at=intended_at,
        )

    def predict_batch(
        self,
        texts: Sequence[str],
        *,
        top_k: int | None = None,
        deadline_s: float | None = None,
        retry_on_overload: bool = True,
        intended_at: float | None = None,
    ) -> dict:
        """``POST /v1/predict_batch`` -> decoded response object."""
        body: dict = {"texts": list(texts)}
        if top_k is not None:
            body["top_k"] = top_k
        return self._call(
            "POST",
            "/v1/predict_batch",
            body,
            deadline_s,
            retry_429=retry_on_overload,
            intended_at=intended_at,
        )

    def healthz(self, *, deadline_s: float | None = None) -> dict:
        """``GET /healthz`` (raises :class:`GatewayUnavailable` on 503)."""
        return self._call("GET", "/healthz", None, deadline_s, retry_429=False)

    def models(self, *, deadline_s: float | None = None) -> dict:
        """``GET /v1/models`` -> the registry listing."""
        return self._call("GET", "/v1/models", None, deadline_s)

    def metrics_text(self, *, deadline_s: float | None = None) -> str:
        """``GET /metrics`` -> raw Prometheus exposition text."""
        return self._request_once(
            "GET", "/metrics", None, self._resolve(deadline_s)
        )[1].decode("utf-8")

    def metrics(self, *, deadline_s: float | None = None) -> dict:
        """``GET /metrics`` parsed to ``{(name, labelset): value}``."""
        return parse_metrics(self.metrics_text(deadline_s=deadline_s))

    def wait_ready(self, *, deadline_s: float | None = None) -> dict:
        """Poll ``/healthz`` until ready or the deadline expires."""
        deadline = time.monotonic() + self._resolve(deadline_s)
        while True:
            try:
                return self.healthz(deadline_s=1.0)
            except (ServingError, OSError) as error:
                if time.monotonic() >= deadline:
                    raise GatewayUnavailable(
                        503, "not_ready", f"gateway not ready in time: {error}"
                    )
            time.sleep(0.05)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _resolve(self, deadline_s: float | None) -> float:
        return self.deadline_s if deadline_s is None else deadline_s

    def _call(
        self,
        method: str,
        path: str,
        body: dict | None,
        deadline_s: float | None,
        *,
        retry_429: bool = True,
        intended_at: float | None = None,
    ) -> dict:
        budget = self._resolve(deadline_s)
        anchor = time.monotonic() if intended_at is None else intended_at
        deadline = anchor + budget
        attempt = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise GatewayOverloaded(
                    429, "deadline_exceeded", f"no capacity within {budget}s"
                )
            status, raw, headers = self._request_full(method, path, body, remaining)
            if 200 <= status < 300:
                return json.loads(raw.decode("utf-8"))
            error = _error_from_response(status, raw)
            if status != 429 or not retry_429:
                raise error
            backoff = self._backoff_s(attempt, headers.get("Retry-After"))
            attempt += 1
            remaining = deadline - time.monotonic()
            if remaining <= backoff:
                raise error
            time.sleep(backoff)

    def _backoff_s(self, attempt: int, retry_after: str | None) -> float:
        backoff = min(self.retry_max_s, self.retry_base_s * (2**attempt))
        if retry_after is not None:
            try:
                # Honour the server's hint, but never beyond our cap —
                # the deadline budget, not the server, bounds waiting.
                backoff = min(float(retry_after), self.retry_max_s)
            except ValueError:
                pass
        if self.retry_jitter > 0.0:
            # Jitter applies to the Retry-After path too: the hint is
            # the same constant for every shed client, which is exactly
            # the synchronised-herd case jitter exists to break.
            backoff *= self._rng.uniform(1.0 - self.retry_jitter, 1.0)
        return backoff

    def _request_once(
        self, method: str, path: str, body: dict | None, timeout_s: float
    ) -> tuple[int, bytes]:
        status, raw, _ = self._request_full(method, path, body, timeout_s)
        if not 200 <= status < 300:
            raise _error_from_response(status, raw)
        return status, raw

    def _request_full(
        self, method: str, path: str, body: dict | None, timeout_s: float
    ) -> tuple[int, bytes, dict]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=max(0.001, timeout_s)
            ) as response:
                return response.status, response.read(), dict(response.headers)
        except urllib.error.HTTPError as error:
            with error:
                return error.code, error.read(), dict(error.headers)
