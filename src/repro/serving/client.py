"""Stdlib HTTP client for the serving gateway.

``ServingClient`` wraps :mod:`urllib.request` (no third-party
dependencies) around the wire protocol in :mod:`repro.serving.protocol`
with production retry semantics:

* **Retry on 429** — a shed-mode admission rejection is transient by
  contract, so the client backs off (honouring the server's
  ``Retry-After`` hint, capped exponential otherwise) and retries until
  the deadline runs out.
* **Deadline, not attempts** — every call takes an overall ``deadline_s``
  budget covering connection time, all retries, and backoff sleeps; the
  per-request socket timeout is always clipped to what remains.
* **Jittered backoff** — each sleep is scaled by a random factor in
  ``[1 - retry_jitter, 1.0]`` so a herd of clients shed at the same
  instant desynchronises instead of retrying in lockstep and shedding
  again together.
* **Transport retries, budgeted** — connection resets, truncated or
  malformed responses, and worker-death 503s (code ``backend_failure``)
  are retried on the predict paths, but every retry of any kind spends
  from a token-bucket *retry budget* refilled by successful calls, so a
  dying server sees bounded amplification instead of a retry storm.
* **Circuit breaker** — ``breaker_threshold`` consecutive transport
  failures open the circuit: calls fail fast with :class:`CircuitOpen`
  (no network traffic) until ``breaker_cooldown_s`` passes, then one
  half-open probe decides between closing the circuit and re-opening.
* **Deadline propagation** — predict requests carry ``X-Deadline-Ms``
  (the remaining budget at send time) so the gateway can stop working
  on requests the client has already abandoned.

Predict calls return a typed :class:`PredictResult` (label, probs,
``served_by`` fleet envelope) instead of a raw dict; dict-style access
still works as a deprecated shim during migration.  Typed failures:
:class:`GatewayOverloaded` (deadline exhausted while the server kept
shedding), :class:`GatewayUnavailable` (503 — draining or stopped),
:class:`CircuitOpen` (failed fast client-side), and
:class:`ServingError` (any other non-2xx) — all carrying the structured
error body (``code``, ``message``, ``retriable``, optional ``model``).
"""

from __future__ import annotations

import http.client
import json
import math
import random
import threading
import time
import urllib.error
import urllib.request
import warnings
from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.lockcheck import create_lock
from repro.serving.metrics import parse_metrics
from repro.serving.protocol import RETRIABLE_CODES, error_body

__all__ = [
    "CircuitOpen",
    "GatewayOverloaded",
    "GatewayUnavailable",
    "PredictBatchResult",
    "PredictResult",
    "ServedBy",
    "ServingClient",
    "ServingError",
]


class ServingError(RuntimeError):
    """A non-2xx gateway response, carrying the structured error body.

    ``retriable`` mirrors the wire payload's field (defaulting from
    :data:`~repro.serving.protocol.RETRIABLE_CODES` when the response
    predates it), ``model`` names the fleet entry the error concerns
    when the gateway resolved one, and :attr:`body` is the canonical
    ``{"error": {...}}`` payload shape.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        model: str | None = None,
        retriable: bool | None = None,
    ) -> None:
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.message = message
        self.model = model
        self.retriable = (code in RETRIABLE_CODES) if retriable is None else retriable

    @property
    def body(self) -> dict:
        """The structured error payload this exception carries."""
        return error_body(
            self.code, self.message, model=self.model, retriable=self.retriable
        )


class GatewayOverloaded(ServingError):
    """Every attempt within the deadline was answered 429."""


class GatewayUnavailable(ServingError):
    """The gateway answered 503: draining, stopped, or not ready."""


class CircuitOpen(ServingError):
    """The client-side circuit breaker is open: failed fast, no request
    was sent.  Clears after the cooldown via a half-open probe."""

    def __init__(self, message: str) -> None:
        super().__init__(503, "circuit_open", message, retriable=True)


def _error_from_response(status: int, body: bytes) -> ServingError:
    code, message = "unknown", body.decode("utf-8", "replace")[:200]
    model: str | None = None
    retriable: bool | None = None
    try:
        payload = json.loads(body.decode("utf-8"))
        error = payload["error"]
        code = error["code"]
        message = error["message"]
        maybe_model = error.get("model")
        if isinstance(maybe_model, str):
            model = maybe_model
        maybe_retriable = error.get("retriable")
        if isinstance(maybe_retriable, bool):
            retriable = maybe_retriable
    except (ValueError, KeyError, TypeError, UnicodeDecodeError):
        pass
    if status == 429:
        return GatewayOverloaded(status, code, message, model=model, retriable=retriable)
    if status == 503:
        return GatewayUnavailable(
            status, code, message, model=model, retriable=retriable
        )
    return ServingError(status, code, message, model=model, retriable=retriable)


def _warn_dict_access(kind: str) -> None:
    warnings.warn(
        f"dict-style access to {kind} is deprecated; "
        "use the typed attributes (.label, .probabilities, .served_by, ...)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class ServedBy:
    """The response envelope naming which fleet entry answered."""

    model: str
    weights_version: int

    @classmethod
    def from_raw(cls, raw: object) -> "ServedBy | None":
        if not isinstance(raw, dict):
            return None
        model = raw.get("model")
        if not isinstance(model, str):
            return None
        try:
            version = int(raw.get("weights_version", 0))
        except (TypeError, ValueError):
            version = 0
        return cls(model=model, weights_version=version)


class PredictResult:
    """One typed prediction from ``POST /v1/predict``.

    Attributes mirror the wire response: ``label`` (the predicted
    dimension code), ``probabilities`` (full ``{label: p}`` map, or
    ``None`` when ``top_k`` was requested), ``top_k`` (ranked
    ``{"label", "probability"}`` list, or ``None``), ``latency_ms``,
    ``model_id``, and ``served_by`` (the fleet envelope, ``None`` from
    pre-fleet gateways).  ``raw`` keeps the decoded JSON object.

    Dict-style access (``result["label"]``) still works but emits a
    :class:`DeprecationWarning` — it is the migration shim for callers
    written against the raw-dict client.
    """

    __slots__ = (
        "label",
        "probabilities",
        "top_k",
        "latency_ms",
        "model_id",
        "served_by",
        "raw",
    )

    def __init__(
        self,
        *,
        label: str | None,
        probabilities: dict[str, float] | None,
        top_k: list[dict] | None,
        latency_ms: float | None,
        model_id: str | None,
        served_by: ServedBy | None,
        raw: dict,
    ) -> None:
        self.label = label
        self.probabilities = probabilities
        self.top_k = top_k
        self.latency_ms = latency_ms
        self.model_id = model_id
        self.served_by = served_by
        self.raw = raw

    @classmethod
    def from_raw(cls, raw: dict) -> "PredictResult":
        """Build from a decoded response object, tolerating old shapes."""
        latency = raw.get("latency_ms")
        return cls(
            label=raw.get("label"),
            probabilities=raw.get("probabilities"),
            top_k=raw.get("top_k"),
            latency_ms=float(latency) if latency is not None else None,
            model_id=raw.get("model_id"),
            served_by=ServedBy.from_raw(raw.get("served_by")),
            raw=raw,
        )

    def __repr__(self) -> str:
        return (
            f"PredictResult(label={self.label!r}, "
            f"served_by={self.served_by!r}, model_id={self.model_id!r})"
        )

    # Deprecated dict shim ---------------------------------------------
    def __getitem__(self, key: str) -> object:
        _warn_dict_access("PredictResult")
        return self.raw[key]

    def __contains__(self, key: object) -> bool:
        _warn_dict_access("PredictResult")
        return key in self.raw

    def get(self, key: str, default: object = None) -> object:
        _warn_dict_access("PredictResult")
        return self.raw.get(key, default)


class PredictBatchResult:
    """Typed response from ``POST /v1/predict_batch``.

    ``predictions`` is one :class:`PredictResult` per input text (each
    sharing the batch's ``model_id``/``served_by``); the deprecated
    dict shim mirrors :class:`PredictResult`'s.
    """

    __slots__ = ("predictions", "model_id", "served_by", "raw")

    def __init__(
        self,
        *,
        predictions: list[PredictResult],
        model_id: str | None,
        served_by: ServedBy | None,
        raw: dict,
    ) -> None:
        self.predictions = predictions
        self.model_id = model_id
        self.served_by = served_by
        self.raw = raw

    @classmethod
    def from_raw(cls, raw: dict) -> "PredictBatchResult":
        model_id = raw.get("model_id")
        served = ServedBy.from_raw(raw.get("served_by"))
        predictions = []
        for item in raw.get("predictions", []):
            if isinstance(item, dict):
                result = PredictResult.from_raw(item)
                result.model_id = model_id
                result.served_by = served
                predictions.append(result)
        return cls(
            predictions=predictions, model_id=model_id, served_by=served, raw=raw
        )

    def __len__(self) -> int:
        return len(self.predictions)

    def __repr__(self) -> str:
        return (
            f"PredictBatchResult(n={len(self.predictions)}, "
            f"served_by={self.served_by!r})"
        )

    # Deprecated dict shim ---------------------------------------------
    def __getitem__(self, key: str) -> object:
        _warn_dict_access("PredictBatchResult")
        return self.raw[key]

    def __contains__(self, key: object) -> bool:
        _warn_dict_access("PredictBatchResult")
        return key in self.raw

    def get(self, key: str, default: object = None) -> object:
        _warn_dict_access("PredictBatchResult")
        return self.raw.get(key, default)


class ServingClient:
    """Client for one gateway base URL.

    Parameters
    ----------
    base_url:
        E.g. ``"http://127.0.0.1:8420"`` (no trailing slash needed).
    deadline_s:
        Default overall budget per call: connection + retries + backoff.
    retry_base_s / retry_max_s:
        Capped exponential backoff schedule used when a 429 carries no
        usable ``Retry-After`` hint.
    retry_jitter:
        Fraction of each backoff randomly shaved off (multiplier drawn
        uniformly from ``[1 - retry_jitter, 1.0]``).  ``0.0`` reproduces
        the deterministic schedule exactly.
    retry_seed:
        Seeds the per-client jitter RNG for reproducible tests.  Each
        client gets its own :class:`random.Random` either way, so
        concurrent clients never contend on (or correlate through) the
        global RNG.
    breaker_threshold:
        Consecutive transport failures that open the circuit breaker.
    breaker_cooldown_s:
        How long the breaker stays open before allowing one half-open
        probe request through.
    retry_budget / retry_credit:
        Token bucket bounding total retries: the bucket starts full at
        ``retry_budget`` tokens, every retry (429 backoff, transport
        error, backend-failure 503) spends one, and every successful
        call refunds ``retry_credit`` (capped at the budget).  An empty
        bucket surfaces the underlying error instead of retrying.
    """

    def __init__(
        self,
        base_url: str,
        *,
        deadline_s: float = 30.0,
        retry_base_s: float = 0.05,
        retry_max_s: float = 2.0,
        retry_jitter: float = 0.5,
        retry_seed: int | None = None,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 1.0,
        retry_budget: float = 64.0,
        retry_credit: float = 0.5,
    ) -> None:
        if not 0.0 <= retry_jitter <= 1.0:
            raise ValueError(f"retry_jitter must be in [0, 1], got {retry_jitter}")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.deadline_s = deadline_s
        self.retry_base_s = retry_base_s
        self.retry_max_s = retry_max_s
        self.retry_jitter = retry_jitter
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.retry_budget = retry_budget
        self.retry_credit = retry_credit
        self._rng = random.Random(retry_seed)
        # Breaker + budget state; one lock since both are touched per call.
        self._lock = create_lock("client.breaker")
        self._breaker_state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._tokens = retry_budget
        self._stat_requests = 0
        self._stat_retries = 0
        self._stat_transport_failures = 0
        self._stat_breaker_opens = 0
        self._stat_breaker_rejections = 0
        self._stat_budget_exhausted = 0

    # ------------------------------------------------------------------
    # Circuit breaker + retry budget
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Snapshot of resilience counters (breaker state, retry budget)."""
        with self._lock:
            return {
                "requests": self._stat_requests,
                "retries": self._stat_retries,
                "transport_failures": self._stat_transport_failures,
                "breaker_state": self._breaker_state,
                "breaker_opens": self._stat_breaker_opens,
                "breaker_rejections": self._stat_breaker_rejections,
                "retry_budget_remaining": self._tokens,
                "retry_budget_exhausted": self._stat_budget_exhausted,
            }

    def _breaker_admit(self) -> None:
        """Fail fast with :class:`CircuitOpen` unless a request may go out."""
        with self._lock:
            self._stat_requests += 1
            if self._breaker_state == "closed":
                return
            if self._breaker_state == "open":
                if time.monotonic() - self._opened_at < self.breaker_cooldown_s:
                    self._stat_breaker_rejections += 1
                    raise CircuitOpen(
                        f"circuit open after {self._consecutive_failures} "
                        "consecutive transport failures"
                    )
                self._breaker_state = "half_open"
                self._probe_in_flight = True
                return
            # half_open: exactly one probe at a time decides the outcome.
            if self._probe_in_flight:
                self._stat_breaker_rejections += 1
                raise CircuitOpen("circuit half-open; probe in flight")
            self._probe_in_flight = True

    def _breaker_success(self) -> None:
        """Any HTTP response closes the breaker — transport is healthy."""
        with self._lock:
            self._breaker_state = "closed"
            self._consecutive_failures = 0
            self._probe_in_flight = False

    def _credit_success(self) -> None:
        """A 2xx refunds retry budget (only real successes earn credit)."""
        with self._lock:
            self._tokens = min(self.retry_budget, self._tokens + self.retry_credit)

    def _breaker_failure(self) -> None:
        with self._lock:
            self._stat_transport_failures += 1
            self._consecutive_failures += 1
            self._probe_in_flight = False
            opened = self._breaker_state == "half_open" or (
                self._breaker_state == "closed"
                and self._consecutive_failures >= self.breaker_threshold
            )
            if opened:
                if self._breaker_state != "open":
                    self._stat_breaker_opens += 1
                self._breaker_state = "open"
                self._opened_at = time.monotonic()

    def _spend_retry_token(self) -> bool:
        """Take one token from the retry budget; False when exhausted."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self._stat_retries += 1
                return True
            self._stat_budget_exhausted += 1
            return False

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def predict(
        self,
        text: str,
        *,
        model: str | None = None,
        top_k: int | None = None,
        request_id: str | None = None,
        deadline_s: float | None = None,
        retry_on_overload: bool = True,
        intended_at: float | None = None,
    ) -> PredictResult:
        """``POST /v1/predict`` -> typed :class:`PredictResult`.

        ``model`` routes to a named fleet entry explicitly (404
        ``model_not_found`` if the fleet does not serve it); without it
        the gateway's A/B split decides.  ``request_id`` pins the split
        assignment — the same id always routes to the same entry.

        ``retry_on_overload=False`` surfaces the first 429 as
        :class:`GatewayOverloaded` immediately — for callers that
        implement their own backoff (or count sheds, like the e2e smoke
        driver).

        ``intended_at`` (a ``time.monotonic`` timestamp) anchors the
        deadline budget at the request's *intended* send time instead of
        now.  Open-loop load generators pass the scheduled arrival time
        so a request that left the pacer late does not get extra retry
        budget — time already lost in the client queue counts against
        the deadline, exactly as the latency histogram counts it.
        """
        body: dict = {"text": text}
        if top_k is not None:
            body["top_k"] = top_k
        if model is not None:
            body["model"] = model
        if request_id is not None:
            body["request_id"] = request_id
        return PredictResult.from_raw(
            self._call(
                "POST",
                "/v1/predict",
                body,
                deadline_s,
                retry_429=retry_on_overload,
                resilient=True,
                intended_at=intended_at,
            )
        )

    def predict_batch(
        self,
        texts: Sequence[str],
        *,
        model: str | None = None,
        top_k: int | None = None,
        request_id: str | None = None,
        deadline_s: float | None = None,
        retry_on_overload: bool = True,
        intended_at: float | None = None,
    ) -> PredictBatchResult:
        """``POST /v1/predict_batch`` -> typed :class:`PredictBatchResult`."""
        body: dict = {"texts": list(texts)}
        if top_k is not None:
            body["top_k"] = top_k
        if model is not None:
            body["model"] = model
        if request_id is not None:
            body["request_id"] = request_id
        return PredictBatchResult.from_raw(
            self._call(
                "POST",
                "/v1/predict_batch",
                body,
                deadline_s,
                retry_429=retry_on_overload,
                resilient=True,
                intended_at=intended_at,
            )
        )

    def healthz(self, *, deadline_s: float | None = None) -> dict:
        """``GET /healthz`` (raises :class:`GatewayUnavailable` on 503)."""
        return self._call("GET", "/healthz", None, deadline_s, retry_429=False)

    def models(self, *, deadline_s: float | None = None) -> dict:
        """``GET /v1/models`` -> the fleet status document."""
        return self._call("GET", "/v1/models", None, deadline_s)

    def metrics_text(self, *, deadline_s: float | None = None) -> str:
        """``GET /metrics`` -> raw Prometheus exposition text."""
        return self._request_once(
            "GET", "/metrics", None, self._resolve(deadline_s)
        )[1].decode("utf-8")

    def metrics(self, *, deadline_s: float | None = None) -> dict:
        """``GET /metrics`` parsed to ``{(name, labelset): value}``."""
        return parse_metrics(self.metrics_text(deadline_s=deadline_s))

    def wait_ready(self, *, deadline_s: float | None = None) -> dict:
        """Poll ``/healthz`` until ready or the deadline expires."""
        deadline = time.monotonic() + self._resolve(deadline_s)
        while True:
            try:
                return self.healthz(deadline_s=1.0)
            except (ServingError, OSError) as error:
                if time.monotonic() >= deadline:
                    raise GatewayUnavailable(
                        503, "not_ready", f"gateway not ready in time: {error}"
                    ) from error
            time.sleep(0.05)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _resolve(self, deadline_s: float | None) -> float:
        return self.deadline_s if deadline_s is None else deadline_s

    def _call(
        self,
        method: str,
        path: str,
        body: dict | None,
        deadline_s: float | None,
        *,
        retry_429: bool = True,
        resilient: bool = False,
        intended_at: float | None = None,
    ) -> dict:
        budget = self._resolve(deadline_s)
        anchor = time.monotonic() if intended_at is None else intended_at
        deadline = anchor + budget
        attempt = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise GatewayOverloaded(
                    429, "deadline_exceeded", f"no capacity within {budget}s"
                )
            extra = None
            if resilient:
                self._breaker_admit()
                extra = {"X-Deadline-Ms": str(max(1, int(remaining * 1000.0)))}
            try:
                status, raw, headers = self._request_full(
                    method, path, body, remaining, extra_headers=extra
                )
                payload = (
                    json.loads(raw.decode("utf-8")) if 200 <= status < 300 else None
                )
            except (OSError, http.client.HTTPException, ValueError) as error:
                # Connection reset, truncated read, or an unparseable
                # 2xx body: the response cannot be trusted.  Inference
                # is side-effect-free, so retry — budget permitting.
                if not resilient:
                    raise
                self._breaker_failure()
                if not self._spend_retry_token():
                    raise
                backoff = self._backoff_s(attempt, None)
                attempt += 1
                if deadline - time.monotonic() <= backoff:
                    raise
                time.sleep(backoff)
                continue
            if resilient:
                self._breaker_success()
            if 200 <= status < 300:
                if resilient:
                    self._credit_success()
                return payload
            error = _error_from_response(status, raw)
            retriable = (status == 429 and retry_429) or (
                # A worker died mid-batch; the supervisor respawns it,
                # so a retried request has a real chance.  A draining
                # 503 ("unavailable") stays terminal.
                resilient
                and status == 503
                and error.code == "backend_failure"
            )
            if not retriable:
                raise error
            if resilient and not self._spend_retry_token():
                raise error
            backoff = self._backoff_s(attempt, headers.get("Retry-After"))
            attempt += 1
            if deadline - time.monotonic() <= backoff:
                raise error
            time.sleep(backoff)

    def _backoff_s(self, attempt: int, retry_after: str | None) -> float:
        backoff = min(self.retry_max_s, self.retry_base_s * (2**attempt))
        if retry_after is not None:
            # Honour the server's hint, but never beyond our cap — the
            # deadline budget, not the server, bounds waiting.  A proxy
            # can send anything here: non-numeric, negative, "nan",
            # "inf", or absurdly large values must clamp into
            # [0, retry_max_s], never raise and never sleep unbounded.
            try:
                hinted = float(retry_after)
            except (TypeError, ValueError):
                hinted = None
            if hinted is not None and math.isfinite(hinted):
                backoff = min(max(0.0, hinted), self.retry_max_s)
        if self.retry_jitter > 0.0:
            # Jitter applies to the Retry-After path too: the hint is
            # the same constant for every shed client, which is exactly
            # the synchronised-herd case jitter exists to break.
            backoff *= self._rng.uniform(1.0 - self.retry_jitter, 1.0)
        return backoff

    def _request_once(
        self, method: str, path: str, body: dict | None, timeout_s: float
    ) -> tuple[int, bytes]:
        status, raw, _ = self._request_full(method, path, body, timeout_s)
        if not 200 <= status < 300:
            raise _error_from_response(status, raw)
        return status, raw

    def _request_full(
        self,
        method: str,
        path: str,
        body: dict | None,
        timeout_s: float,
        *,
        extra_headers: dict | None = None,
    ) -> tuple[int, bytes, dict]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if extra_headers:
            headers.update(extra_headers)
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=max(0.001, timeout_s)
            ) as response:
                return response.status, response.read(), dict(response.headers)
        except urllib.error.HTTPError as error:
            with error:
                return error.code, error.read(), dict(error.headers)
