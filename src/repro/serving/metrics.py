"""Prometheus text-format metrics for the serving gateway.

:func:`render_metrics` turns one consistent
:class:`~repro.engine.server.StatsSnapshot`, the aggregated
:class:`~repro.engine.engine.EngineStats`, and the gateway's HTTP
counters into Prometheus exposition text (version 0.0.4 — the format
every Prometheus scraper and ``promtool`` accepts).  :func:`parse_metrics`
is the inverse used by the tests, the e2e smoke job, and the benchmark
harness to read counters back without a Prometheus dependency.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.lockcheck import create_lock
from repro.engine.engine import EngineStats
from repro.engine.server import StatsSnapshot

__all__ = ["HttpCounters", "parse_metrics", "render_metrics"]


class HttpCounters:
    """Thread-safe per-endpoint/status HTTP request counters."""

    def __init__(self) -> None:
        self._lock = create_lock("gateway.http_counters")
        self._counts: dict[tuple[str, int], int] = {}

    def record(self, endpoint: str, status: int) -> None:
        with self._lock:
            key = (endpoint, status)
            self._counts[key] = self._counts.get(key, 0) + 1

    def snapshot(self) -> dict[tuple[str, int], int]:
        with self._lock:
            return dict(self._counts)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _sample(name: str, value: float, labels: dict[str, str] | None = None) -> str:
    if labels:
        rendered = ",".join(
            f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels.items())
        )
        return f"{name}{{{rendered}}} {value}"
    return f"{name} {value}"


def render_metrics(
    snapshot: StatsSnapshot,
    engine_stats: EngineStats,
    http_counts: dict[tuple[str, int], int],
    *,
    ready: bool,
    model_id: str,
    processes: list[dict] | None = None,
    chaos: dict | None = None,
    models: list[dict] | None = None,
    shadow: dict | None = None,
) -> str:
    """Prometheus exposition text for one scrape.

    All inputs are immutable copies taken before rendering, so every
    sample in one scrape belongs to the same instant.  ``processes`` is
    the multi-process server's :meth:`~repro.engine.procserver.
    ProcessInferenceServer.worker_processes` report (``None`` for the
    threaded server) — it adds per-worker-process liveness and restart
    families.  ``chaos`` (``{"armed": bool, "injected": {kind: n}}``)
    adds the fault-injection families while an experiment is armed, so
    recovery can be watched on ``/metrics`` without probing
    ``/healthz`` (which would itself revive workers).

    ``models`` adds the per-fleet-entry families: one dict per entry
    with ``name``, its own ``snapshot`` (:class:`StatsSnapshot`),
    ``traffic_share``, ``weights_version``, and ``shadow``.  The A/B
    split is audited from ``holistix_requests_total{model=...}``;
    ``shadow`` (``{"submitted": n, "failed": n}``) counts mirrored
    shadow traffic fleet-wide.  The unlabelled ``holistix_server_*``
    families remain the default entry's view, so single-model
    dashboards keep working unchanged.
    """
    lines: list[str] = []

    def family(name: str, kind: str, help_text: str, samples: Iterable[str]):
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    family(
        "holistix_ready",
        "gauge",
        "1 when the gateway is accepting traffic, 0 while starting or draining.",
        [_sample("holistix_ready", 1 if ready else 0, {"model_id": model_id})],
    )
    family(
        "holistix_http_requests_total",
        "counter",
        "HTTP requests answered, by endpoint and status code.",
        [
            _sample(
                "holistix_http_requests_total",
                count,
                {"endpoint": endpoint, "status": str(status)},
            )
            for (endpoint, status), count in sorted(http_counts.items())
        ],
    )
    family(
        "holistix_server_requests_total",
        "counter",
        "Texts served by the inference server this epoch.",
        [_sample("holistix_server_requests_total", snapshot.requests)],
    )
    family(
        "holistix_server_batches_total",
        "counter",
        "Coalesced inference batches executed this epoch.",
        [_sample("holistix_server_batches_total", snapshot.batches)],
    )
    family(
        "holistix_server_shed_total",
        "counter",
        "Requests rejected by shed-mode admission this epoch.",
        [_sample("holistix_server_shed_total", snapshot.shed)],
    )
    family(
        "holistix_server_shed_rate",
        "gauge",
        "Fraction of offered requests shed this epoch.",
        [_sample("holistix_server_shed_rate", snapshot.shed_rate)],
    )
    family(
        "holistix_server_deadline_shed_total",
        "counter",
        "Requests shed because their propagated deadline budget could "
        "not cover the observed p50 service time (distinct from "
        "overload sheds).",
        [_sample("holistix_server_deadline_shed_total", snapshot.deadline_shed)],
    )
    family(
        "holistix_worker_thread_deaths_total",
        "counter",
        "Serving threads that died on an unexpected exception and were "
        "replaced this epoch.",
        [
            _sample(
                "holistix_worker_thread_deaths_total",
                snapshot.worker_thread_deaths,
            )
        ],
    )
    latency_samples = [
        _sample(
            "holistix_server_latency_ms",
            snapshot.latency_percentile(q),
            {"quantile": str(q / 100.0)},
        )
        for q in (50, 95, 99)
    ]
    latency_samples.append(
        _sample("holistix_server_latency_ms_sum", snapshot.total_latency_ms)
    )
    latency_samples.append(
        _sample("holistix_server_latency_ms_count", snapshot.requests)
    )
    family(
        "holistix_server_latency_ms",
        "summary",
        "Queue-to-response latency quantiles over the recent-request window.",
        latency_samples,
    )
    family(
        "holistix_worker_requests_total",
        "counter",
        "Texts served per worker replica this epoch.",
        [
            _sample("holistix_worker_requests_total", count, {"worker": str(i)})
            for i, count in enumerate(snapshot.per_worker_requests)
        ],
    )
    family(
        "holistix_engine_cache_hits_total",
        "counter",
        "Prediction-cache hits across worker engine replicas.",
        [_sample("holistix_engine_cache_hits_total", engine_stats.cache_hits)],
    )
    family(
        "holistix_engine_cache_misses_total",
        "counter",
        "Prediction-cache misses across worker engine replicas.",
        [_sample("holistix_engine_cache_misses_total", engine_stats.cache_misses)],
    )
    family(
        "holistix_engine_cache_hit_rate",
        "gauge",
        "Prediction-cache hit rate across worker engine replicas.",
        [_sample("holistix_engine_cache_hit_rate", engine_stats.hit_rate)],
    )
    if processes is not None:
        family(
            "holistix_worker_process_alive",
            "gauge",
            "1 while the worker's serving process is alive, by worker and pid.",
            [
                _sample(
                    "holistix_worker_process_alive",
                    1 if proc["alive"] else 0,
                    {
                        "worker": str(proc["worker"]),
                        "pid": str(proc["pid"] if proc["pid"] is not None else ""),
                    },
                )
                for proc in processes
            ],
        )
        family(
            "holistix_worker_process_restarts_total",
            "counter",
            "Times each worker slot's process was respawned after dying.",
            [
                _sample(
                    "holistix_worker_process_restarts_total",
                    proc["restarts"],
                    {"worker": str(proc["worker"])},
                )
                for proc in processes
            ],
        )
    if models is not None:
        family(
            "holistix_requests_total",
            "counter",
            "Texts served per fleet entry this epoch (the A/B split audit).",
            [
                _sample(
                    "holistix_requests_total",
                    m["snapshot"].requests,
                    {"model": m["name"]},
                )
                for m in models
            ],
        )
        family(
            "holistix_model_shed_total",
            "counter",
            "Requests rejected by shed-mode admission, per fleet entry.",
            [
                _sample(
                    "holistix_model_shed_total",
                    m["snapshot"].shed,
                    {"model": m["name"]},
                )
                for m in models
            ],
        )
        family(
            "holistix_model_deadline_shed_total",
            "counter",
            "Requests shed for an uncoverable deadline, per fleet entry.",
            [
                _sample(
                    "holistix_model_deadline_shed_total",
                    m["snapshot"].deadline_shed,
                    {"model": m["name"]},
                )
                for m in models
            ],
        )
        family(
            "holistix_model_shed_rate",
            "gauge",
            "Fraction of offered requests shed this epoch, per fleet entry.",
            [
                _sample(
                    "holistix_model_shed_rate",
                    m["snapshot"].shed_rate,
                    {"model": m["name"]},
                )
                for m in models
            ],
        )
        model_latency: list[str] = []
        for m in models:
            model_latency.extend(
                _sample(
                    "holistix_model_latency_ms",
                    m["snapshot"].latency_percentile(q),
                    {"model": m["name"], "quantile": str(q / 100.0)},
                )
                for q in (50, 95, 99)
            )
            model_latency.append(
                _sample(
                    "holistix_model_latency_ms_sum",
                    m["snapshot"].total_latency_ms,
                    {"model": m["name"]},
                )
            )
            model_latency.append(
                _sample(
                    "holistix_model_latency_ms_count",
                    m["snapshot"].requests,
                    {"model": m["name"]},
                )
            )
        family(
            "holistix_model_latency_ms",
            "summary",
            "Queue-to-response latency quantiles per fleet entry.",
            model_latency,
        )
        family(
            "holistix_model_traffic_share",
            "gauge",
            "Configured fraction of A/B-split traffic, per fleet entry.",
            [
                _sample(
                    "holistix_model_traffic_share",
                    m["traffic_share"],
                    {"model": m["name"]},
                )
                for m in models
            ],
        )
        family(
            "holistix_model_weights_version",
            "gauge",
            "Version token of the entry's served weights (0 = never reloaded).",
            [
                _sample(
                    "holistix_model_weights_version",
                    m["weights_version"],
                    {"model": m["name"]},
                )
                for m in models
            ],
        )
        family(
            "holistix_model_shadow",
            "gauge",
            "1 for shadow entries (mirrored traffic, never answering).",
            [
                _sample(
                    "holistix_model_shadow",
                    1 if m["shadow"] else 0,
                    {"model": m["name"]},
                )
                for m in models
            ],
        )
    if shadow is not None:
        family(
            "holistix_shadow_submitted_total",
            "counter",
            "Texts mirrored to shadow entries (fire-and-forget).",
            [_sample("holistix_shadow_submitted_total", shadow["submitted"])],
        )
        family(
            "holistix_shadow_failed_total",
            "counter",
            "Shadow mirror submissions that shed, errored, or were refused.",
            [_sample("holistix_shadow_failed_total", shadow["failed"])],
        )
    if chaos is not None:
        family(
            "holistix_chaos_armed",
            "gauge",
            "1 while a fault-injection plan is armed against this gateway.",
            [_sample("holistix_chaos_armed", 1 if chaos.get("armed") else 0)],
        )
        family(
            "holistix_chaos_injected_total",
            "counter",
            "Faults actually applied by the armed injector, by kind.",
            [
                _sample("holistix_chaos_injected_total", count, {"kind": kind})
                for kind, count in sorted(chaos.get("injected", {}).items())
            ],
        )
    return "\n".join(lines) + "\n"


def _parse_label_block(block: str) -> frozenset[tuple[str, str]]:
    """Parse ``key="value",...`` honouring the exposition-format escapes.

    Values may contain commas, escaped quotes (``\\"``), escaped
    backslashes, and ``\\n`` — everything :func:`_escape_label_value`
    can emit — so a naive comma split would corrupt them.
    """
    pairs: list[tuple[str, str]] = []
    i, n = 0, len(block)
    while i < n:
        eq = block.find("=", i)
        if eq == -1:
            raise ValueError(f"malformed label block: {block!r}")
        key = block[i:eq]
        if not key.replace("_", "").isalnum():
            raise ValueError(f"malformed label name: {key!r}")
        i = eq + 1
        if i >= n or block[i] != '"':
            raise ValueError(f"label {key!r} value is not quoted")
        i += 1
        value_chars: list[str] = []
        while i < n and block[i] != '"':
            ch = block[i]
            if ch == "\\":
                if i + 1 >= n:
                    raise ValueError(f"dangling escape in label {key!r}")
                nxt = block[i + 1]
                unescaped = {"\\": "\\", '"': '"', "n": "\n"}.get(nxt, "\\" + nxt)
                value_chars.append(unescaped)
                i += 2
            else:
                value_chars.append(ch)
                i += 1
        if i >= n:
            raise ValueError(f"unterminated value for label {key!r}")
        i += 1  # closing quote
        pairs.append((key, "".join(value_chars)))
        if i < n:
            if block[i] != ",":
                raise ValueError(f"malformed label separator at {block[i:]!r}")
            i += 1
    return frozenset(pairs)


def parse_metrics(text: str) -> dict[tuple[str, frozenset[tuple[str, str]]], float]:
    """Parse exposition text -> ``{(name, labelset): value}``.

    A deliberately small parser for the subset :func:`render_metrics`
    emits (and that any conformant exporter produces for simple
    counters/gauges): one sample per line, with full support for the
    label-value escapes the renderer can produce.  Raises
    ``ValueError`` on lines that fit neither a comment, a blank, nor a
    sample — which is what makes it usable as a format check in the
    tests.
    """
    samples: dict[tuple[str, frozenset[tuple[str, str]]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"malformed sample line: {line!r}")
        value = float(value_part)  # raises ValueError on malformed values
        labels: frozenset[tuple[str, str]] = frozenset()
        if "{" in name_part:
            if not name_part.endswith("}"):
                raise ValueError(f"malformed label block: {line!r}")
            name, _, label_block = name_part.partition("{")
            if label_block[:-1]:
                labels = _parse_label_block(label_block[:-1])
        else:
            name = name_part
        if not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"malformed metric name: {name!r}")
        samples[(name, labels)] = value
    return samples
