"""Threaded HTTP gateway over a fleet of replicated inference servers.

``ServingGateway`` binds a stdlib :class:`http.server.ThreadingHTTPServer`
(no third-party dependencies) in front of a
:class:`~repro.serving.fleet.ModelFleet` — N named
:class:`~repro.engine.server.BatchingServerBase`-backed worker pools —
and speaks the JSON wire protocol defined in
:mod:`repro.serving.protocol`:

* ``POST /v1/predict`` — one text in, label + probabilities out, with a
  ``served_by`` envelope naming the fleet entry (and weights version)
  that answered.  An optional ``model`` field routes explicitly; an
  optional ``request_id`` pins the A/B split assignment.
* ``POST /v1/predict_batch`` — up to ``MAX_BATCH_TEXTS`` texts at once,
  all routed to the same entry.
* ``GET /healthz`` — readiness (workers started, model loaded, not
  draining); load balancers should route on this.
* ``GET /metrics`` — Prometheus text format: per-model counters and
  latency quantiles from each entry's ``ServerStats.snapshot()`` plus
  the aggregate families fed by the default entry.
* ``GET /v1/models`` — the fleet status document: per-model state,
  pool size, traffic share, weights version, shed/latency counters,
  plus the baseline registry listing.

A bare :class:`BatchingServerBase` is still accepted and wrapped as a
one-entry fleet (:meth:`ModelFleet.single`) — the compatibility mapping
for every pre-fleet caller.

Engine-level backpressure maps onto HTTP retry semantics: a shed-mode
admission rejection (:class:`ServerOverloaded`) answers ``429`` with a
``Retry-After`` hint, and a stopped or draining server answers ``503``.
Shutdown is graceful: :meth:`ServingGateway.stop` flips readiness,
closes engine admission via :meth:`InferenceServer.drain` (the SIGTERM
hook), finishes in-flight HTTP responses, then drains the admitted
backlog with :meth:`InferenceServer.stop`.
"""

from __future__ import annotations

import io
import json
import logging
import math
import socket
import struct
import threading
import time
import uuid
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.analysis.lockcheck import create_lock
from repro.engine.procserver import RemoteWorkerError
from repro.engine.registry import registry_listing
from repro.engine.server import BatchingServerBase, ServerClosed, ServerOverloaded
from repro.serving.fleet import ModelEntry, ModelFleet, UnknownModelError
from repro.serving.metrics import HttpCounters, render_metrics
from repro.serving.protocol import (
    MAX_BODY_BYTES,
    ProtocolError,
    _parse_json_object,
    error_body,
    format_prediction,
    parse_predict_batch_request,
    parse_predict_request,
    served_by,
)

__all__ = ["ServingGateway"]

log = logging.getLogger("repro.serving")

# Advisory backoff (seconds) sent with every 429; clients that honour
# Retry-After spread their retries instead of hammering a full queue.
RETRY_AFTER_S = 1

# Deadline-aware admission needs a latency signal before it sheds: below
# this many served requests the observed p50 is noise, so nothing sheds.
MIN_REQUESTS_FOR_DEADLINE_SHED = 50

# How long an observed-p50 reading stays cached; computing a percentile
# walks the whole stats window, which must not happen per request.
P50_CACHE_TTL_S = 0.5


class _GatewayHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that joins handler threads on close.

    ``daemon_threads = False`` + ``block_on_close = True`` means
    ``server_close()`` waits for in-flight responses — the HTTP half of
    graceful drain.  Idle keep-alive connections cannot block shutdown
    because the handler carries a socket timeout.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, address, handler, gateway: "ServingGateway") -> None:
        self.gateway = gateway
        super().__init__(address, handler)


class _GatewayRequestHandler(BaseHTTPRequestHandler):
    # HTTP/1.1 keep-alive: closed-loop clients reuse one connection per
    # request stream instead of paying a TCP handshake per predict.
    protocol_version = "HTTP/1.1"
    # Socket timeout: an idle or stalled connection drops out of the
    # keep-alive loop so server_close() can finish the drain.
    timeout = 10

    server: _GatewayHTTPServer

    @property
    def gateway(self) -> "ServingGateway":
        return self.server.gateway

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        route = self.path.split("?", 1)[0]
        if route == "/healthz":
            self._handle_healthz()
        elif route == "/metrics":
            self._handle_metrics()
        elif route == "/v1/models":
            self._handle_models()
        else:
            self._send_error(404, "not_found", f"unknown path {route!r}", route="*")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        route = self.path.split("?", 1)[0]
        if route == "/v1/predict":
            self._handle_predict(batch=False)
        elif route == "/v1/predict_batch":
            self._handle_predict(batch=True)
        elif route == "/v1/admin/reload":
            self._handle_admin(self._admin_reload, route)
        elif route == "/v1/admin/chaos":
            self._handle_admin(self._admin_chaos, route)
        else:
            self._send_error(404, "not_found", f"unknown path {route!r}", route="*")

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _handle_healthz(self) -> None:
        gateway = self.gateway
        if gateway.ready:
            body = {
                "status": "ok",
                "model_id": gateway.model_id,
                "workers": gateway.server.workers,
                "models": [
                    {"name": e.name, "state": e.status(), "shadow": e.shadow}
                    for e in gateway.fleet.entries
                ],
            }
            degraded = False
            for entry in gateway.fleet.entries:
                processes = gateway.worker_processes(revive=True, entry=entry)
                if processes is None:
                    continue
                # Multi-process backend: report per-worker-process
                # liveness (dead workers were just respawned above; a
                # worker that STAYS dead keeps alive=false so load
                # balancers and operators can see it).
                if entry is gateway.fleet.default_entry:
                    body["processes"] = processes
                if not all(proc["alive"] for proc in processes):
                    degraded = True
            if degraded:
                body["status"] = "degraded"
            self._send_json(200, body, route="/healthz")
        else:
            status = "draining" if gateway.draining else "starting"
            self._send_json(503, {"status": status}, route="/healthz")

    def _handle_metrics(self) -> None:
        gateway = self.gateway
        fleet = gateway.fleet
        body = render_metrics(
            gateway.server.stats.snapshot(),
            gateway.server.engine_stats(),
            gateway.http_counters.snapshot(),
            ready=gateway.ready,
            model_id=gateway.model_id,
            processes=gateway.worker_processes(),
            chaos=gateway.chaos_summary(),
            models=[
                {
                    "name": entry.name,
                    "snapshot": entry.server.stats.snapshot(),
                    "traffic_share": fleet.traffic_share(entry),
                    "weights_version": entry.weights_version,
                    "shadow": entry.shadow,
                }
                for entry in fleet.entries
            ],
            shadow=fleet.shadow_counts(),
        ).encode("utf-8")
        self._send_bytes(
            200,
            body,
            content_type="text/plain; version=0.0.4; charset=utf-8",
            route="/metrics",
        )

    def _handle_models(self) -> None:
        gateway = self.gateway
        fleet = gateway.fleet
        models = []
        for entry in fleet.entries:
            snapshot = entry.server.stats.snapshot()
            processes = gateway.worker_processes(entry=entry)
            models.append(
                {
                    "name": entry.name,
                    "model_id": entry.model_id,
                    "baseline": entry.baseline,
                    "state": entry.status(),
                    "shadow": entry.shadow,
                    "weight": entry.weight,
                    "traffic_share": fleet.traffic_share(entry),
                    "weights_version": entry.weights_version,
                    "pool": {
                        "kind": "threads" if processes is None else "processes",
                        "workers": entry.server.workers,
                    },
                    "requests": snapshot.requests,
                    "shed": snapshot.shed,
                    "deadline_shed": snapshot.deadline_shed,
                    "shed_rate": snapshot.shed_rate,
                    "latency_ms": {
                        "p50": snapshot.latency_percentile(50),
                        "p95": snapshot.latency_percentile(95),
                        "p99": snapshot.latency_percentile(99),
                    },
                }
            )
        self._send_json(
            200,
            {
                "default_model": fleet.default,
                "model_id": gateway.model_id,
                "baseline": gateway.baseline,
                "models": models,
                "shadow_traffic": fleet.shadow_counts(),
                "registry": registry_listing(
                    loaded=[e.baseline for e in fleet.entries if e.baseline]
                ),
            },
            route="/v1/models",
        )

    def _handle_predict(self, *, batch: bool) -> None:
        route = "/v1/predict_batch" if batch else "/v1/predict"
        gateway = self.gateway
        fault = gateway.chaos_http_fault()
        if fault is not None and self._apply_chaos_fault(fault, route):
            return
        try:
            raw = self._read_body()
            request = (
                parse_predict_batch_request(raw)
                if batch
                else parse_predict_request(raw)
            )
        except ProtocolError as error:
            self._send_error(
                error.status, error.code, error.message, route=route,
                model=error.model,
            )
            return
        # Routing: explicit model > seeded A/B split on the request id >
        # default entry.  Without a client-supplied request id the split
        # is sampled fresh per request (uuid), which converges on the
        # configured traffic shares.
        request_id = request.request_id or uuid.uuid4().hex
        try:
            entry = gateway.fleet.route(request.model, request_id)
        except UnknownModelError as error:
            self._send_error(
                404, "model_not_found", str(error), route=route,
                model=request.model,
            )
            return
        texts = request.texts if batch else [request.text]
        # Deadline propagation: the client's remaining budget caps the
        # engine-side timeout, and a request whose budget cannot cover
        # the routed entry's observed p50 service time is shed up front —
        # serving it would burn a worker slot on an answer nobody is
        # waiting for.
        timeout_s = gateway.request_timeout_s
        deadline_ms = self._parse_deadline_ms()
        if deadline_ms is not None:
            p50_ms = gateway.observed_p50_ms(entry)
            if p50_ms > 0.0 and deadline_ms < p50_ms:
                entry.server.stats.record_deadline_shed(len(texts))
                self._send_error(
                    504,
                    "deadline_shed",
                    f"remaining budget {deadline_ms:.0f}ms is below the "
                    f"observed p50 service time {p50_ms:.0f}ms",
                    route=route,
                    model=entry.name,
                )
                return
            timeout_s = min(timeout_s, deadline_ms / 1000.0)
        envelope = served_by(entry.name, entry.weights_version)
        try:
            if batch:
                results = entry.server.predict(texts, timeout=timeout_s)
                body = {
                    "model_id": entry.model_id,
                    "served_by": envelope,
                    "predictions": [
                        format_prediction(r, top_k=request.top_k) for r in results
                    ],
                }
            else:
                result = entry.server.submit(texts[0]).result(timeout=timeout_s)
                body = {
                    "model_id": entry.model_id,
                    "served_by": envelope,
                    **format_prediction(result, top_k=request.top_k),
                }
        except ServerOverloaded:
            self._send_error(
                429,
                "overloaded",
                "admission queue full; retry after backoff",
                route=route,
                model=entry.name,
                headers={"Retry-After": str(RETRY_AFTER_S)},
            )
            return
        except ServerClosed:
            self._send_error(
                503,
                "unavailable",
                "server is draining or stopped",
                route=route,
                model=entry.name,
            )
            return
        except FutureTimeoutError:
            self._send_error(
                504,
                "deadline_exceeded",
                f"request did not complete within {timeout_s}s",
                route=route,
                model=entry.name,
            )
            return
        except RemoteWorkerError:
            # A worker process died mid-batch (and its in-place retry
            # also failed).  The supervisor respawns the slot, so this
            # is retriable — the client's resilient path keys on the
            # "backend_failure" code to distinguish it from a draining
            # 503, which is terminal.
            log.warning("worker failure serving %s", route, exc_info=True)
            self._send_error(
                503,
                "backend_failure",
                "a worker process failed serving this request; retry",
                route=route,
                model=entry.name,
            )
            return
        except Exception:
            log.exception("unhandled error serving %s", route)
            self._send_error(
                500, "internal", "internal server error", route=route,
                model=entry.name,
            )
            return
        self._send_json(200, body, route=route)
        # Shadow mirroring happens after the answer is on the wire: the
        # mirrored submissions are fire-and-forget and must never add a
        # microsecond to the primary path.
        if not entry.shadow:
            gateway.fleet.shadow_submit(texts)

    def _parse_deadline_ms(self) -> float | None:
        """The ``X-Deadline-Ms`` header as a positive float, else None.

        Malformed or absurd values (non-numeric, nan, inf, <= 0) are
        ignored rather than rejected — deadline propagation is advisory
        and a bad proxy header must not break an otherwise fine request.
        """
        header = self.headers.get("X-Deadline-Ms")
        if header is None:
            return None
        try:
            value = float(header)
        except (TypeError, ValueError):
            return None
        if not math.isfinite(value) or value <= 0:
            return None
        return value

    # ------------------------------------------------------------------
    # Chaos faults (armed via /v1/admin/chaos or ServingGateway.arm_chaos)
    # ------------------------------------------------------------------
    def _apply_chaos_fault(self, fault: str, route: str) -> bool:
        """Corrupt this response per the armed fault plan. True = handled."""
        if fault == "socket_reset":
            self._abort_connection()
            return True
        if fault == "truncate_response":
            payload = json.dumps(
                {"model_id": self.gateway.model_id, "label": "truncated"}
            ).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.send_header("Connection", "close")
            self.end_headers()
            # Half the promised bytes, then a hard close: the client
            # sees IncompleteRead, not a clean EOF.
            self.wfile.write(payload[: len(payload) // 2])
            try:
                self.wfile.flush()
            except OSError:
                pass
            self._abort_connection()
            return True
        if fault == "malformed_response":
            self._send_bytes(
                200,
                b"{this is not json",
                content_type="application/json",
                route=route,
            )
            self.close_connection = True
            return True
        log.warning("unknown chaos http fault %r ignored", fault)
        return False

    def _abort_connection(self) -> None:
        """RST the client connection (SO_LINGER 0) without raising."""
        self.close_connection = True
        try:
            self.connection.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:
            pass
        try:
            self.connection.close()
        except OSError:
            pass
        # The framework flushes wfile and may read rfile after the
        # handler returns; dead buffers keep that from raising on the
        # closed socket.
        self.wfile = io.BytesIO()
        self.rfile = io.BytesIO()

    # ------------------------------------------------------------------
    # Admin endpoints (shared-secret gated)
    # ------------------------------------------------------------------
    def _handle_admin(self, handler, route: str) -> None:
        gateway = self.gateway
        if gateway.admin_token is None:
            # Admin surface disabled: indistinguishable from no route.
            self._send_error(404, "not_found", f"unknown path {route!r}", route="*")
            return
        token = self.headers.get("X-Admin-Token")
        if token != gateway.admin_token:
            self._send_error(
                403, "forbidden", "missing or invalid admin token", route=route
            )
            return
        try:
            payload = _parse_json_object(self._read_body())
        except ProtocolError as error:
            self._send_error(error.status, error.code, error.message, route=route)
            return
        try:
            handler(payload, route)
        except ProtocolError as error:
            self._send_error(
                error.status, error.code, error.message, route=route,
                model=error.model,
            )
        except Exception:
            log.exception("admin handler failed for %s", route)
            self._send_error(500, "internal", "internal server error", route=route)

    def _admin_entry(self, payload: dict, *, verb: str) -> ModelEntry:
        """Resolve the ``model`` selector an admin request targets.

        A one-entry fleet keeps the old selector-less bodies working;
        with several entries the selector is mandatory — an ambiguous
        reload must never guess which weights to swap.
        """
        gateway = self.gateway
        model = payload.get("model")
        if model is None:
            entries = gateway.fleet.entries
            if len(entries) > 1:
                raise ProtocolError(
                    400,
                    "bad_request",
                    f'fleet serves {len(entries)} models; field "model" '
                    f"is required to {verb}",
                )
            return gateway.fleet.default_entry
        if not isinstance(model, str) or not model:
            raise ProtocolError(400, "bad_request", "model must be a non-empty string")
        try:
            return gateway.fleet.entry(model)
        except UnknownModelError as error:
            raise ProtocolError(
                404, "model_not_found", str(error), model=model
            ) from None

    def _admin_reload(self, payload: dict, route: str) -> None:
        """Hot-swap one entry's weights from a checkpoint, with rollback."""
        entry = self._admin_entry(payload, verb="reload")
        checkpoint = payload.get("checkpoint")
        if not isinstance(checkpoint, str) or not checkpoint:
            raise ProtocolError(
                400, "bad_request", 'missing required field "checkpoint"',
                model=entry.name,
            )
        server = entry.server
        if not entry.reloadable:
            raise ProtocolError(
                409,
                "reload_unsupported",
                "this server has no hot-reloadable shared weights",
                model=entry.name,
            )
        from repro.nn.serialization import load_checkpoint

        try:
            arrays, _config = load_checkpoint(checkpoint)
        except FileNotFoundError as error:
            raise ProtocolError(
                400, "bad_request", f"no checkpoint at {checkpoint!r}",
                model=entry.name,
            ) from error
        except Exception as error:
            raise ProtocolError(
                400, "bad_checkpoint", f"could not load checkpoint: {error}",
                model=entry.name,
            ) from error
        old_arrays = server.current_weights()
        try:
            version = server.reload_weights(arrays)
        except (ValueError, KeyError) as error:
            raise ProtocolError(
                400,
                "bad_checkpoint",
                f"weights do not match published layout: {error}",
                model=entry.name,
            ) from error
        except RuntimeError as error:
            raise ProtocolError(
                409, "reload_unsupported", str(error), model=entry.name
            ) from error
        if self._reload_self_check(server):
            self._send_json(
                200,
                {
                    "status": "ok",
                    "model": entry.name,
                    "weights_version": version,
                    "model_id": entry.model_id,
                },
                route=route,
            )
            return
        # The new weights serve garbage: put the old ones back before
        # anyone else is routed a poisoned prediction.
        log.error(
            "reload self-check failed for %s; rolling back weights", entry.name
        )
        rollback_version = server.reload_weights(old_arrays)
        self._send_json(
            500,
            {
                **error_body(
                    "self_check_failed",
                    "new weights failed the self-check prediction; "
                    "previous weights restored",
                    model=entry.name,
                ),
                "rolled_back": True,
                "model": entry.name,
                "weights_version": rollback_version,
            },
            route=route,
        )

    @staticmethod
    def _reload_self_check(server) -> bool:
        """One probe prediction through the freshly reloaded weights."""
        try:
            results = server.predict(
                ["reload self-check probe text"], timeout=15.0
            )
            probs = results[0].probabilities
        except Exception:
            log.warning("reload self-check prediction raised", exc_info=True)
            return False
        return bool(probs) and all(math.isfinite(p) for p in probs)

    def _admin_chaos(self, payload: dict, route: str) -> None:
        """Arm a fault plan on one entry's server.

        The new body shape is ``{"model": ..., "plan": {...}}``; a body
        without a ``plan`` key is the old form — the whole payload is
        the :meth:`FaultPlan.to_dict` and the default entry is armed.
        """
        from repro.chaos import FaultInjector, FaultPlan

        if "plan" in payload:
            plan_dict = payload["plan"]
            if not isinstance(plan_dict, dict):
                raise ProtocolError(400, "bad_plan", "plan must be a JSON object")
            entry = self._admin_entry(payload, verb="arm chaos on")
        else:
            plan_dict = payload
            entry = self.gateway.fleet.default_entry
        try:
            plan = FaultPlan.from_dict(plan_dict)
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(
                400, "bad_plan", f"invalid fault plan: {error}", model=entry.name
            ) from error
        self.gateway.arm_chaos(FaultInjector(plan), entry=entry)
        self._send_json(
            200,
            {
                "status": "armed",
                "model": entry.name,
                "events": len(plan),
                "kinds": list(plan.kinds()),
                "duration_s": plan.duration_s,
            },
            route=route,
        )

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _read_body(self) -> bytes:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise ProtocolError(411, "length_required", "Content-Length required")
        try:
            length = int(length_header)
        except ValueError as error:
            raise ProtocolError(
                400, "bad_request", "malformed Content-Length"
            ) from error
        if length < 0:
            raise ProtocolError(400, "bad_request", "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(
                413,
                "payload_too_large",
                f"request body exceeds {MAX_BODY_BYTES} bytes",
            )
        return self.rfile.read(length)

    def _send_json(
        self,
        status: int,
        body: dict,
        *,
        route: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        self._send_bytes(
            status,
            payload,
            content_type="application/json",
            route=route,
            headers=headers,
        )

    def _send_error(
        self,
        status: int,
        code: str,
        message: str,
        *,
        route: str,
        model: str | None = None,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._send_json(
            status, error_body(code, message, model=model), route=route,
            headers=headers,
        )

    def _send_bytes(
        self,
        status: int,
        payload: bytes,
        *,
        content_type: str,
        route: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self.gateway.http_counters.record(route, status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if self.gateway.draining:
            # Ask keep-alive clients to reconnect elsewhere so the
            # handler thread can exit and server_close() can join it.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:
        log.debug("%s %s", self.address_string(), format % args)


class ServingGateway:
    """HTTP front door for a model fleet (or one bare inference server).

    Parameters
    ----------
    server:
        A :class:`ModelFleet`, or a bare inference server that is
        wrapped as a one-entry fleet.  Entries that are not running when
        :meth:`start` is called are started by the gateway, which then
        owns their lifecycle (drains + stops them on :meth:`stop`);
        already-running entries are caller-managed and left untouched.
    model_id:
        Identifier reported for the default entry; defaults to the
        server's own ``model_id`` (one-entry form only).
    baseline:
        Registry name of the served model, used by ``/v1/models`` to
        mark the loaded entry (one-entry form only; fleet entries carry
        their own).
    host / port:
        Bind address.  ``port=0`` binds an ephemeral free port; read
        :attr:`port` after :meth:`start` for the real one.
    request_timeout_s:
        Shared deadline for each predict request's engine futures (a
        client-propagated ``X-Deadline-Ms`` can only shorten it).
    admin_token:
        Shared secret enabling the ``/v1/admin/*`` endpoints (weight
        reload, chaos arming).  ``None`` (default) disables the admin
        surface entirely — the routes 404.
    """

    def __init__(
        self,
        server: BatchingServerBase | ModelFleet,
        *,
        model_id: str | None = None,
        baseline: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout_s: float = 30.0,
        admin_token: str | None = None,
    ) -> None:
        if isinstance(server, ModelFleet):
            self.fleet = server
        else:
            self.fleet = ModelFleet.single(
                server, baseline=baseline, model_id=model_id
            )
        self.host = host
        self.requested_port = port
        self.request_timeout_s = request_timeout_s
        self.admin_token = admin_token
        self.http_counters = HttpCounters()
        self.chaos = None
        self._chaos_server: BatchingServerBase | None = None
        self._httpd: _GatewayHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._draining = False
        self._owned_entries: tuple[ModelEntry, ...] = ()
        self._lock = create_lock("gateway.lifecycle")
        self._p50_lock = create_lock("gateway.p50")
        self._p50_ms: dict[str, float] = {}
        self._p50_read_at: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Default-entry views (the pre-fleet surface, still load-bearing)
    # ------------------------------------------------------------------
    @property
    def server(self) -> BatchingServerBase:
        """The default entry's server (the whole fleet, pre-fleet API)."""
        return self.fleet.default_entry.server

    @property
    def model_id(self) -> str:
        return self.fleet.default_entry.model_id

    @property
    def baseline(self) -> str | None:
        return self.fleet.default_entry.baseline

    # ------------------------------------------------------------------
    # Chaos + deadline admission
    # ------------------------------------------------------------------
    def arm_chaos(self, injector, *, entry: ModelEntry | None = None) -> None:
        """Arm a fault injector on this gateway (and one entry's server).

        The server side registers real fault handlers (SIGKILL for
        ``worker_crash`` on the process backend) and sees the stall /
        slow-batch seams; the gateway side serves the socket-level
        response faults for every route.  Re-arming replaces (and
        disarms) any previously armed injector, wherever it was armed.
        """
        target = (entry or self.fleet.default_entry).server
        previous = self.chaos
        if previous is not None:
            self.disarm_chaos()
        arm = getattr(target, "arm_chaos", None)
        if callable(arm):
            arm(injector)
        else:
            target.chaos = injector
            injector.arm()
        self.chaos = injector
        self._chaos_server = target

    def disarm_chaos(self) -> None:
        injector = self.chaos
        if injector is not None:
            injector.disarm()
            self.chaos = None
            if self._chaos_server is not None:
                self._chaos_server.chaos = None
                self._chaos_server = None

    def chaos_http_fault(self) -> str | None:
        """The fault kind to apply to the current response, if armed."""
        injector = self.chaos
        return None if injector is None else injector.http_response_fault()

    def chaos_summary(self) -> dict | None:
        """``/metrics`` view of the armed injector (None when unarmed)."""
        injector = self.chaos
        if injector is None:
            return None
        return {"armed": injector.armed, "injected": injector.applied_counts()}

    def observed_p50_ms(self, entry: ModelEntry | None = None) -> float:
        """Cached p50 service latency for deadline-aware admission.

        Per fleet entry (each pool has its own latency profile): 0.0
        until :data:`MIN_REQUESTS_FOR_DEADLINE_SHED` requests have been
        served this epoch (no shedding on noise), refreshed at most
        every :data:`P50_CACHE_TTL_S` (a percentile walks the whole
        stats window — too expensive per request).  Defaults to the
        default entry.
        """
        if entry is None:
            entry = self.fleet.default_entry
        now = time.monotonic()
        with self._p50_lock:
            read_at = self._p50_read_at.get(entry.name, -math.inf)
            if now - read_at >= P50_CACHE_TTL_S:
                snapshot = entry.server.stats.snapshot()
                if snapshot.requests >= MIN_REQUESTS_FOR_DEADLINE_SHED:
                    self._p50_ms[entry.name] = snapshot.latency_percentile(50)
                else:
                    self._p50_ms[entry.name] = 0.0
                self._p50_read_at[entry.name] = now
            return self._p50_ms[entry.name]

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def ready(self) -> bool:
        """Readiness: HTTP bound, every primary pool started + admitting."""
        return (
            self._httpd is not None
            and not self._draining
            and self.fleet.running
            and self.fleet.accepting
        )

    def worker_processes(
        self, *, revive: bool = False, entry: ModelEntry | None = None
    ) -> list[dict] | None:
        """Per-worker-process liveness, or ``None`` for threaded pools.

        With ``revive=True`` (the ``/healthz`` path) dead worker
        processes are respawned first, so a transient worker crash heals
        on the next health probe instead of waiting for traffic.
        Defaults to the default entry's pool.
        """
        server = (entry or self.fleet.default_entry).server
        report = getattr(server, "worker_processes", None)
        if not callable(report):
            return None
        if revive:
            ensure = getattr(server, "ensure_workers", None)
            if callable(ensure):
                revived = ensure()
                if revived:
                    log.warning("healthz respawned %d dead worker(s)", revived)
        return report()

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("gateway is not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingGateway":
        with self._lock:
            if self._httpd is not None:
                raise RuntimeError("gateway is already running")
            self._owned_entries = self.fleet.start_stopped()
            self._draining = False
            self._httpd = _GatewayHTTPServer(
                (self.host, self.requested_port), _GatewayRequestHandler, self
            )
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="serving-gateway",
                daemon=True,
            )
            self._thread.start()
        log.info(
            "serving fleet %s on %s (default %s)",
            list(self.fleet.names),
            self.url,
            self.fleet.default,
        )
        return self

    def stop(self) -> None:
        """Graceful drain: finish in-flight work, refuse new work.

        Order matters: readiness flips first (load balancers stop
        routing here), then engine admission closes
        (:meth:`InferenceServer.drain` — requests that already submitted
        still resolve; new ones get a typed 503), then the HTTP listener
        shuts down and waits for in-flight handler threads, and finally
        the inference servers' admitted backlogs drain to completion.

        Draining and stopping only apply to entries this gateway
        started.  Caller-managed servers (already running when
        :meth:`start` was called) are left untouched and fully usable —
        the gateway detaches; in-flight HTTP requests still finish
        because the listener close joins the handler threads.
        """
        self.disarm_chaos()
        with self._lock:
            httpd, thread = self._httpd, self._thread
            if httpd is None:
                return
            self._draining = True
            self._httpd = None
            self._thread = None
            owned = self._owned_entries
        if owned:
            self.fleet.drain(owned)
        httpd.shutdown()
        httpd.server_close()
        if thread is not None:
            thread.join()
        if owned:
            self.fleet.stop(owned)
            # _owned_entries is lifecycle state shared with start();
            # clear it under the same lock it is set under.
            with self._lock:
                self._owned_entries = ()

    def __enter__(self) -> "ServingGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
