"""Threaded HTTP gateway over a replicated inference server.

``ServingGateway`` binds a stdlib :class:`http.server.ThreadingHTTPServer`
(no third-party dependencies) in front of a running
:class:`~repro.engine.server.InferenceServer` (threaded workers) or
:class:`~repro.engine.procserver.ProcessInferenceServer` (worker
processes over shared-memory weights) — any
:class:`~repro.engine.server.BatchingServerBase` — and speaks the JSON
wire protocol defined in :mod:`repro.serving.protocol`:

* ``POST /v1/predict`` — one text in, label + probabilities out.
* ``POST /v1/predict_batch`` — up to ``MAX_BATCH_TEXTS`` texts at once.
* ``GET /healthz`` — readiness (workers started, model loaded, not
  draining); load balancers should route on this.
* ``GET /metrics`` — Prometheus text format from one consistent
  ``ServerStats.snapshot()`` + aggregated replica ``engine_stats()``.
* ``GET /v1/models`` — the model registry listing and which entry is
  currently being served.

Engine-level backpressure maps onto HTTP retry semantics: a shed-mode
admission rejection (:class:`ServerOverloaded`) answers ``429`` with a
``Retry-After`` hint, and a stopped or draining server answers ``503``.
Shutdown is graceful: :meth:`ServingGateway.stop` flips readiness,
closes engine admission via :meth:`InferenceServer.drain` (the SIGTERM
hook), finishes in-flight HTTP responses, then drains the admitted
backlog with :meth:`InferenceServer.stop`.
"""

from __future__ import annotations

import json
import logging
import threading
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.engine.registry import REGISTRY
from repro.engine.server import BatchingServerBase, ServerClosed, ServerOverloaded
from repro.serving.metrics import HttpCounters, render_metrics
from repro.serving.protocol import (
    MAX_BODY_BYTES,
    ProtocolError,
    error_body,
    format_prediction,
    parse_predict_batch_request,
    parse_predict_request,
)

__all__ = ["ServingGateway"]

log = logging.getLogger("repro.serving")

# Advisory backoff (seconds) sent with every 429; clients that honour
# Retry-After spread their retries instead of hammering a full queue.
RETRY_AFTER_S = 1


class _GatewayHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that joins handler threads on close.

    ``daemon_threads = False`` + ``block_on_close = True`` means
    ``server_close()`` waits for in-flight responses — the HTTP half of
    graceful drain.  Idle keep-alive connections cannot block shutdown
    because the handler carries a socket timeout.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, address, handler, gateway: "ServingGateway") -> None:
        self.gateway = gateway
        super().__init__(address, handler)


class _GatewayRequestHandler(BaseHTTPRequestHandler):
    # HTTP/1.1 keep-alive: closed-loop clients reuse one connection per
    # request stream instead of paying a TCP handshake per predict.
    protocol_version = "HTTP/1.1"
    # Socket timeout: an idle or stalled connection drops out of the
    # keep-alive loop so server_close() can finish the drain.
    timeout = 10

    server: _GatewayHTTPServer

    @property
    def gateway(self) -> "ServingGateway":
        return self.server.gateway

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        route = self.path.split("?", 1)[0]
        if route == "/healthz":
            self._handle_healthz()
        elif route == "/metrics":
            self._handle_metrics()
        elif route == "/v1/models":
            self._handle_models()
        else:
            self._send_error(404, "not_found", f"unknown path {route!r}", route="*")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        route = self.path.split("?", 1)[0]
        if route == "/v1/predict":
            self._handle_predict(batch=False)
        elif route == "/v1/predict_batch":
            self._handle_predict(batch=True)
        else:
            self._send_error(404, "not_found", f"unknown path {route!r}", route="*")

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _handle_healthz(self) -> None:
        gateway = self.gateway
        if gateway.ready:
            body = {
                "status": "ok",
                "model_id": gateway.model_id,
                "workers": gateway.server.workers,
            }
            processes = gateway.worker_processes(revive=True)
            if processes is not None:
                # Multi-process backend: report per-worker-process
                # liveness (dead workers were just respawned above; a
                # worker that STAYS dead keeps alive=false so load
                # balancers and operators can see it).
                body["processes"] = processes
                if not all(proc["alive"] for proc in processes):
                    body["status"] = "degraded"
            self._send_json(200, body, route="/healthz")
        else:
            status = "draining" if gateway.draining else "starting"
            self._send_json(503, {"status": status}, route="/healthz")

    def _handle_metrics(self) -> None:
        gateway = self.gateway
        body = render_metrics(
            gateway.server.stats.snapshot(),
            gateway.server.engine_stats(),
            gateway.http_counters.snapshot(),
            ready=gateway.ready,
            model_id=gateway.model_id,
            processes=gateway.worker_processes(),
        ).encode("utf-8")
        self._send_bytes(
            200,
            body,
            content_type="text/plain; version=0.0.4; charset=utf-8",
            route="/metrics",
        )

    def _handle_models(self) -> None:
        gateway = self.gateway
        self._send_json(
            200,
            {
                "model_id": gateway.model_id,
                "baseline": gateway.baseline,
                "models": [
                    {
                        "name": spec.name,
                        "kind": spec.kind,
                        "description": spec.description,
                        "loaded": spec.name == gateway.baseline,
                    }
                    for spec in REGISTRY.values()
                ],
            },
            route="/v1/models",
        )

    def _handle_predict(self, *, batch: bool) -> None:
        route = "/v1/predict_batch" if batch else "/v1/predict"
        gateway = self.gateway
        try:
            raw = self._read_body()
            if batch:
                texts, top_k = parse_predict_batch_request(raw)
            else:
                text, top_k = parse_predict_request(raw)
        except ProtocolError as error:
            self._send_error(error.status, error.code, error.message, route=route)
            return
        try:
            if batch:
                results = gateway.server.predict(
                    texts, timeout=gateway.request_timeout_s
                )
                body = {
                    "model_id": gateway.model_id,
                    "predictions": [
                        format_prediction(r, top_k=top_k) for r in results
                    ],
                }
            else:
                result = gateway.server.submit(text).result(
                    timeout=gateway.request_timeout_s
                )
                body = {
                    "model_id": gateway.model_id,
                    **format_prediction(result, top_k=top_k),
                }
        except ServerOverloaded:
            self._send_error(
                429,
                "overloaded",
                "admission queue full; retry after backoff",
                route=route,
                headers={"Retry-After": str(RETRY_AFTER_S)},
            )
            return
        except ServerClosed:
            self._send_error(
                503,
                "unavailable",
                "server is draining or stopped",
                route=route,
            )
            return
        except FutureTimeoutError:
            self._send_error(
                504,
                "deadline_exceeded",
                f"request did not complete within {gateway.request_timeout_s}s",
                route=route,
            )
            return
        except Exception:
            log.exception("unhandled error serving %s", route)
            self._send_error(500, "internal", "internal server error", route=route)
            return
        self._send_json(200, body, route=route)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _read_body(self) -> bytes:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise ProtocolError(411, "length_required", "Content-Length required")
        try:
            length = int(length_header)
        except ValueError:
            raise ProtocolError(400, "bad_request", "malformed Content-Length")
        if length < 0:
            raise ProtocolError(400, "bad_request", "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(
                413,
                "payload_too_large",
                f"request body exceeds {MAX_BODY_BYTES} bytes",
            )
        return self.rfile.read(length)

    def _send_json(
        self,
        status: int,
        body: dict,
        *,
        route: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        self._send_bytes(
            status,
            payload,
            content_type="application/json",
            route=route,
            headers=headers,
        )

    def _send_error(
        self,
        status: int,
        code: str,
        message: str,
        *,
        route: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._send_json(status, error_body(code, message), route=route, headers=headers)

    def _send_bytes(
        self,
        status: int,
        payload: bytes,
        *,
        content_type: str,
        route: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self.gateway.http_counters.record(route, status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if self.gateway.draining:
            # Ask keep-alive clients to reconnect elsewhere so the
            # handler thread can exit and server_close() can join it.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:
        log.debug("%s %s", self.address_string(), format % args)


class ServingGateway:
    """HTTP front door for one inference server (threaded or process).

    Parameters
    ----------
    server:
        The inference server to front.  If it is not running when
        :meth:`start` is called the gateway starts it and owns its
        lifecycle (stops it on :meth:`stop`).
    model_id:
        Identifier reported in responses and metrics; defaults to the
        first engine replica's ``model_id``.
    baseline:
        Registry name of the served model, used by ``/v1/models`` to
        mark the loaded entry.  Optional — a gateway over a stub engine
        (tests, benchmarks) has no registry entry.
    host / port:
        Bind address.  ``port=0`` binds an ephemeral free port; read
        :attr:`port` after :meth:`start` for the real one.
    request_timeout_s:
        Shared deadline for each predict request's engine futures.
    """

    def __init__(
        self,
        server: BatchingServerBase,
        *,
        model_id: str | None = None,
        baseline: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout_s: float = 30.0,
    ) -> None:
        self.server = server
        if model_id is None:
            # InferenceServer and ProcessInferenceServer both expose
            # model_id directly; stub servers in tests may only carry
            # engine replicas.
            model_id = getattr(server, "model_id", None)
        if model_id is None:
            model_id = server.engines[0].model_id
        self.model_id = model_id
        self.baseline = baseline
        self.host = host
        self.requested_port = port
        self.request_timeout_s = request_timeout_s
        self.http_counters = HttpCounters()
        self._httpd: _GatewayHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._draining = False
        self._owns_server = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def ready(self) -> bool:
        """Readiness: HTTP bound, workers started, admission open."""
        return (
            self._httpd is not None
            and not self._draining
            and self.server.running
            and self.server.accepting
        )

    def worker_processes(self, *, revive: bool = False) -> list[dict] | None:
        """Per-worker-process liveness, or ``None`` for threaded servers.

        With ``revive=True`` (the ``/healthz`` path) dead worker
        processes are respawned first, so a transient worker crash heals
        on the next health probe instead of waiting for traffic.
        """
        report = getattr(self.server, "worker_processes", None)
        if not callable(report):
            return None
        if revive:
            ensure = getattr(self.server, "ensure_workers", None)
            if callable(ensure):
                revived = ensure()
                if revived:
                    log.warning("healthz respawned %d dead worker(s)", revived)
        return report()

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("gateway is not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingGateway":
        with self._lock:
            if self._httpd is not None:
                raise RuntimeError("gateway is already running")
            if not self.server.running:
                self.server.start()
                self._owns_server = True
            self._draining = False
            self._httpd = _GatewayHTTPServer(
                (self.host, self.requested_port), _GatewayRequestHandler, self
            )
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="serving-gateway",
                daemon=True,
            )
            self._thread.start()
        log.info("serving %s on %s", self.model_id, self.url)
        return self

    def stop(self) -> None:
        """Graceful drain: finish in-flight work, refuse new work.

        Order matters: readiness flips first (load balancers stop
        routing here), then engine admission closes
        (:meth:`InferenceServer.drain` — requests that already submitted
        still resolve; new ones get a typed 503), then the HTTP listener
        shuts down and waits for in-flight handler threads, and finally
        the inference server's admitted backlog drains to completion.

        Draining and stopping only apply to a server this gateway
        started.  A caller-managed server (already running when
        :meth:`start` was called) is left untouched and fully usable —
        the gateway detaches; in-flight HTTP requests still finish
        because the listener close joins the handler threads.
        """
        with self._lock:
            httpd, thread = self._httpd, self._thread
            if httpd is None:
                return
            self._draining = True
            self._httpd = None
            self._thread = None
            owns = self._owns_server
        if owns:
            self.server.drain()
        httpd.shutdown()
        httpd.server_close()
        if thread is not None:
            thread.join()
        if owns:
            self.server.stop()
            self._owns_server = False

    def __enter__(self) -> "ServingGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
