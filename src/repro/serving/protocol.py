"""Wire protocol for the HTTP serving gateway (the ``/v1`` fleet API).

One module owns everything about the JSON-over-HTTP contract — request
validation, response shaping, and the typed error payloads — so the
gateway handler, the :class:`~repro.serving.client.ServingClient`, and
the tests all agree on byte-level details.  The schemas are documented
in ``docs/SERVING.md`` and pinned by the golden fixtures under
``tests/fixtures/protocol/``; keep all three in sync.

Predict requests may carry an optional ``model`` (routing to a named
fleet entry) and ``request_id`` (making the A/B split assignment
reproducible); responses carry a ``served_by`` envelope naming the
entry and weights version that answered.  Every error response has the
shape::

    {"error": {"code": "<machine-readable>", "message": "<human>",
               "retriable": bool, ["model": "<entry>"]}}

with the HTTP status carrying the retry semantics (429 = overloaded,
retry after backoff; 503 = not ready / draining, retry elsewhere) and
``retriable`` making them explicit for clients that do not keep a
status-code table.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.labels import DIMENSIONS
from repro.engine.server import PredictionResult

__all__ = [
    "MAX_BODY_BYTES",
    "MAX_BATCH_TEXTS",
    "PredictRequest",
    "PredictBatchRequest",
    "ProtocolError",
    "RETRIABLE_CODES",
    "error_body",
    "format_prediction",
    "parse_predict_request",
    "parse_predict_batch_request",
    "served_by",
]

# Hard cap on request body size; a gateway fronting the public internet
# must bound memory per connection before json.loads sees the payload.
MAX_BODY_BYTES = 1 << 20

# Hard cap on texts per batch request, independent of the admission
# queue bound (one giant batch request must not monopolise the queue).
MAX_BATCH_TEXTS = 256

LABEL_CODES: tuple[str, ...] = tuple(d.code for d in DIMENSIONS)

# Error codes that are retriable by contract: the request was fine, the
# condition is transient.  Everything else defaults to non-retriable
# (fix the request, the checkpoint, or the deployment first).
RETRIABLE_CODES: frozenset[str] = frozenset(
    {"overloaded", "backend_failure", "internal"}
)


class ProtocolError(Exception):
    """A request the gateway rejects before it reaches the engine.

    Parameters
    ----------
    status:
        HTTP status code to answer with.
    code:
        Stable machine-readable error identifier (``"bad_request"``,
        ``"model_not_found"``, ...) for client dispatch.
    message:
        Human-readable explanation, safe to surface to callers.
    model:
        The fleet entry the error concerns, when one was resolved (or
        requested) — carried into the error payload.
    """

    def __init__(
        self, status: int, code: str, message: str, *, model: str | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.model = model


def error_body(
    code: str,
    message: str,
    *,
    model: str | None = None,
    retriable: bool | None = None,
) -> dict[str, dict[str, object]]:
    """The canonical error payload (also used for engine-level errors).

    ``retriable`` defaults from :data:`RETRIABLE_CODES` so callers that
    only know the code still emit the contract-complete shape; pass it
    explicitly to override (e.g. a 429 during drain that will not
    clear).  ``model`` appears only when the error is about a specific
    fleet entry.
    """
    if retriable is None:
        retriable = code in RETRIABLE_CODES
    error: dict[str, object] = {
        "code": code,
        "message": message,
        "retriable": retriable,
    }
    if model is not None:
        error["model"] = model
    return {"error": error}


def served_by(model: str, weights_version: int) -> dict[str, object]:
    """The response envelope naming which entry answered."""
    return {"model": model, "weights_version": weights_version}


@dataclass(frozen=True)
class PredictRequest:
    """A validated ``POST /v1/predict`` body."""

    text: str
    top_k: int | None
    model: str | None
    request_id: str | None


@dataclass(frozen=True)
class PredictBatchRequest:
    """A validated ``POST /v1/predict_batch`` body."""

    texts: list[str]
    top_k: int | None
    model: str | None
    request_id: str | None


def _parse_json_object(raw: bytes) -> dict[str, object]:
    if len(raw) > MAX_BODY_BYTES:
        raise ProtocolError(
            413,
            "payload_too_large",
            f"request body exceeds {MAX_BODY_BYTES} bytes",
        )
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(
            400, "bad_json", f"body is not valid JSON: {error}"
        ) from error
    except RecursionError as error:
        # json.loads blows the interpreter stack on pathologically
        # nested input (e.g. b"[" * 100_000) long before the size cap
        # trips.  That is the *request's* fault, not the server's — it
        # must surface as a typed 400, never a 500.
        raise ProtocolError(400, "bad_json", "body is too deeply nested") from error
    if not isinstance(payload, dict):
        raise ProtocolError(400, "bad_request", "body must be a JSON object")
    return payload


def _parse_top_k(payload: dict[str, object]) -> int | None:
    top_k = payload.get("top_k")
    if top_k is None:
        return None
    if isinstance(top_k, bool) or not isinstance(top_k, int):
        raise ProtocolError(400, "bad_request", "top_k must be an integer")
    if not 1 <= top_k <= len(LABEL_CODES):
        raise ProtocolError(
            400,
            "bad_request",
            f"top_k must be between 1 and {len(LABEL_CODES)}",
        )
    return top_k


def _parse_optional_str(payload: dict[str, object], field: str) -> str | None:
    value = payload.get(field)
    if value is None:
        return None
    if not isinstance(value, str) or not value:
        raise ProtocolError(
            400, "bad_request", f"{field} must be a non-empty string"
        )
    return value


def _require_text(value: object, *, what: str) -> str:
    if not isinstance(value, str):
        raise ProtocolError(400, "bad_request", f"{what} must be a string")
    if not value.strip():
        raise ProtocolError(400, "bad_request", f"{what} must not be empty")
    return value


def parse_predict_request(raw: bytes) -> PredictRequest:
    """Validate a ``POST /v1/predict`` body."""
    payload = _parse_json_object(raw)
    if "text" not in payload:
        raise ProtocolError(400, "bad_request", 'missing required field "text"')
    return PredictRequest(
        text=_require_text(payload["text"], what="text"),
        top_k=_parse_top_k(payload),
        model=_parse_optional_str(payload, "model"),
        request_id=_parse_optional_str(payload, "request_id"),
    )


def parse_predict_batch_request(raw: bytes) -> PredictBatchRequest:
    """Validate a ``POST /v1/predict_batch`` body."""
    payload = _parse_json_object(raw)
    if "texts" not in payload:
        raise ProtocolError(400, "bad_request", 'missing required field "texts"')
    texts = payload["texts"]
    if not isinstance(texts, list) or not texts:
        raise ProtocolError(400, "bad_request", "texts must be a non-empty JSON array")
    if len(texts) > MAX_BATCH_TEXTS:
        raise ProtocolError(
            413,
            "payload_too_large",
            f"texts has {len(texts)} entries; the limit is {MAX_BATCH_TEXTS}",
        )
    return PredictBatchRequest(
        texts=[_require_text(t, what=f"texts[{i}]") for i, t in enumerate(texts)],
        top_k=_parse_top_k(payload),
        model=_parse_optional_str(payload, "model"),
        request_id=_parse_optional_str(payload, "request_id"),
    )


def format_prediction(
    result: PredictionResult, *, top_k: int | None = None
) -> dict[str, object]:
    """One served prediction as its JSON-ready response object.

    Without ``top_k`` the full probability vector is returned as a
    ``{label_code: probability}`` object in canonical ``DIMENSIONS``
    order; with ``top_k`` it becomes a probability-descending list of
    ``{"label": ..., "probability": ...}`` pairs (ties broken by
    canonical label order, so responses are deterministic).
    """
    probs: Sequence[float] = result.probabilities
    body: dict[str, object] = {
        "label": result.label.code,
        "latency_ms": result.latency_ms,
    }
    if top_k is None:
        body["probabilities"] = dict(zip(LABEL_CODES, probs))
    else:
        ranked = sorted(range(len(probs)), key=lambda i: (-probs[i], i))[:top_k]
        body["top_k"] = [
            {"label": LABEL_CODES[i], "probability": probs[i]} for i in ranked
        ]
    return body
