"""Wire protocol for the HTTP serving gateway.

One module owns everything about the JSON-over-HTTP contract — request
validation, response shaping, and the typed error payloads — so the
gateway handler, the :class:`~repro.serving.client.ServingClient`, and
the tests all agree on byte-level details.  The schemas are documented
in ``docs/SERVING.md``; keep the two in sync.

Every error response has the shape::

    {"error": {"code": "<machine-readable>", "message": "<human>"}}

with the HTTP status carrying the retry semantics (429 = overloaded,
retry after backoff; 503 = not ready / draining, retry elsewhere).
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.core.labels import DIMENSIONS
from repro.engine.server import PredictionResult

__all__ = [
    "MAX_BODY_BYTES",
    "MAX_BATCH_TEXTS",
    "ProtocolError",
    "error_body",
    "format_prediction",
    "parse_predict_request",
    "parse_predict_batch_request",
]

# Hard cap on request body size; a gateway fronting the public internet
# must bound memory per connection before json.loads sees the payload.
MAX_BODY_BYTES = 1 << 20

# Hard cap on texts per batch request, independent of the admission
# queue bound (one giant batch request must not monopolise the queue).
MAX_BATCH_TEXTS = 256

LABEL_CODES: tuple[str, ...] = tuple(d.code for d in DIMENSIONS)


class ProtocolError(Exception):
    """A request the gateway rejects before it reaches the engine.

    Parameters
    ----------
    status:
        HTTP status code to answer with.
    code:
        Stable machine-readable error identifier (``"bad_request"``,
        ``"payload_too_large"``, ...) for client dispatch.
    message:
        Human-readable explanation, safe to surface to callers.
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


def error_body(code: str, message: str) -> dict[str, dict[str, str]]:
    """The canonical error payload (also used for engine-level errors)."""
    return {"error": {"code": code, "message": message}}


def _parse_json_object(raw: bytes) -> dict[str, object]:
    if len(raw) > MAX_BODY_BYTES:
        raise ProtocolError(
            413,
            "payload_too_large",
            f"request body exceeds {MAX_BODY_BYTES} bytes",
        )
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(
            400, "bad_json", f"body is not valid JSON: {error}"
        ) from error
    except RecursionError as error:
        # json.loads blows the interpreter stack on pathologically
        # nested input (e.g. b"[" * 100_000) long before the size cap
        # trips.  That is the *request's* fault, not the server's — it
        # must surface as a typed 400, never a 500.
        raise ProtocolError(400, "bad_json", "body is too deeply nested") from error
    if not isinstance(payload, dict):
        raise ProtocolError(400, "bad_request", "body must be a JSON object")
    return payload


def _parse_top_k(payload: dict[str, object]) -> int | None:
    top_k = payload.get("top_k")
    if top_k is None:
        return None
    if isinstance(top_k, bool) or not isinstance(top_k, int):
        raise ProtocolError(400, "bad_request", "top_k must be an integer")
    if not 1 <= top_k <= len(LABEL_CODES):
        raise ProtocolError(
            400,
            "bad_request",
            f"top_k must be between 1 and {len(LABEL_CODES)}",
        )
    return top_k


def _require_text(value: object, *, what: str) -> str:
    if not isinstance(value, str):
        raise ProtocolError(400, "bad_request", f"{what} must be a string")
    if not value.strip():
        raise ProtocolError(400, "bad_request", f"{what} must not be empty")
    return value


def parse_predict_request(raw: bytes) -> tuple[str, int | None]:
    """Validate a ``POST /v1/predict`` body -> ``(text, top_k)``."""
    payload = _parse_json_object(raw)
    if "text" not in payload:
        raise ProtocolError(400, "bad_request", 'missing required field "text"')
    return _require_text(payload["text"], what="text"), _parse_top_k(payload)


def parse_predict_batch_request(raw: bytes) -> tuple[list[str], int | None]:
    """Validate a ``POST /v1/predict_batch`` body -> ``(texts, top_k)``."""
    payload = _parse_json_object(raw)
    if "texts" not in payload:
        raise ProtocolError(400, "bad_request", 'missing required field "texts"')
    texts = payload["texts"]
    if not isinstance(texts, list) or not texts:
        raise ProtocolError(400, "bad_request", "texts must be a non-empty JSON array")
    if len(texts) > MAX_BATCH_TEXTS:
        raise ProtocolError(
            413,
            "payload_too_large",
            f"texts has {len(texts)} entries; the limit is {MAX_BATCH_TEXTS}",
        )
    return (
        [_require_text(t, what=f"texts[{i}]") for i, t in enumerate(texts)],
        _parse_top_k(payload),
    )


def format_prediction(
    result: PredictionResult, *, top_k: int | None = None
) -> dict[str, object]:
    """One served prediction as its JSON-ready response object.

    Without ``top_k`` the full probability vector is returned as a
    ``{label_code: probability}`` object in canonical ``DIMENSIONS``
    order; with ``top_k`` it becomes a probability-descending list of
    ``{"label": ..., "probability": ...}`` pairs (ties broken by
    canonical label order, so responses are deterministic).
    """
    probs: Sequence[float] = result.probabilities
    body: dict[str, object] = {
        "label": result.label.code,
        "latency_ms": result.latency_ms,
    }
    if top_k is None:
        body["probabilities"] = dict(zip(LABEL_CODES, probs))
    else:
        ranked = sorted(range(len(probs)), key=lambda i: (-probs[i], i))[:top_k]
        body["top_k"] = [
            {"label": LABEL_CODES[i], "probability": probs[i]} for i in ranked
        ]
    return body
