"""Open-loop (and reference closed-loop) load generation runners.

The open-loop runner is the measurement instrument this package exists
for.  Its three honesty rules:

1. **Latency is measured from the intended send time** (the schedule's
   arrival offset), not from when the request actually left.  If the
   generator or the server falls behind, the backlog wait is charged to
   the requests that were due — a stall shows up as tail latency
   instead of silently shrinking the offered load.
2. **The in-flight cap is deadline-aware.**  Concurrency is bounded
   (``max_in_flight`` transport workers) so an unresponsive server
   cannot eat unbounded threads/sockets — but a request that cannot be
   sent before ``intended + deadline_s`` is *dropped and charged the
   full deadline* in the histogram.  Capping concurrency without
   charging the overflow is just coordinated omission with extra steps.
3. **Failures are recorded, typed, and charged.**  An exception from
   the transport counts against the run (by exception class name) and
   its wall-clock cost still lands in the histogram.

:func:`run_closed_loop` is the deliberately naive baseline — N clients,
one request in flight each, latency measured from the actual send — so
the coordinated-omission gap is measurable (and is regression-tested)
rather than folklore.

The transport callable receives ``(text, intended_at)`` where
``intended_at`` is a ``time.monotonic`` timestamp; HTTP transports
should forward it to ``ServingClient(..., intended_at=...)`` so retry
deadlines are anchored to the schedule, not to when the backlog finally
dispatched the request.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.analysis.lockcheck import create_lock
from repro.loadgen.histogram import LatencyHistogram
from repro.loadgen.schedule import ArrivalSchedule

__all__ = ["LoadResult", "run_closed_loop", "run_open_loop"]

_SendFn = Callable[[str, float], object]


@dataclass
class LoadResult:
    """Outcome of one load-generation run.

    ``scheduled == completed + failed + dropped`` always holds for
    open-loop runs; closed-loop runs have ``dropped == 0`` and
    ``scheduled == completed + failed`` (the client count times however
    many requests they managed — that elasticity is the methodology's
    flaw, which is the point of keeping it around).
    """

    mode: str
    histogram: LatencyHistogram
    offered_rate_rps: float
    achieved_rate_rps: float
    duration_s: float
    scheduled: int
    completed: int
    failed: int
    dropped: int
    error_types: dict[str, int] = field(default_factory=dict)

    @property
    def availability(self) -> float:
        """Fraction of scheduled requests that completed successfully.

        The chaos benchmark's gate metric: failures *and* drops count
        against it, so neither a crashing server nor a backlogged
        generator can dress up as availability.  1.0 when nothing was
        scheduled.
        """
        return self.completed / self.scheduled if self.scheduled else 1.0

    @property
    def p50_ms(self) -> float:
        return self.histogram.percentile(50)

    @property
    def p95_ms(self) -> float:
        return self.histogram.percentile(95)

    @property
    def p99_ms(self) -> float:
        return self.histogram.percentile(99)

    @property
    def p999_ms(self) -> float:
        return self.histogram.percentile(99.9)

    def summary(self) -> dict:
        """Flat dict of the run (record-file / report friendly)."""
        return {
            "mode": self.mode,
            "offered_rate_rps": self.offered_rate_rps,
            "achieved_rate_rps": self.achieved_rate_rps,
            "duration_s": self.duration_s,
            "scheduled": self.scheduled,
            "completed": self.completed,
            "failed": self.failed,
            "dropped": self.dropped,
            "availability": self.availability,
            "error_types": dict(self.error_types),
            **self.histogram.percentiles(),
        }


class _Collector:
    """Thread-safe accumulation of latencies and outcome counters."""

    def __init__(self) -> None:
        self.lock = create_lock("loadgen.collector")
        self.histogram = LatencyHistogram()
        self.completed = 0
        self.failed = 0
        self.dropped = 0
        self.error_types: dict[str, int] = {}
        self.last_done_at = 0.0

    def record(self, outcome: str, latency_ms: float, done_at: float, error=None):
        with self.lock:
            self.histogram.record(latency_ms)
            self.last_done_at = max(self.last_done_at, done_at)
            if outcome == "completed":
                self.completed += 1
            elif outcome == "dropped":
                self.dropped += 1
            else:
                self.failed += 1
                name = type(error).__name__
                self.error_types[name] = self.error_types.get(name, 0) + 1


def run_open_loop(
    schedule: ArrivalSchedule,
    send: _SendFn,
    texts: Sequence[str],
    *,
    max_in_flight: int = 64,
    deadline_s: float = 10.0,
) -> LoadResult:
    """Drive ``send`` with the schedule's arrivals; measure honestly.

    The calling thread is the pacer: it sleeps until each intended
    arrival time and hands ``(index, intended_at)`` to a pool of
    ``max_in_flight`` transport workers.  Workers that are all busy
    leave arrivals queued — their latency clocks are already running —
    and any arrival still unsent at ``intended + deadline_s`` is
    dropped and charged the full deadline.

    ``texts`` is indexed round-robin (``texts[i % len(texts)]``), so a
    streamed corpus slice of any size drives an arbitrarily long run.
    """
    if not texts:
        raise ValueError("texts must be non-empty")
    if max_in_flight < 1:
        raise ValueError("max_in_flight must be >= 1")
    if deadline_s <= 0:
        raise ValueError("deadline_s must be positive")

    collector = _Collector()
    work: queue.SimpleQueue = queue.SimpleQueue()
    deadline_ms = deadline_s * 1000.0

    def worker() -> None:
        while True:
            item = work.get()
            if item is None:
                return
            index, intended_at = item
            now = time.monotonic()
            if now - intended_at >= deadline_s:
                # Could not even start before the deadline: charge the
                # whole deadline so the backlog is visible in the tail.
                collector.record("dropped", deadline_ms, now)
                continue
            try:
                send(texts[index % len(texts)], intended_at)
            except Exception as error:  # noqa: BLE001 - typed + counted
                done = time.monotonic()
                collector.record("failed", (done - intended_at) * 1000.0, done, error)
            else:
                done = time.monotonic()
                collector.record("completed", (done - intended_at) * 1000.0, done)

    workers = [
        threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
        for i in range(max_in_flight)
    ]
    for thread in workers:
        thread.start()

    start = time.monotonic()
    for index, offset in enumerate(schedule.times):
        intended_at = start + offset
        delay = intended_at - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        # If the pacer itself fell behind, the request is late already —
        # intended_at (not now) is what the worker charges against.
        work.put((index, intended_at))
    for _ in workers:
        work.put(None)
    for thread in workers:
        thread.join()

    end = max(collector.last_done_at, start + schedule.duration_s)
    duration = end - start
    return LoadResult(
        mode="open",
        histogram=collector.histogram,
        offered_rate_rps=schedule.rate_rps,
        achieved_rate_rps=collector.completed / duration if duration > 0 else 0.0,
        duration_s=duration,
        scheduled=len(schedule),
        completed=collector.completed,
        failed=collector.failed,
        dropped=collector.dropped,
        error_types=dict(collector.error_types),
    )


def run_closed_loop(
    send: _SendFn,
    texts: Sequence[str],
    *,
    n_clients: int = 8,
    duration_s: float = 2.0,
) -> LoadResult:
    """The coordinated-omission baseline: N clients, measure at send.

    Each client keeps exactly one request in flight and stamps latency
    from the moment *it* sent — so while the server stalls, the clients
    stall with it, offered load collapses, and only ``n_clients``
    requests ever observe the stall.  Kept (and exercised in the
    benchmark suite) purely to measure how much that methodology hides.
    """
    if not texts:
        raise ValueError("texts must be non-empty")
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")

    collector = _Collector()
    stop_at = time.monotonic() + duration_s

    def client(client_index: int) -> None:
        index = client_index
        while time.monotonic() < stop_at:
            sent_at = time.monotonic()
            try:
                send(texts[index % len(texts)], sent_at)
            except Exception as error:  # noqa: BLE001 - typed + counted
                done = time.monotonic()
                collector.record("failed", (done - sent_at) * 1000.0, done, error)
            else:
                done = time.monotonic()
                collector.record("completed", (done - sent_at) * 1000.0, done)
            index += n_clients

    threads = [
        threading.Thread(target=client, args=(i,), name=f"closed-{i}", daemon=True)
        for i in range(n_clients)
    ]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = max(collector.last_done_at, stop_at) - start
    completed = collector.completed
    achieved = completed / duration if duration > 0 else 0.0
    return LoadResult(
        mode="closed",
        histogram=collector.histogram,
        # A closed loop has no offered rate independent of the server;
        # reporting achieved as offered IS the methodological flaw.
        offered_rate_rps=achieved,
        achieved_rate_rps=achieved,
        duration_s=duration,
        scheduled=completed + collector.failed,
        completed=completed,
        failed=collector.failed,
        dropped=0,
        error_types=dict(collector.error_types),
    )
