"""Open-loop load generation for the serving stack.

The measurement substrate the serving benchmarks are gated on:

* :mod:`repro.loadgen.schedule` — seeded Poisson / fixed-rate arrival
  schedules, precomputed before the run and replayable from JSON trace
  files.
* :mod:`repro.loadgen.histogram` — HDR-style constant-memory latency
  histograms with bounded (≈2.5%) relative quantile error.
* :mod:`repro.loadgen.runner` — the open-loop runner (latency measured
  from *intended* send time, deadline-aware in-flight cap, typed
  failure accounting) plus the deliberately naive closed-loop baseline
  it is compared against.
* :mod:`repro.loadgen.cli` — ``holistix-loadgen``, the operator CLI
  that drives a running gateway URL with a schedule or a trace file.

Why open loop: a closed-loop client (N threads, one request in flight
each) slows down exactly when the server does, so a 500 ms server stall
touches only N requests and vanishes from p99 — coordinated omission.
The open-loop runner keeps offered load fixed and charges every stalled
millisecond to the requests that were due, so the tail cannot lie.  The
gap between the two methodologies is itself measured and regression-
tested (``serving_tail`` scenario, ``tests/test_loadgen.py``).
"""

from repro.loadgen.histogram import LatencyHistogram
from repro.loadgen.runner import LoadResult, run_closed_loop, run_open_loop
from repro.loadgen.schedule import (
    ArrivalSchedule,
    fixed_rate_schedule,
    poisson_schedule,
)

__all__ = [
    "ArrivalSchedule",
    "LatencyHistogram",
    "LoadResult",
    "fixed_rate_schedule",
    "poisson_schedule",
    "run_closed_loop",
    "run_open_loop",
]
