"""HDR-style latency histogram with bounded relative error.

Recording a latency takes O(1) and constant memory regardless of how
many samples arrive: values land in geometrically spaced buckets
(``growth`` per step, default 1.05), so any reported percentile is
within ±2.5% of the true sample value — the same guarantee shape as
HdrHistogram, without the dependency.  That is what makes million-
request open-loop runs feasible: the alternative (keeping every sample
and sorting) is exactly the bounded-window shortcut that quietly drops
the tail on long runs.

Histograms ``merge`` (same bucket config required) and round-trip
through :meth:`to_dict`/:meth:`from_dict`, so per-worker histograms can
be combined and a run's full latency distribution can be committed or
uploaded as an artifact next to the scalar percentiles.
"""

from __future__ import annotations

import math

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """Fixed-precision latency histogram over milliseconds.

    Parameters
    ----------
    lowest_ms:
        Values at or below this land in bucket 0 (the resolution floor).
    growth:
        Geometric bucket width; relative quantile error is bounded by
        ``(sqrt(growth) - 1)`` ≈ 2.5% at the default 1.05.
    """

    __slots__ = ("lowest_ms", "growth", "_log_growth", "_counts", "count", "max_ms")

    def __init__(self, *, lowest_ms: float = 0.01, growth: float = 1.05) -> None:
        if lowest_ms <= 0:
            raise ValueError("lowest_ms must be positive")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.lowest_ms = lowest_ms
        self.growth = growth
        self._log_growth = math.log(growth)
        self._counts: dict[int, int] = {}
        self.count = 0
        self.max_ms = 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _index(self, value_ms: float) -> int:
        if value_ms <= self.lowest_ms:
            return 0
        return 1 + int(math.log(value_ms / self.lowest_ms) / self._log_growth)

    def _value_at(self, index: int) -> float:
        if index <= 0:
            return self.lowest_ms
        # Geometric midpoint of the bucket, clipped to the true max so
        # the top of the distribution is reported exactly.
        mid = self.lowest_ms * self.growth ** (index - 0.5)
        return min(mid, self.max_ms) if self.max_ms > 0 else mid

    def record(self, value_ms: float, n: int = 1) -> None:
        """Record ``n`` observations of ``value_ms`` (clamped at >= 0)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        value_ms = max(0.0, float(value_ms))
        index = self._index(value_ms)
        self._counts[index] = self._counts.get(index, 0) + n
        self.count += n
        if value_ms > self.max_ms:
            self.max_ms = value_ms

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """Latency (ms) at percentile ``q`` in [0, 100]; 0.0 when empty."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(self.count * q / 100.0))
        occupied = sorted(self._counts)
        seen = 0
        for index in occupied:
            seen += self._counts[index]
            if seen >= target:
                # The highest occupied bucket is represented by the true
                # max, so p100 (and any quantile landing there) is exact.
                if index == occupied[-1]:
                    return self.max_ms
                return self._value_at(index)
        return self.max_ms  # pragma: no cover - unreachable (counts sum)

    def percentiles(self) -> dict[str, float]:
        """The standard tail summary: p50/p90/p95/p99/p999 and max."""
        return {
            "p50_ms": self.percentile(50),
            "p90_ms": self.percentile(90),
            "p95_ms": self.percentile(95),
            "p99_ms": self.percentile(99),
            "p999_ms": self.percentile(99.9),
            "max_ms": self.max_ms,
        }

    def mean_ms(self) -> float:
        """Approximate mean from bucket midpoints (same error bound)."""
        if self.count == 0:
            return 0.0
        total = sum(self._value_at(i) * c for i, c in self._counts.items())
        return total / self.count

    # ------------------------------------------------------------------
    # Merge / serialisation
    # ------------------------------------------------------------------
    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram (same bucket config)."""
        if (other.lowest_ms, other.growth) != (self.lowest_ms, self.growth):
            raise ValueError("cannot merge histograms with different buckets")
        for index, n in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + n
        self.count += other.count
        self.max_ms = max(self.max_ms, other.max_ms)
        return self

    def to_dict(self) -> dict:
        return {
            "lowest_ms": self.lowest_ms,
            "growth": self.growth,
            "count": self.count,
            "max_ms": self.max_ms,
            "counts": {str(index): n for index, n in sorted(self._counts.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LatencyHistogram":
        histogram = cls(
            lowest_ms=float(payload["lowest_ms"]), growth=float(payload["growth"])
        )
        histogram._counts = {
            int(index): int(n) for index, n in payload["counts"].items()
        }
        histogram.count = int(payload["count"])
        histogram.max_ms = float(payload["max_ms"])
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.count == 0:
            return "LatencyHistogram(empty)"
        return (
            f"LatencyHistogram(n={self.count}, p50={self.percentile(50):.2f}ms, "
            f"p99={self.percentile(99):.2f}ms, max={self.max_ms:.2f}ms)"
        )
