"""Arrival schedules for open-loop load generation.

A schedule is the full list of *intended* send times, precomputed from a
seed before the run starts.  That precomputation is the heart of
open-loop (coordinated-omission-free) measurement: the request stream is
decided up front by the workload model, so a stalled server cannot slow
its own offered load — requests keep "arriving" on schedule and every
second the server spends stuck is charged to the requests that were due
during the stall.

Two workload models:

* :func:`fixed_rate_schedule` — arrivals exactly ``1/rate`` apart (the
  deterministic pacing wrk2 uses).
* :func:`poisson_schedule` — exponential inter-arrival gaps (memoryless
  traffic, the standard model for independent user requests).  Bursts
  are real: a Poisson stream at 200 rps routinely packs 5 arrivals into
  10 ms, which is exactly the burstiness closed-loop clients never
  produce.

Schedules are plain data and serialise to JSON trace files
(:meth:`ArrivalSchedule.save` / :meth:`ArrivalSchedule.load`), so a
benchmark run can be replayed bit-for-bit later — same arrivals, same
order — against a different server build.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "ArrivalSchedule",
    "fixed_rate_schedule",
    "poisson_schedule",
]

_TRACE_VERSION = 1


@dataclass(frozen=True)
class ArrivalSchedule:
    """An immutable list of intended send offsets (seconds from start).

    ``times`` is sorted and non-negative; ``rate_rps`` is the *offered*
    rate the schedule was built for (the honest denominator every
    open-loop metric is reported against).  ``kind`` and ``seed`` record
    provenance so a trace file is self-describing.
    """

    kind: str
    rate_rps: float
    seed: int
    times: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if any(t < 0 for t in self.times):
            raise ValueError("arrival times must be non-negative")
        if any(b < a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("arrival times must be sorted")

    def __len__(self) -> int:
        return len(self.times)

    @property
    def duration_s(self) -> float:
        """Nominal span of the schedule: ``n / rate`` (not the last
        arrival — a Poisson tail gap is part of the workload)."""
        return len(self.times) / self.rate_rps

    # ------------------------------------------------------------------
    # Trace files
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "trace_version": _TRACE_VERSION,
            "kind": self.kind,
            "rate_rps": self.rate_rps,
            "seed": self.seed,
            "times": list(self.times),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ArrivalSchedule":
        if payload.get("trace_version") != _TRACE_VERSION:
            raise ValueError(
                f"unsupported trace_version: {payload.get('trace_version')!r}"
            )
        return cls(
            kind=str(payload["kind"]),
            rate_rps=float(payload["rate_rps"]),
            seed=int(payload["seed"]),
            times=tuple(float(t) for t in payload["times"]),
        )

    def save(self, path: str | Path) -> Path:
        """Write a replayable JSON trace file; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict()) + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ArrivalSchedule":
        """Read a trace file written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def _resolve_n(rate_rps: float, duration_s: float | None, n: int | None) -> int:
    if (duration_s is None) == (n is None):
        raise ValueError("provide exactly one of duration_s or n")
    if n is None:
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        n = int(round(rate_rps * duration_s))
    if n < 1:
        raise ValueError("schedule must contain at least one arrival")
    return n


def fixed_rate_schedule(
    rate_rps: float,
    *,
    duration_s: float | None = None,
    n: int | None = None,
    seed: int = 0,
) -> ArrivalSchedule:
    """Deterministic arrivals exactly ``1/rate_rps`` apart.

    ``seed`` is recorded for provenance only; the schedule does not
    depend on it.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    count = _resolve_n(rate_rps, duration_s, n)
    gap = 1.0 / rate_rps
    return ArrivalSchedule(
        kind="fixed",
        rate_rps=rate_rps,
        seed=seed,
        times=tuple(i * gap for i in range(count)),
    )


def poisson_schedule(
    rate_rps: float,
    *,
    duration_s: float | None = None,
    n: int | None = None,
    seed: int = 0,
) -> ArrivalSchedule:
    """Poisson arrivals: i.i.d. exponential gaps with mean ``1/rate_rps``.

    Fully determined by ``seed`` (``random.Random`` — its Mersenne
    Twister stream is stable across Python versions, so traces
    regenerate identically anywhere).
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    count = _resolve_n(rate_rps, duration_s, n)
    rng = random.Random(seed)
    now = 0.0
    times = []
    for _ in range(count):
        now += rng.expovariate(rate_rps)
        times.append(now)
    return ArrivalSchedule(
        kind="poisson", rate_rps=rate_rps, seed=seed, times=tuple(times)
    )
