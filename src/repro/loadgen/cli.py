"""``holistix-loadgen``: open-loop load generation against a gateway.

Drives a running ``holistix-serve`` gateway with a seeded open-loop
schedule (or a replayed trace file) over a streamed synthetic corpus,
and reports the honest latency distribution::

    holistix-loadgen --url http://127.0.0.1:8420 --rate 200 --duration 30
    holistix-loadgen --url ... --schedule fixed --rate 500 --save-trace run.json
    holistix-loadgen --url ... --trace run.json --out report.json

The report JSON contains the run summary (offered/achieved rate,
completed/failed/dropped, p50..p999) plus the full histogram, so two
runs can be diffed bucket by bucket.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.corpus.factory import CorpusFactory
from repro.loadgen.runner import run_open_loop
from repro.loadgen.schedule import (
    ArrivalSchedule,
    fixed_rate_schedule,
    poisson_schedule,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="holistix-loadgen",
        description="Open-loop load generator for the Holistix serving gateway.",
    )
    parser.add_argument("--url", required=True, help="gateway base URL")
    parser.add_argument(
        "--rate", type=float, default=100.0, help="offered load, requests/sec"
    )
    parser.add_argument(
        "--duration", type=float, default=10.0, help="schedule length, seconds"
    )
    parser.add_argument(
        "--schedule",
        choices=["poisson", "fixed"],
        default="poisson",
        help="arrival process (default: poisson)",
    )
    parser.add_argument("--seed", type=int, default=0, help="schedule + corpus seed")
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        help="replay this trace file instead of generating a schedule",
    )
    parser.add_argument(
        "--save-trace",
        type=Path,
        default=None,
        help="write the (generated) schedule to a replayable trace file",
    )
    parser.add_argument(
        "--corpus-size",
        type=int,
        default=10_000,
        help="synthetic documents streamed from the corpus factory",
    )
    parser.add_argument(
        "--max-in-flight", type=int, default=64, help="transport concurrency cap"
    )
    parser.add_argument(
        "--deadline-s",
        type=float,
        default=10.0,
        help="per-request deadline from intended send time",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the JSON report here"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.trace is not None:
        schedule = ArrivalSchedule.load(args.trace)
    elif args.schedule == "poisson":
        schedule = poisson_schedule(args.rate, duration_s=args.duration, seed=args.seed)
    else:
        schedule = fixed_rate_schedule(
            args.rate, duration_s=args.duration, seed=args.seed
        )
    if args.save_trace is not None:
        schedule.save(args.save_trace)
        print(f"trace written to {args.save_trace}")

    texts = CorpusFactory().texts(args.seed, args.corpus_size)

    # Imported late so --help / trace handling work without a server.
    from repro.serving.client import ServingClient

    client = ServingClient(args.url, deadline_s=args.deadline_s)
    client.wait_ready(deadline_s=10.0)

    def send(text: str, intended_at: float) -> None:
        client.predict(text, intended_at=intended_at)

    result = run_open_loop(
        schedule,
        send,
        texts,
        max_in_flight=args.max_in_flight,
        deadline_s=args.deadline_s,
    )

    summary = result.summary()
    print(
        f"offered {summary['offered_rate_rps']:.1f} rps -> achieved "
        f"{summary['achieved_rate_rps']:.1f} rps over {summary['duration_s']:.1f}s"
    )
    print(
        f"completed {summary['completed']}  failed {summary['failed']}  "
        f"dropped {summary['dropped']}"
    )
    for key in ("p50_ms", "p95_ms", "p99_ms", "p999_ms", "max_ms"):
        print(f"  {key:>8}: {summary[key]:10.2f}")

    if args.out is not None:
        report = {
            "summary": summary,
            "histogram": result.histogram.to_dict(),
            "schedule": {
                "kind": schedule.kind,
                "rate_rps": schedule.rate_rps,
                "seed": schedule.seed,
                "n": len(schedule),
            },
        }
        args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"report written to {args.out}")

    return 0 if result.failed == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
