"""Experiment E1 — Table II: dataset statistics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dataset import DatasetStatistics, HolistixDataset
from repro.core.labels import DIMENSIONS
from repro.experiments.paper_reference import (
    PAPER_CLASS_PERCENTAGES,
    PAPER_TABLE2,
)
from repro.experiments.reporting import render_table

__all__ = ["Table2Result", "run_table2", "format_table2"]


@dataclass(frozen=True)
class Table2Result:
    """Measured statistics next to the published ones."""

    measured: DatasetStatistics

    def matches_paper_exactly(self) -> bool:
        m = self.measured
        return (
            m.total_posts == PAPER_TABLE2["total_posts"]
            and m.total_words == PAPER_TABLE2["total_words"]
            and m.max_words_per_post == PAPER_TABLE2["max_words_per_post"]
            and m.total_sentences == PAPER_TABLE2["total_sentences"]
            and m.max_sentences_per_post == PAPER_TABLE2["max_sentences_per_post"]
            and m.dimension_counts == PAPER_TABLE2["dimension_counts"]
        )


def run_table2(dataset: HolistixDataset | None = None) -> Table2Result:
    """Compute Table II over the (default) Holistix build."""
    dataset = dataset or HolistixDataset.build()
    return Table2Result(measured=dataset.statistics())


def format_table2(result: Table2Result) -> str:
    """Render the Table II comparison as text."""
    m = result.measured
    rows = [
        ["Total posts", m.total_posts, PAPER_TABLE2["total_posts"]],
        ["Total words count", m.total_words, PAPER_TABLE2["total_words"]],
        [
            "Max. word count per post",
            m.max_words_per_post,
            PAPER_TABLE2["max_words_per_post"],
        ],
        ["Total sentence count", m.total_sentences, PAPER_TABLE2["total_sentences"]],
        [
            "Max. sentences per post",
            m.max_sentences_per_post,
            PAPER_TABLE2["max_sentences_per_post"],
        ],
    ]
    percentages = m.dimension_percentages()
    for dim in DIMENSIONS:
        rows.append(
            [
                f"{dim.code} count (share)",
                f"{m.dimension_counts[dim]} ({percentages[dim]:.2f}%)",
                f"{PAPER_TABLE2['dimension_counts'][dim]} "
                f"({PAPER_CLASS_PERCENTAGES[dim]:.2f}%)",
            ]
        )
    return render_table(
        ["Measure", "Measured", "Paper"],
        rows,
        title="Table II — Statistics of dataset (measured vs paper)",
    )
