"""Experiment E3 — Table IV: baseline comparison with K-fold CV.

Reproduces the paper's headline table: per-class precision/recall/F1 and
overall accuracy for three traditional ML baselines and six transformers,
averaged over (stratified) K folds.  The reduced protocol (3 folds,
shorter fine-tuning) keeps wall-clock reasonable on a numpy substrate;
``REPRO_FULL=1`` selects the paper's 10-fold protocol.

The traditional baselines run on sparse (CSR) TF-IDF features, and
``run_table4(jobs=N)`` evaluates their cross-validation folds
concurrently (each fold owns its vectoriser and model, so folds are
independent).  Transformer folds stay serial within one process: the
autograd layer keeps per-process global state (``no_grad``), which is
process-safe but not thread-safe — cross-experiment parallelism for the
heavy runs comes from ``holistix-experiments --jobs``, which uses worker
processes.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.core.dataset import HolistixDataset
from repro.core.labels import DIMENSIONS, WellnessDimension
from repro.engine.registry import (
    create_traditional_model,
    get_spec,
    traditional_baselines,
    transformer_baselines,
)
from repro.experiments.paper_reference import (
    PAPER_TABLE4,
    PAPER_TABLE4_ACCURACY,
)
from repro.experiments.protocol import Protocol, current_protocol
from repro.experiments.reporting import render_table
from repro.ml.metrics import ClassificationReport, classification_report
from repro.text.tfidf import TfidfVectorizer
from repro.text.vocab import Vocabulary

__all__ = [
    "BaselineScores",
    "Table4Result",
    "run_table4",
    "format_table4",
    "TRADITIONAL_NAMES",
    "TRANSFORMER_NAMES",
]

# Resolved from the unified registry — the single source of baseline names.
TRADITIONAL_NAMES: tuple[str, ...] = traditional_baselines()
TRANSFORMER_NAMES: tuple[str, ...] = transformer_baselines()


@dataclass
class BaselineScores:
    """Fold-averaged per-class P/R/F and accuracy for one baseline."""

    name: str
    per_class: dict[WellnessDimension, tuple[float, float, float]]
    accuracy: float
    fold_accuracies: list[float] = field(default_factory=list)


@dataclass
class Table4Result:
    """Every baseline's scores plus the protocol that produced them."""

    scores: dict[str, BaselineScores]
    protocol_name: str
    n_folds: int

    def accuracy_of(self, name: str) -> float:
        return self.scores[name].accuracy


def _average_reports(
    reports: Sequence[ClassificationReport],
) -> tuple[dict[WellnessDimension, tuple[float, float, float]], float]:
    per_class: dict[WellnessDimension, tuple[float, float, float]] = {}
    for dim in DIMENSIONS:
        precisions = [r.per_class[dim].precision for r in reports]
        recalls = [r.per_class[dim].recall for r in reports]
        f1s = [r.per_class[dim].f1 for r in reports]
        per_class[dim] = (
            float(np.mean(precisions)),
            float(np.mean(recalls)),
            float(np.mean(f1s)),
        )
    return per_class, float(np.mean([r.accuracy for r in reports]))


def _evaluate_traditional(
    name: str,
    dataset: HolistixDataset,
    folds: Sequence[tuple[list[int], list[int]]],
    seed: int,
    jobs: int = 1,
) -> BaselineScores:
    texts = dataset.texts
    labels = dataset.labels
    max_features = get_spec(name).max_features

    def one_fold(fold: tuple[list[int], list[int]]) -> ClassificationReport:
        train_idx, eval_idx = fold
        vectorizer = TfidfVectorizer(max_features=max_features, sparse_output=True)
        train_matrix = vectorizer.fit_transform([texts[i] for i in train_idx])
        eval_matrix = vectorizer.transform([texts[i] for i in eval_idx])
        targets = np.asarray(
            [DIMENSIONS.index(labels[i]) for i in train_idx], dtype=np.int64
        )
        model = create_traditional_model(name, seed=seed)
        model.fit(train_matrix, targets)
        predicted = [DIMENSIONS[int(i)] for i in model.predict(eval_matrix)]
        gold = [labels[i] for i in eval_idx]
        return classification_report(gold, predicted, list(DIMENSIONS))

    if jobs > 1 and len(folds) > 1:
        # Each fold owns its vectoriser and model, so folds can run on a
        # thread pool; map() keeps report order identical to serial.
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=min(jobs, len(folds))
        ) as pool:
            reports = list(pool.map(one_fold, folds))
    else:
        reports = [one_fold(fold) for fold in folds]
    per_class, accuracy = _average_reports(reports)
    return BaselineScores(
        name=name,
        per_class=per_class,
        accuracy=accuracy,
        fold_accuracies=[r.accuracy for r in reports],
    )


def _evaluate_transformer(
    name: str,
    dataset: HolistixDataset,
    folds: Sequence[tuple[list[int], list[int]]],
    protocol: Protocol,
    vocab: Vocabulary,
) -> BaselineScores:
    from repro.models.trainer import Trainer

    texts = dataset.texts
    labels = dataset.labels
    config = protocol.model_config(name)
    reports: list[ClassificationReport] = []
    for train_idx, eval_idx in folds:
        trainer = Trainer(config, vocab)
        trainer.fit(
            [texts[i] for i in train_idx], [labels[i] for i in train_idx]
        )
        predicted = trainer.predict([texts[i] for i in eval_idx])
        gold = [labels[i] for i in eval_idx]
        reports.append(classification_report(gold, predicted, list(DIMENSIONS)))
    per_class, accuracy = _average_reports(reports)
    return BaselineScores(
        name=name,
        per_class=per_class,
        accuracy=accuracy,
        fold_accuracies=[r.accuracy for r in reports],
    )


def run_table4(
    dataset: HolistixDataset | None = None,
    *,
    protocol: Protocol | None = None,
    baselines: Sequence[str] | None = None,
    jobs: int = 1,
) -> Table4Result:
    """Run the Table IV comparison.

    ``baselines`` restricts the run (e.g. traditional only for a quick
    look); the default runs all nine.  ``jobs`` parallelises the
    cross-validation folds of the traditional baselines (results are
    identical to a serial run; see the module docstring for why
    transformer folds stay serial).
    """
    from repro.models.pretrain import build_pretraining_corpus

    dataset = dataset or HolistixDataset.build()
    protocol = protocol or current_protocol()
    names = tuple(baselines or TRADITIONAL_NAMES + TRANSFORMER_NAMES)
    folds = dataset.stratified_folds(protocol.n_folds, seed=protocol.seed)

    vocab: Vocabulary | None = None
    if any(n in TRANSFORMER_NAMES for n in names):
        corpus = build_pretraining_corpus("mental_health", seed=101)
        vocab = Vocabulary.build(corpus + dataset.texts, max_size=2500)

    scores: dict[str, BaselineScores] = {}
    for name in names:
        if name in TRADITIONAL_NAMES:
            scores[name] = _evaluate_traditional(
                name, dataset, folds, protocol.seed, jobs
            )
        elif name in TRANSFORMER_NAMES:
            assert vocab is not None
            scores[name] = _evaluate_transformer(
                name, dataset, folds, protocol, vocab
            )
        else:
            raise ValueError(f"unknown baseline {name!r}")
    return Table4Result(
        scores=scores, protocol_name=protocol.name, n_folds=protocol.n_folds
    )


def format_table4(result: Table4Result) -> str:
    headers = ["Method"]
    for dim in DIMENSIONS:
        headers += [f"{dim.code}-P", f"{dim.code}-R", f"{dim.code}-F"]
    headers.append("Acc")
    rows = []
    for name, scores in result.scores.items():
        row: list[object] = [name]
        for dim in DIMENSIONS:
            precision, recall, f1 = scores.per_class[dim]
            row += [f"{precision:.2f}", f"{recall:.2f}", f"{f1:.2f}"]
        row.append(f"{scores.accuracy:.2f}")
        rows.append(row)
        paper_row: list[object] = ["  (paper)"]
        for dim in DIMENSIONS:
            precision, recall, f1 = PAPER_TABLE4[name][dim]
            paper_row += [f"{precision:.2f}", f"{recall:.2f}", f"{f1:.2f}"]
        paper_row.append(f"{PAPER_TABLE4_ACCURACY[name]:.2f}")
        rows.append(paper_row)
    return render_table(
        headers,
        rows,
        title=(
            "Table IV — Baseline comparison "
            f"({result.n_folds}-fold, protocol={result.protocol_name})"
        ),
    )
