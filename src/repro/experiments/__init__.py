"""Experiment harness: one module per paper table/figure (E1-E8)."""

from repro.experiments.protocol import FULL, REDUCED, Protocol, current_protocol
from repro.experiments.runner import EXPERIMENTS, ExperimentSpec, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "FULL",
    "Protocol",
    "REDUCED",
    "current_protocol",
    "run_experiment",
]
