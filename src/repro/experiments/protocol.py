"""Experiment protocol: full (paper) vs reduced (CI-friendly) settings.

The paper's evaluation protocol — 10-fold cross-validation of nine
baselines including six transformers — takes tens of minutes on a numpy
substrate.  The benchmark suite therefore defaults to a *reduced*
protocol (fewer folds, shorter fine-tuning) that preserves every
comparison, and switches to the full protocol when the environment
variable ``REPRO_FULL=1`` is set.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.models.config import MODEL_CONFIGS, ModelConfig

__all__ = ["Protocol", "current_protocol", "FULL", "REDUCED"]


@dataclass(frozen=True)
class Protocol:
    """Evaluation sizing knobs."""

    name: str
    n_folds: int
    transformer_epochs: int | None  # None = each model's configured epochs
    pretrain_steps_scale: float
    lime_posts: int
    lime_samples: int
    seed: int = 7

    def model_config(self, name: str) -> ModelConfig:
        """The baseline's config adjusted to this protocol."""
        config = MODEL_CONFIGS[name]
        updates: dict[str, object] = {}
        if self.transformer_epochs is not None:
            updates["epochs"] = self.transformer_epochs
        if self.pretrain_steps_scale != 1.0:
            updates["pretrain_steps"] = max(
                1, int(config.pretrain_steps * self.pretrain_steps_scale)
            )
        return replace(config, **updates) if updates else config


FULL = Protocol(
    name="full",
    n_folds=10,
    transformer_epochs=None,
    pretrain_steps_scale=1.0,
    lime_posts=50,
    lime_samples=300,
)

REDUCED = Protocol(
    name="reduced",
    n_folds=3,
    transformer_epochs=4,
    pretrain_steps_scale=0.5,
    lime_posts=15,
    lime_samples=150,
)


def current_protocol() -> Protocol:
    """REDUCED unless ``REPRO_FULL=1`` is exported."""
    return FULL if os.environ.get("REPRO_FULL") == "1" else REDUCED
