"""Experiment E4 — Table V: LIME explainability of the top models.

The paper explains the best traditional model (LR) and the best
transformer (MentalBERT) with LIME, then scores the LIME keywords against
the gold explanation spans with F1/precision/recall/ROUGE/BLEU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dataset import HolistixDataset
from repro.core.pipeline import WellnessClassifier
from repro.experiments.paper_reference import PAPER_TABLE5
from repro.experiments.protocol import Protocol, current_protocol
from repro.experiments.reporting import render_table
from repro.explain.lime import LimeTextExplainer
from repro.explain.similarity import SpanSimilarity, score_explanations

__all__ = ["Table5Result", "run_table5", "format_table5"]


@dataclass(frozen=True)
class Table5Result:
    """LIME-vs-gold-span similarity for the two top models."""

    scores: dict[str, SpanSimilarity]
    n_posts: int


def run_table5(
    dataset: HolistixDataset | None = None,
    *,
    protocol: Protocol | None = None,
    classifiers: dict[str, WellnessClassifier] | None = None,
) -> Table5Result:
    """Explain test posts with LIME for LR and MentalBERT and score them.

    Pre-fitted ``classifiers`` (keyed "LR"/"MentalBERT") can be supplied
    to avoid retraining — the Table IV bench reuses its models that way.
    """
    dataset = dataset or HolistixDataset.build()
    protocol = protocol or current_protocol()
    split = dataset.fixed_split()

    if classifiers is None:
        classifiers = {
            name: WellnessClassifier(name).fit(split.train)
            for name in ("LR", "MentalBERT")
        }

    test = split.test
    n_posts = min(protocol.lime_posts, len(test))
    scores: dict[str, SpanSimilarity] = {}
    for name, classifier in classifiers.items():
        explainer = LimeTextExplainer(
            classifier.predict_proba,
            n_samples=protocol.lime_samples,
            seed=protocol.seed,
        )
        explanations = [explainer.explain(test[i].text) for i in range(n_posts)]
        gold = [test[i].span_text for i in range(n_posts)]
        scores[name] = score_explanations(explanations, gold)
    return Table5Result(scores=scores, n_posts=n_posts)


def format_table5(result: Table5Result) -> str:
    rows = []
    for name, sim in result.scores.items():
        rows.append(
            [
                name,
                f"{sim.f1:.4f}",
                f"{sim.precision:.4f}",
                f"{sim.recall:.4f}",
                f"{sim.rouge:.4f}",
                f"{sim.bleu:.4f}",
            ]
        )
        if name in PAPER_TABLE5:
            paper = PAPER_TABLE5[name]
            rows.append(
                [
                    "  (paper)",
                    f"{paper['f1']:.4f}",
                    f"{paper['precision']:.4f}",
                    f"{paper['recall']:.4f}",
                    f"{paper['rouge']:.4f}",
                    f"{paper['bleu']:.4f}",
                ]
            )
    return render_table(
        ["Method", "F1-score", "Precision", "Recall", "ROUGE", "BLEU"],
        rows,
        title=f"Table V — LIME explainability over {result.n_posts} test posts",
    )
