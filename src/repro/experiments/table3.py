"""Experiment E2 — Table III: frequent words in explanation spans."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dataset import HolistixDataset
from repro.core.labels import DIMENSIONS, WellnessDimension
from repro.experiments.paper_reference import PAPER_TABLE3
from repro.experiments.reporting import render_table

__all__ = ["Table3Result", "run_table3", "format_table3"]


@dataclass(frozen=True)
class Table3Result:
    """Measured frequent-word profiles plus overlap with the paper's."""

    profiles: dict[WellnessDimension, list[tuple[str, int]]]

    def overlap(self, dimension: WellnessDimension) -> tuple[int, int]:
        """(shared words, paper words) for one dimension's profile."""
        paper_words = {w for w, _ in PAPER_TABLE3[dimension]}
        measured = {w for w, _ in self.profiles[dimension]}
        return len(paper_words & measured), len(paper_words)

    def total_overlap(self) -> tuple[int, int]:
        shared = total = 0
        for dim in DIMENSIONS:
            s, t = self.overlap(dim)
            shared += s
            total += t
        return shared, total


def run_table3(
    dataset: HolistixDataset | None = None, *, top_k: int = 8
) -> Table3Result:
    """Frequent span words per dimension over the (default) build.

    ``top_k`` of 8 gives the paper's 6-7 words per row one slot of slack.
    """
    dataset = dataset or HolistixDataset.build()
    return Table3Result(profiles=dataset.frequent_span_words(top_k=top_k))


def format_table3(result: Table3Result) -> str:
    rows = []
    for dim in DIMENSIONS:
        measured = ", ".join(f"{w}({c})" for w, c in result.profiles[dim])
        paper = ", ".join(f"{w}({c})" for w, c in PAPER_TABLE3[dim])
        shared, total = result.overlap(dim)
        rows.append([dim.code, measured, paper, f"{shared}/{total}"])
    return render_table(
        ["Dimension", "Measured frequent words", "Paper frequent words", "Overlap"],
        rows,
        title="Table III — Frequent words in explanatory spans",
    )
