"""Experiment E7 — Fig. 2: the data annotation framework.

The paper's Fig. 2 is the pipeline diagram: forum scraping, cleaning,
guideline-driven annotation by two annotators, agreement measurement and
expert adjudication.  This experiment *runs* every stage over the
simulated forum and reports the funnel counts and agreement, reproducing
the figure as an executed process rather than a picture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.annotation.guidelines import ANNOTATION_GUIDELINES, PERPLEXITY_RULES
from repro.annotation.task import AnnotationTask, SimulatedAnnotator
from repro.core.dataset import HolistixDataset
from repro.corpus.forum import SimulatedForum
from repro.corpus.preprocess import FunnelReport, preprocess
from repro.corpus.scraper import scrape_forum
from repro.experiments.reporting import render_table

__all__ = ["Figure2Result", "run_figure2", "format_figure2"]


@dataclass(frozen=True)
class Figure2Result:
    """Every stage of the annotation framework, executed."""

    funnel: FunnelReport
    n_guidelines: int
    n_perplexity_rules: int
    kappa_percent: float
    n_adjudicated: int
    clean_matches_gold: bool


def run_figure2(dataset: HolistixDataset | None = None, *, seed: int = 7) -> Figure2Result:
    """Scrape → clean → annotate → agree → adjudicate, end to end."""
    dataset = dataset or HolistixDataset.build()
    gold = list(dataset)

    forum = SimulatedForum.populate(gold, seed=seed)
    scraped = scrape_forum(forum)
    clean, funnel = preprocess(scraped)
    clean_matches_gold = {p.text for p in clean} == {g.text for g in gold}

    task = AnnotationTask(
        annotators=(
            SimulatedAnnotator("annotator-A", seed=seed * 1001 + 1),
            SimulatedAnnotator("annotator-B", seed=seed * 1001 + 2),
        )
    )
    ann_a, ann_b, report = task.run(gold, seed=seed)
    final = task.adjudicate(gold, ann_a, ann_b)
    n_adjudicated = sum(
        a.label != b.label for a, b in zip(ann_a, ann_b)
    )
    assert len(final) == len(gold)

    return Figure2Result(
        funnel=funnel,
        n_guidelines=len(ANNOTATION_GUIDELINES),
        n_perplexity_rules=len(PERPLEXITY_RULES),
        kappa_percent=report.kappa_percent,
        n_adjudicated=n_adjudicated,
        clean_matches_gold=clean_matches_gold,
    )


def format_figure2(result: Figure2Result) -> str:
    funnel_rows = [[stage, count] for stage, count in result.funnel.stages()]
    funnel_table = render_table(
        ["Stage", "Posts"],
        funnel_rows,
        title="Fig. 2 — Data annotation framework (executed)",
    )
    lines = [
        funnel_table,
        "",
        f"Annotation guidelines applied : {result.n_guidelines}",
        f"Perplexity rules applied      : {result.n_perplexity_rules}",
        f"Fleiss' kappa                 : {result.kappa_percent:.2f}% (paper 75.92%)",
        f"Disagreements adjudicated     : {result.n_adjudicated}",
        f"Clean posts match gold corpus : {result.clean_matches_gold}",
    ]
    return "\n".join(lines)
