"""Experiment E8 — ablations behind the paper's observations.

Two design claims underpin Table IV's story:

* **Domain pretraining wins** (§III-B: "MentalBERT is the top choice").
  Ablate pretraining: none → generic MLM → domain MLM, same
  architecture, and watch accuracy climb.
* **Emotional posts are hard because their vocabulary overlaps** (§IV).
  Ablate the corpus's lexical-overlap machinery: turn off balanced and
  generic posts (all-clear corpus) and EA's F1 recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.dataset import HolistixDataset
from repro.core.labels import WellnessDimension
from repro.corpus.generator import GeneratorConfig
from repro.corpus.hardness import HARDNESS, TypeMixture
from repro.experiments.protocol import Protocol, current_protocol
from repro.experiments.reporting import render_table
from repro.ml.metrics import classification_report
from repro.core.labels import DIMENSIONS

__all__ = [
    "PretrainingAblation",
    "HardnessAblation",
    "run_pretraining_ablation",
    "run_hardness_ablation",
    "format_pretraining_ablation",
    "format_hardness_ablation",
]


@dataclass(frozen=True)
class PretrainingAblation:
    """Accuracy of the same architecture under three pretraining recipes."""

    no_pretrain: float
    generic_mlm: float
    domain_mlm: float

    def ordering_holds(self) -> bool:
        """Domain pretraining should not lose to no pretraining."""
        return self.domain_mlm >= self.no_pretrain


def run_pretraining_ablation(
    dataset: HolistixDataset | None = None,
    *,
    protocol: Protocol | None = None,
) -> PretrainingAblation:
    """Train BERT-architecture models with 0 / generic / domain MLM."""
    from repro.models.pretrain import build_pretraining_corpus
    from repro.models.trainer import Trainer
    from repro.text.vocab import Vocabulary

    dataset = dataset or HolistixDataset.build()
    protocol = protocol or current_protocol()
    split = dataset.fixed_split()
    corpus = build_pretraining_corpus("mental_health", seed=101)
    vocab = Vocabulary.build(corpus + split.train.texts, max_size=2500)

    base = protocol.model_config("MentalBERT")
    variants = {
        "no_pretrain": replace(base, pretrain_objective=None, pretrain_steps=0),
        "generic_mlm": replace(base, pretrain_domain="mixed"),
        "domain_mlm": base,
    }
    accuracies: dict[str, float] = {}
    for key, config in variants.items():
        trainer = Trainer(config, vocab)
        trainer.fit(split.train.texts, split.train.labels)
        accuracies[key] = trainer.score(split.test.texts, split.test.labels)
    return PretrainingAblation(
        no_pretrain=accuracies["no_pretrain"],
        generic_mlm=accuracies["generic_mlm"],
        domain_mlm=accuracies["domain_mlm"],
    )


@dataclass(frozen=True)
class HardnessAblation:
    """EA F1 with and without the lexical-overlap machinery."""

    ea_f1_full_corpus: float
    ea_f1_all_clear: float
    accuracy_full_corpus: float
    accuracy_all_clear: float

    def overlap_explains_ea(self) -> bool:
        """EA should become dramatically easier on the all-clear corpus."""
        return self.ea_f1_all_clear > self.ea_f1_full_corpus


def _lr_report(dataset: HolistixDataset):
    import numpy as np

    from repro.ml.logistic import LogisticRegression
    from repro.text.tfidf import TfidfVectorizer

    split = dataset.fixed_split(
        train=int(len(dataset) * 0.7),
        validation=int(len(dataset) * 0.15),
        test=len(dataset)
        - int(len(dataset) * 0.7)
        - int(len(dataset) * 0.15),
    )
    vectorizer = TfidfVectorizer(max_features=3000, sparse_output=True)
    train_matrix = vectorizer.fit_transform(split.train.texts)
    test_matrix = vectorizer.transform(split.test.texts)
    targets = np.asarray(
        [DIMENSIONS.index(label) for label in split.train.labels]
    )
    model = LogisticRegression(max_iter=300).fit(train_matrix, targets)
    predicted = [DIMENSIONS[int(i)] for i in model.predict(test_matrix)]
    return classification_report(split.test.labels, predicted, list(DIMENSIONS))


def run_hardness_ablation(seed: int = 7) -> HardnessAblation:
    """Compare LR on the full corpus vs an all-clear corpus."""
    full = HolistixDataset.build(GeneratorConfig(seed=seed))
    all_clear = HolistixDataset.build(
        GeneratorConfig(
            seed=seed,
            hardness={
                dim: TypeMixture(clear=1.0, balanced=0.0, generic=0.0)
                for dim in HARDNESS
            },
            label_noise=0.0,
            target_total_words=None,
            target_total_sentences=None,
        )
    )
    ea = WellnessDimension.EMOTIONAL
    full_report = _lr_report(full)
    clear_report = _lr_report(all_clear)
    return HardnessAblation(
        ea_f1_full_corpus=full_report.per_class[ea].f1,
        ea_f1_all_clear=clear_report.per_class[ea].f1,
        accuracy_full_corpus=full_report.accuracy,
        accuracy_all_clear=clear_report.accuracy,
    )


def format_pretraining_ablation(result: PretrainingAblation) -> str:
    rows = [
        ["no pretraining", f"{result.no_pretrain:.3f}"],
        ["generic MLM (mixed corpus)", f"{result.generic_mlm:.3f}"],
        ["domain MLM (mental-health corpus)", f"{result.domain_mlm:.3f}"],
    ]
    return render_table(
        ["Pretraining recipe", "Test accuracy"],
        rows,
        title="Ablation — why MentalBERT wins (same architecture)",
    )


def format_hardness_ablation(result: HardnessAblation) -> str:
    rows = [
        [
            "full corpus (balanced+generic posts)",
            f"{result.ea_f1_full_corpus:.3f}",
            f"{result.accuracy_full_corpus:.3f}",
        ],
        [
            "all-clear corpus (overlap removed)",
            f"{result.ea_f1_all_clear:.3f}",
            f"{result.accuracy_all_clear:.3f}",
        ],
    ]
    return render_table(
        ["Corpus", "EA F1 (LR)", "Accuracy (LR)"],
        rows,
        title="Ablation — lexical overlap is what makes EA hard (§IV)",
    )
