"""Experiment E6 — Fig. 1: problem-formulation overview.

The paper's Fig. 1 shows a user narrative with its wellness dimensions
identified and the explanatory span highlighted.  This experiment rebuilds
the figure as text: a trained classifier labels a sample narrative, the
perplexity engine lists candidate dimensions, and the gold/LIME spans are
marked inline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.annotation.perplexity import detect_dimensions
from repro.core.dataset import HolistixDataset
from repro.core.labels import WellnessDimension
from repro.core.pipeline import WellnessClassifier

__all__ = ["Figure1Result", "run_figure1", "format_figure1"]


@dataclass(frozen=True)
class Figure1Result:
    """One worked example of the task formulation."""

    text: str
    gold_label: WellnessDimension
    gold_span: str
    predicted_label: WellnessDimension
    candidate_dimensions: tuple[tuple[str, float], ...]
    explanation_keywords: tuple[str, ...]


def run_figure1(
    dataset: HolistixDataset | None = None,
    *,
    classifier: WellnessClassifier | None = None,
    example_index: int | None = None,
) -> Figure1Result:
    """Classify and explain one narrative end to end.

    Defaults pick the first multi-dimension test post (the interesting
    Fig. 1 case) and a fast LR classifier.
    """
    dataset = dataset or HolistixDataset.build()
    if len(dataset) >= 1415:
        split = dataset.fixed_split()
    else:  # small corpora (tests): proportional split
        n_train = int(len(dataset) * 0.7)
        n_val = int(len(dataset) * 0.15)
        split = dataset.fixed_split(
            train=n_train, validation=n_val, test=len(dataset) - n_train - n_val
        )
    if classifier is None:
        classifier = WellnessClassifier("LR").fit(split.train)
    test = split.test
    if example_index is None:
        example_index = next(
            (
                i
                for i in range(len(test))
                if test[i].metadata.get("secondary_dims")
            ),
            0,
        )
    instance = test[example_index]
    predicted = classifier.predict([instance.text])[0]
    evidence = detect_dimensions(instance.text)
    explanation = classifier.explain(instance.text, n_samples=150)
    return Figure1Result(
        text=instance.text,
        gold_label=instance.label,
        gold_span=instance.span_text,
        predicted_label=predicted,
        candidate_dimensions=tuple(
            (e.dimension.code, round(e.score, 2)) for e in evidence
        ),
        explanation_keywords=tuple(explanation.top_words(5)),
    )


def format_figure1(result: Figure1Result) -> str:
    highlighted = result.text.replace(result.gold_span, f"[{result.gold_span}]")
    lines = [
        "Fig. 1 — Identifying wellness dimensions in a user post",
        "",
        f"Post (gold span in brackets): {highlighted}",
        "",
        f"Gold dimension      : {result.gold_label.code}",
        f"Predicted dimension : {result.predicted_label.code}",
        "Candidate dimensions: "
        + ", ".join(f"{code} ({score})" for code, score in result.candidate_dimensions),
        f"LIME keywords       : {', '.join(result.explanation_keywords)}",
    ]
    return "\n".join(lines)
