"""Experiment E5 — §II-E inter-annotator agreement (Fleiss' kappa)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.annotation.task import AgreementReport, run_annotation_study
from repro.core.dataset import HolistixDataset
from repro.experiments.paper_reference import PAPER_KAPPA_PERCENT
from repro.experiments.reporting import render_table

__all__ = ["KappaResult", "run_kappa", "format_kappa"]


@dataclass(frozen=True)
class KappaResult:
    """Agreement study outcome next to the published kappa."""

    report: AgreementReport

    @property
    def within_points(self) -> float:
        """Absolute distance from the paper's 75.92."""
        return abs(self.report.kappa_percent - PAPER_KAPPA_PERCENT)


def run_kappa(dataset: HolistixDataset | None = None, *, seed: int = 7) -> KappaResult:
    """Run the two-annotator study over the (default) Holistix build."""
    dataset = dataset or HolistixDataset.build()
    return KappaResult(report=run_annotation_study(list(dataset), seed=seed))


def format_kappa(result: KappaResult) -> str:
    report = result.report
    rows = [
        ["Fleiss' kappa (%)", f"{report.kappa_percent:.2f}", f"{PAPER_KAPPA_PERCENT:.2f}"],
        ["Raw agreement", f"{report.raw_agreement:.3f}", "-"],
        ["Items", report.n_items, 1420],
        ["Disagreements", report.n_disagreements, "-"],
    ]
    table = render_table(
        ["Measure", "Measured", "Paper"],
        rows,
        title="Inter-annotator agreement (two simulated annotators)",
    )
    confusions = ", ".join(f"{pair}:{n}" for pair, n in report.top_confusions())
    return f"{table}\nTop disagreement pairs: {confusions}"
