"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_float", "side_by_side"]


def format_float(value: float, digits: int = 2) -> str:
    """Fixed-precision float without a leading zero surprise."""
    return f"{value:.{digits}f}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ---
    1  2.5
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line.rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def side_by_side(measured: float, paper: float, digits: int = 2) -> str:
    """``measured (paper X)`` cell used throughout experiment output."""
    return f"{measured:.{digits}f} ({paper:.{digits}f})"
