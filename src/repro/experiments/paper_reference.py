"""The paper's published numbers, encoded once.

Every experiment prints its measured values next to these references, and
the benchmark suite asserts *shape* against them (orderings and rough
factors, never exact equality — our substrate is a synthetic corpus, not
the authors' scraped data).
"""

from __future__ import annotations

from repro.core.labels import WellnessDimension

__all__ = [
    "PAPER_TABLE2",
    "PAPER_CLASS_PERCENTAGES",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE4_ACCURACY",
    "PAPER_TABLE5",
    "PAPER_KAPPA_PERCENT",
    "PAPER_SPLIT",
]

_IA = WellnessDimension.INTELLECTUAL
_VA = WellnessDimension.VOCATIONAL
_SpiA = WellnessDimension.SPIRITUAL
_PA = WellnessDimension.PHYSICAL
_SA = WellnessDimension.SOCIAL
_EA = WellnessDimension.EMOTIONAL

# Table II.
PAPER_TABLE2 = {
    "total_posts": 1420,
    "total_words": 37082,
    "max_words_per_post": 115,
    "total_sentences": 2271,
    "max_sentences_per_post": 9,
    "dimension_counts": {_IA: 155, _VA: 150, _SpiA: 190, _PA: 296, _SA: 406, _EA: 223},
}

# §II-C distribution.
PAPER_CLASS_PERCENTAGES = {
    _IA: 10.91,
    _VA: 10.56,
    _SpiA: 13.38,
    _PA: 20.84,
    _SA: 28.59,
    _EA: 15.70,
}

# Table III: frequent words (with the published average counts).
PAPER_TABLE3: dict[WellnessDimension, tuple[tuple[str, int], ...]] = {
    _IA: (
        ("future", 10), ("feel", 9), ("hard", 9), ("thoughts", 7),
        ("lack", 7), ("think", 6), ("struggling", 5),
    ),
    _VA: (
        ("job", 45), ("work", 43), ("money", 8), ("career", 7),
        ("financial", 7), ("struggling", 6), ("unemployed", 6),
    ),
    _SpiA: (
        ("feel", 40), ("life", 31), ("thoughts", 9), ("suicide", 8),
        ("struggling", 7), ("feeling", 6),
    ),
    _SA: (
        ("me", 48), ("people", 35), ("feel", 43), ("talk", 21),
        ("alone", 18), ("friends", 17), ("relationship", 17),
    ),
    _PA: (
        ("anxiety", 42), ("sleep", 30), ("depression", 28), ("disorder", 17),
        ("diagnosed", 14), ("bad", 11),
    ),
    _EA: (
        ("feel", 41), ("anxiety", 23), ("feeling", 18), ("me", 9),
        ("sad", 8), ("crying", 7), ("hard", 7),
    ),
}

# Table IV: per-class (precision, recall, F1) per baseline.
PAPER_TABLE4: dict[str, dict[WellnessDimension, tuple[float, float, float]]] = {
    "LR": {
        _IA: (0.71, 0.15, 0.25), _VA: (0.89, 0.53, 0.67),
        _SpiA: (0.31, 0.26, 0.29), _PA: (0.64, 0.75, 0.69),
        _SA: (0.50, 0.76, 0.60), _EA: (0.23, 0.17, 0.21),
    },
    "Linear SVM": {
        _IA: (0.40, 0.24, 0.30), _VA: (0.73, 0.59, 0.66),
        _SpiA: (0.32, 0.32, 0.32), _PA: (0.67, 0.73, 0.70),
        _SA: (0.51, 0.65, 0.57), _EA: (0.20, 0.15, 0.17),
    },
    "Gaussian NB": {
        _IA: (0.24, 0.24, 0.24), _VA: (0.21, 0.25, 0.23),
        _SpiA: (0.22, 0.50, 0.30), _PA: (0.64, 0.39, 0.48),
        _SA: (0.56, 0.39, 0.38), _EA: (0.18, 0.23, 0.20),
    },
    "BERT": {
        _IA: (0.41, 0.47, 0.44), _VA: (0.77, 0.87, 0.82),
        _SpiA: (0.38, 0.48, 0.43), _PA: (0.73, 0.74, 0.74),
        _SA: (0.83, 0.78, 0.81), _EA: (0.48, 0.33, 0.39),
    },
    "DistilBERT": {
        _IA: (0.57, 0.63, 0.60), _VA: (0.70, 0.91, 0.79),
        _SpiA: (0.46, 0.67, 0.55), _PA: (0.79, 0.72, 0.76),
        _SA: (0.79, 0.84, 0.82), _EA: (0.75, 0.27, 0.40),
    },
    "MentalBERT": {
        _IA: (0.70, 0.74, 0.72), _VA: (0.84, 0.91, 0.87),
        _SpiA: (0.63, 0.44, 0.52), _PA: (0.75, 0.85, 0.80),
        _SA: (0.77, 0.91, 0.83), _EA: (0.62, 0.39, 0.48),
    },
    "Flan-T5": {
        _IA: (0.70, 0.37, 0.48), _VA: (0.69, 0.87, 0.77),
        _SpiA: (0.42, 0.48, 0.45), _PA: (0.75, 0.70, 0.73),
        _SA: (0.73, 0.84, 0.78), _EA: (0.44, 0.33, 0.38),
    },
    "XLNet": {
        _IA: (0.52, 0.79, 0.62), _VA: (0.79, 0.83, 0.81),
        _SpiA: (0.48, 0.44, 0.46), _PA: (0.75, 0.70, 0.73),
        _SA: (0.82, 0.66, 0.73), _EA: (0.33, 0.39, 0.36),
    },
    "GPT-2.0": {
        _IA: (0.60, 0.47, 0.53), _VA: (0.69, 0.78, 0.73),
        _SpiA: (0.41, 0.48, 0.44), _PA: (0.87, 0.70, 0.78),
        _SA: (0.67, 0.94, 0.78), _EA: (0.67, 0.24, 0.36),
    },
}

PAPER_TABLE4_ACCURACY: dict[str, float] = {
    "LR": 0.52,
    "Linear SVM": 0.50,
    "Gaussian NB": 0.32,
    "BERT": 0.65,
    "DistilBERT": 0.69,
    "MentalBERT": 0.74,
    "Flan-T5": 0.65,
    "XLNet": 0.63,
    "GPT-2.0": 0.66,
}

# Table V: LIME explanation similarity vs gold spans.
PAPER_TABLE5: dict[str, dict[str, float]] = {
    "LR": {
        "f1": 0.4221, "precision": 0.314, "recall": 0.6976,
        "rouge": 0.3645, "bleu": 0.1349,
    },
    "MentalBERT": {
        "f1": 0.4471, "precision": 0.4901, "recall": 0.7463,
        "rouge": 0.3833, "bleu": 0.1412,
    },
}

# §II-E inter-annotator agreement.
PAPER_KAPPA_PERCENT = 75.92

# §III fixed split sizes (sums to 1,415 of 1,420 — the paper's own quirk).
PAPER_SPLIT = {"train": 990, "validation": 212, "test": 213}
