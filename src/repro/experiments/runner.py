"""Experiment registry and command-line entry point.

``holistix-experiments list`` shows every experiment; ``holistix-
experiments run E1 E5`` (or ``all``) executes them and prints the
paper-vs-measured comparisons.  The heavy experiments respect the
``REPRO_FULL`` protocol switch.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from collections.abc import Callable

__all__ = ["EXPERIMENTS", "ExperimentSpec", "run_experiment", "main"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: id, description, runner."""

    experiment_id: str
    paper_artifact: str
    description: str
    run: Callable[[], str]


def _e1() -> str:
    from repro.experiments.table2 import format_table2, run_table2

    return format_table2(run_table2())


def _e2() -> str:
    from repro.experiments.table3 import format_table3, run_table3

    return format_table3(run_table3())


def _e3() -> str:
    from repro.experiments.table4 import format_table4, run_table4

    return format_table4(run_table4())


def _e4() -> str:
    from repro.experiments.table5 import format_table5, run_table5

    return format_table5(run_table5())


def _e5() -> str:
    from repro.experiments.kappa import format_kappa, run_kappa

    return format_kappa(run_kappa())


def _e6() -> str:
    from repro.experiments.figure1 import format_figure1, run_figure1

    return format_figure1(run_figure1())


def _e7() -> str:
    from repro.experiments.figure2 import format_figure2, run_figure2

    return format_figure2(run_figure2())


def _e8() -> str:
    from repro.experiments.ablation import (
        format_hardness_ablation,
        format_pretraining_ablation,
        run_hardness_ablation,
        run_pretraining_ablation,
    )

    return (
        format_pretraining_ablation(run_pretraining_ablation())
        + "\n\n"
        + format_hardness_ablation(run_hardness_ablation())
    )


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec("E1", "Table II", "Dataset statistics", _e1),
        ExperimentSpec("E2", "Table III", "Frequent words in spans", _e2),
        ExperimentSpec("E3", "Table IV", "Baseline comparison (K-fold)", _e3),
        ExperimentSpec("E4", "Table V", "LIME explainability", _e4),
        ExperimentSpec("E5", "kappa", "Inter-annotator agreement", _e5),
        ExperimentSpec("E6", "Fig. 1", "Problem formulation example", _e6),
        ExperimentSpec("E7", "Fig. 2", "Annotation framework funnel", _e7),
        ExperimentSpec("E8", "ablations", "Pretraining & hardness ablations", _e8),
    )
}


def run_experiment(experiment_id: str) -> str:
    """Execute one experiment by id and return its formatted report."""
    spec = EXPERIMENTS.get(experiment_id)
    if spec is None:
        valid = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {experiment_id!r}; expected {valid}")
    return spec.run()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="holistix-experiments",
        description="Reproduce the Holistix paper's tables and figures.",
    )
    parser.add_argument(
        "command", choices=["list", "run"], help="list experiments or run some"
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (E1..E8) or 'all'",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        for spec in EXPERIMENTS.values():
            print(f"{spec.experiment_id}: {spec.paper_artifact} — {spec.description}")
        return 0

    requested = args.experiments or ["all"]
    if requested == ["all"]:
        requested = list(EXPERIMENTS)
    for experiment_id in requested:
        started = time.time()
        print(f"=== {experiment_id} ===")
        print(run_experiment(experiment_id))
        print(f"[{experiment_id} took {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
