"""Experiment registry and command-line entry point.

``holistix-experiments list`` shows every experiment; ``holistix-
experiments run E1 E5`` (or ``all``) executes them and prints the
paper-vs-measured comparisons.  The heavy experiments respect the
``REPRO_FULL`` protocol switch.

Independent experiments can run concurrently: ``--jobs N`` executes up
to ``N`` experiments at once in worker processes (falling back to
threads where subprocesses are unavailable).  Reports are printed in
the requested order regardless of completion order, so parallel output
is byte-identical to serial output apart from the timing lines, and
every experiment reports its own wall-clock time.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import sys
import time
from dataclasses import dataclass
from collections.abc import Callable, Sequence

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "ExperimentResult",
    "run_experiment",
    "run_many",
    "main",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: id, description, runner."""

    experiment_id: str
    paper_artifact: str
    description: str
    run: Callable[[], str]


@dataclass(frozen=True)
class ExperimentResult:
    """A finished experiment: its report text and wall-clock seconds."""

    experiment_id: str
    report: str
    seconds: float


def _e1() -> str:
    from repro.experiments.table2 import format_table2, run_table2

    return format_table2(run_table2())


def _e2() -> str:
    from repro.experiments.table3 import format_table3, run_table3

    return format_table3(run_table3())


def _e3() -> str:
    from repro.experiments.table4 import format_table4, run_table4

    return format_table4(run_table4())


def _e4() -> str:
    from repro.experiments.table5 import format_table5, run_table5

    return format_table5(run_table5())


def _e5() -> str:
    from repro.experiments.kappa import format_kappa, run_kappa

    return format_kappa(run_kappa())


def _e6() -> str:
    from repro.experiments.figure1 import format_figure1, run_figure1

    return format_figure1(run_figure1())


def _e7() -> str:
    from repro.experiments.figure2 import format_figure2, run_figure2

    return format_figure2(run_figure2())


def _e8() -> str:
    from repro.experiments.ablation import (
        format_hardness_ablation,
        format_pretraining_ablation,
        run_hardness_ablation,
        run_pretraining_ablation,
    )

    return (
        format_pretraining_ablation(run_pretraining_ablation())
        + "\n\n"
        + format_hardness_ablation(run_hardness_ablation())
    )


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec("E1", "Table II", "Dataset statistics", _e1),
        ExperimentSpec("E2", "Table III", "Frequent words in spans", _e2),
        ExperimentSpec("E3", "Table IV", "Baseline comparison (K-fold)", _e3),
        ExperimentSpec("E4", "Table V", "LIME explainability", _e4),
        ExperimentSpec("E5", "kappa", "Inter-annotator agreement", _e5),
        ExperimentSpec("E6", "Fig. 1", "Problem formulation example", _e6),
        ExperimentSpec("E7", "Fig. 2", "Annotation framework funnel", _e7),
        ExperimentSpec("E8", "ablations", "Pretraining & hardness ablations", _e8),
    )
}


def run_experiment(experiment_id: str) -> str:
    """Execute one experiment by id and return its formatted report."""
    spec = EXPERIMENTS.get(experiment_id)
    if spec is None:
        valid = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {experiment_id!r}; expected {valid}")
    return spec.run()


def _timed_run(experiment_id: str) -> ExperimentResult:
    """Worker body: run one experiment and time it (picklable)."""
    started = time.perf_counter()
    report = run_experiment(experiment_id)
    return ExperimentResult(
        experiment_id, report, time.perf_counter() - started
    )


def run_many(
    experiment_ids: Sequence[str], *, jobs: int = 1
) -> list[ExperimentResult]:
    """Run several experiments, optionally concurrently.

    Parameters
    ----------
    experiment_ids:
        Ids to run (``E1`` .. ``E8``).  Unknown ids raise ``KeyError``
        before anything executes.
    jobs:
        Maximum experiments in flight at once.  ``1`` (the default) runs
        serially in-process; higher values use a process pool so the
        heavyweight experiments genuinely overlap, falling back to a
        thread pool when the platform cannot spawn subprocesses.

    Returns
    -------
    list[ExperimentResult]
        One result per requested id, **in the requested order** —
        independent of completion order, so results are reproducible
        under any ``jobs``.
    """
    for experiment_id in experiment_ids:
        if experiment_id not in EXPERIMENTS:
            valid = ", ".join(EXPERIMENTS)
            raise KeyError(
                f"unknown experiment {experiment_id!r}; expected {valid}"
            )
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if jobs == 1 or len(experiment_ids) <= 1:
        return [_timed_run(experiment_id) for experiment_id in experiment_ids]

    workers = min(jobs, len(experiment_ids))
    try:
        executor: concurrent.futures.Executor = (
            concurrent.futures.ProcessPoolExecutor(max_workers=workers)
        )
    except (OSError, NotImplementedError):  # pragma: no cover - platform quirk
        executor = concurrent.futures.ThreadPoolExecutor(max_workers=workers)
    try:
        with executor:
            futures = [
                executor.submit(_timed_run, experiment_id)
                for experiment_id in experiment_ids
            ]
            return [future.result() for future in futures]
    except concurrent.futures.process.BrokenProcessPool:
        # Subprocesses were killed under us (restricted sandbox); redo
        # the whole batch with threads rather than losing the run.
        with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_timed_run, experiment_id)
                for experiment_id in experiment_ids
            ]
            return [future.result() for future in futures]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="holistix-experiments",
        description="Reproduce the Holistix paper's tables and figures.",
    )
    parser.add_argument(
        "command", choices=["list", "run"], help="list experiments or run some"
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (E1..E8) or 'all'",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run up to N experiments concurrently (default: 1, serial)",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        for spec in EXPERIMENTS.values():
            print(f"{spec.experiment_id}: {spec.paper_artifact} — {spec.description}")
        return 0

    requested = args.experiments or ["all"]
    if requested == ["all"]:
        requested = list(EXPERIMENTS)
    started = time.perf_counter()
    results = run_many(requested, jobs=args.jobs)
    for result in results:
        print(f"=== {result.experiment_id} ===")
        print(result.report)
        print(f"[{result.experiment_id} took {result.seconds:.1f}s]\n")
    total = time.perf_counter() - started
    print(f"[{len(results)} experiments in {total:.1f}s with --jobs {args.jobs}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
