"""Runtime dispatch of a :class:`~repro.chaos.plan.FaultPlan`.

The :class:`FaultInjector` is the only piece of chaos machinery the
serving stack ever sees, and it is designed to cost nothing when idle:
servers hold ``self.chaos = None`` and guard every seam call with a
single attribute check, so an unarmed system runs the exact code it ran
before this package existed.

Arming stamps ``t0 = time.monotonic()`` and starts one daemon thread
that walks the plan's one-shot events in order, sleeping until each
``at_s`` and invoking whatever handler the server registered for that
kind (e.g. the process server registers ``worker_crash`` →
``os.kill(pid, SIGKILL)``).  Window events (stalls, slow batches,
gateway socket faults) are not dispatched — they are *evaluated* at the
seams: ``before_batch(worker)`` inside serve loops and
``http_response_fault()`` inside the gateway handler ask "is a window
active right now, for me?" against the armed clock.  Either way the
timing comes from the plan, never from runtime state, so identical
plans inject identical faults.

Everything the injector actually did is observable: ``fired_log()``
returns the one-shot dispatch log and ``applied_counts()`` the number
of times each seam fault was applied, both keyed for assertion in tests
and benchmark records.
"""

from __future__ import annotations

import logging
import threading
import time
from collections.abc import Callable

from repro.analysis.lockcheck import create_lock, require_held
from repro.chaos.plan import GATEWAY_KINDS, ONESHOT_KINDS, FaultEvent, FaultPlan

__all__ = ["FaultInjector"]

logger = logging.getLogger(__name__)


class FaultInjector:
    """Replays a fault plan against registered seams.  Thread-safe."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._handlers: dict[str, Callable[[FaultEvent], None]] = {}
        self._lock = create_lock("chaos.injector")
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._t0: float | None = None
        self._applied: dict[str, int] = {}
        self._fired: list[tuple[float, str, int | None]] = []
        # Remaining budget for count-capped window events, keyed by the
        # event's position in the plan (events are immutable).
        self._budgets: dict[int, int] = {
            i: event.count
            for i, event in enumerate(plan.events)
            if event.count > 0
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def register(self, kind: str, handler: Callable[[FaultEvent], None]) -> None:
        """Attach a handler for a one-shot fault kind (e.g. worker_crash)."""
        with self._lock:
            self._handlers[kind] = handler

    @property
    def armed(self) -> bool:
        return self._t0 is not None and not self._stop.is_set()

    def elapsed_s(self) -> float:
        """Seconds since arm; 0.0 when not armed."""
        t0 = self._t0
        return 0.0 if t0 is None else time.monotonic() - t0

    def arm(self) -> None:
        """Start the clock and the one-shot dispatch thread."""
        with self._lock:
            if self._t0 is not None:
                raise RuntimeError("injector already armed")
            self._stop.clear()
            self._t0 = time.monotonic()
            oneshots = [
                event
                for event in self.plan.events
                if event.kind in ONESHOT_KINDS
            ]
            if oneshots:
                self._thread = threading.Thread(
                    target=self._dispatch_loop,
                    args=(oneshots,),
                    name="chaos-dispatch",
                    daemon=True,
                )
                self._thread.start()

    def disarm(self) -> None:
        """Stop dispatching; pending one-shot events are abandoned."""
        self._stop.set()
        # Pop the thread under the lock (it is published under the lock
        # in arm()); join it outside — the dispatch loop takes the same
        # lock in _mark, so joining while holding it could deadlock.
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join(timeout=5.0)

    def _dispatch_loop(self, oneshots: list[FaultEvent]) -> None:
        t0 = self._t0
        assert t0 is not None
        for event in oneshots:
            delay = (t0 + event.at_s) - time.monotonic()
            if delay > 0 and self._stop.wait(delay):
                return
            if self._stop.is_set():
                return
            with self._lock:
                handler = self._handlers.get(event.kind)
            if handler is None:
                logger.warning(
                    "chaos: no handler registered for %s; skipping", event.kind
                )
                continue
            logger.info(
                "chaos: firing %s target=%s at +%.3fs",
                event.kind,
                event.target,
                self.elapsed_s(),
            )
            try:
                handler(event)
            except Exception:
                logger.exception("chaos: %s handler failed", event.kind)
                continue
            self._mark(event)

    # ------------------------------------------------------------------
    # Seams
    # ------------------------------------------------------------------
    def before_batch(self, worker: int) -> None:
        """Worker-side seam: apply stall / slow-batch windows for ``worker``.

        Called by serve loops just before a non-empty batch is
        processed.  Stalls sleep to the end of their window (the worker
        holds its batch the whole time, exactly like a wedged process);
        slow-batch windows add their ``delay_ms`` once per batch.
        """
        if not self.armed:
            return
        offset = self.elapsed_s()
        for event in self.plan.events:
            if (
                event.kind == "worker_stall"
                and event.matches_worker(worker)
                and event.active_at(offset)
            ):
                remaining = event.end_s - offset
                self._mark(event)
                self._interruptible_sleep(remaining)
                offset = self.elapsed_s()
        for event in self.plan.events:
            if (
                event.kind == "slow_batch"
                and event.matches_worker(worker)
                and event.active_at(offset)
            ):
                self._mark(event)
                self._interruptible_sleep(event.delay_ms / 1000.0)

    def http_response_fault(self) -> str | None:
        """Gateway seam: the fault kind to apply to this response, if any.

        Consumes one unit of the active window event's ``count`` budget
        under the lock, so a burst corrupts exactly ``count`` responses
        no matter how many handler threads race through the window.
        """
        if not self.armed:
            return None
        offset = self.elapsed_s()
        with self._lock:
            for i, event in enumerate(self.plan.events):
                if event.kind not in GATEWAY_KINDS:
                    continue
                if not event.active_at(offset):
                    continue
                budget = self._budgets.get(i)
                if budget is not None:
                    if budget <= 0:
                        continue
                    self._budgets[i] = budget - 1
                self._mark_locked(event)
                return event.kind
        return None

    def _interruptible_sleep(self, seconds: float) -> None:
        if seconds > 0:
            self._stop.wait(seconds)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _mark(self, event: FaultEvent) -> None:
        with self._lock:
            self._mark_locked(event)

    def _mark_locked(self, event: FaultEvent) -> None:
        require_held(self._lock, "FaultInjector._mark_locked")
        self._applied[event.kind] = self._applied.get(event.kind, 0) + 1
        self._fired.append((round(self.elapsed_s(), 3), event.kind, event.target))

    def applied_counts(self) -> dict[str, int]:
        """How many times each fault kind was actually applied."""
        with self._lock:
            return dict(self._applied)

    def fired_log(self) -> list[tuple[float, str, int | None]]:
        """``(elapsed_s, kind, target)`` for every applied fault."""
        with self._lock:
            return list(self._fired)
