"""Deterministic fault plans for chaos experiments.

A :class:`FaultPlan` is the failure-side twin of
:class:`~repro.loadgen.schedule.ArrivalSchedule`: the full list of
*intended* fault events, decided up front from a seed, serialised to a
versioned JSON file, and replayable bit-for-bit.  Nothing about when or
where a fault fires depends on runtime state — the plan *is* the
timing, so two runs armed with the same plan inject identical failures
and any difference in outcome is the system under test, not the chaos
harness.

Fault taxonomy (``kind``):

``worker_crash``
    One-shot: SIGKILL the target worker process at ``at_s``.  Only
    meaningful for the multi-process backend (a thread cannot be
    killed); dispatched by the :class:`~repro.chaos.injector.
    FaultInjector` timer thread to whatever handler the server
    registered.
``worker_stall``
    Window: the target worker stops draining batches for
    ``duration_s`` seconds starting at ``at_s`` (the serve loop sleeps
    through the window before touching the batch).  Models a wedged
    worker: queue share backs up, the rest of the fleet keeps serving.
``slow_batch``
    Window: every batch the target worker serves inside the window
    pays ``delay_ms`` extra latency.  Models degraded-but-alive
    workers (thermal throttling, noisy neighbour, page-cache miss
    storm).
``socket_reset``
    Window (gateway): up to ``count`` predict responses are answered
    by abruptly closing the TCP connection with nothing written.
``truncate_response``
    Window (gateway): up to ``count`` predict responses declare a full
    ``Content-Length`` but write only half the body before closing.
``malformed_response``
    Window (gateway): up to ``count`` predict responses return HTTP
    200 with a body that is not valid JSON.

``target`` is a worker slot index for worker-scoped kinds (``None``
means "any worker", i.e. the seam matches every worker) and is ignored
for gateway kinds.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "GATEWAY_KINDS",
    "KINDS",
    "ONESHOT_KINDS",
    "WORKER_KINDS",
]

_PLAN_VERSION = 1

ONESHOT_KINDS = frozenset({"worker_crash"})
WORKER_KINDS = frozenset({"worker_crash", "worker_stall", "slow_batch"})
GATEWAY_KINDS = frozenset(
    {"socket_reset", "truncate_response", "malformed_response"}
)
KINDS = WORKER_KINDS | GATEWAY_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault: what, where, when, and for how long."""

    at_s: float
    kind: str
    target: int | None = None
    duration_s: float = 0.0
    delay_ms: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")
        if self.duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        if self.delay_ms < 0:
            raise ValueError("delay_ms must be non-negative")
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if self.kind in ONESHOT_KINDS and self.duration_s:
            raise ValueError(f"{self.kind} is one-shot; duration_s must be 0")
        if self.kind not in ONESHOT_KINDS and self.duration_s <= 0:
            raise ValueError(f"{self.kind} needs a positive duration_s window")

    @property
    def end_s(self) -> float:
        return self.at_s + self.duration_s

    def active_at(self, offset_s: float) -> bool:
        """Whether ``offset_s`` (seconds since arm) is inside the window."""
        return self.at_s <= offset_s < self.end_s

    def matches_worker(self, worker: int) -> bool:
        return self.target is None or self.target == worker

    def to_dict(self) -> dict:
        payload: dict = {"at_s": self.at_s, "kind": self.kind}
        if self.target is not None:
            payload["target"] = self.target
        if self.duration_s:
            payload["duration_s"] = self.duration_s
        if self.delay_ms:
            payload["delay_ms"] = self.delay_ms
        if self.count:
            payload["count"] = self.count
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultEvent":
        target = payload.get("target")
        return cls(
            at_s=float(payload["at_s"]),
            kind=str(payload["kind"]),
            target=None if target is None else int(target),
            duration_s=float(payload.get("duration_s", 0.0)),
            delay_ms=float(payload.get("delay_ms", 0.0)),
            count=int(payload.get("count", 0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seed-stamped, JSON round-trippable fault schedule.

    ``seed`` records provenance (for :meth:`generate` plans it fully
    determines the events; hand-written plans carry it as an
    identifier).  Events are kept sorted by ``at_s`` so the injector's
    dispatch order is the file order.
    """

    seed: int
    events: tuple[FaultEvent, ...]

    def __post_init__(self) -> None:
        if not self.events:
            raise ValueError("a fault plan needs at least one event")
        if any(
            b.at_s < a.at_s for a, b in zip(self.events, self.events[1:])
        ):
            raise ValueError("events must be sorted by at_s")

    def __len__(self) -> int:
        return len(self.events)

    @property
    def duration_s(self) -> float:
        """When the last planned fault (window included) is over."""
        return max(event.end_s for event in self.events)

    def kinds(self) -> tuple[str, ...]:
        return tuple(sorted({event.kind for event in self.events}))

    def timeline(self) -> tuple[tuple[float, str, int | None], ...]:
        """The compiled ``(at_s, kind, target)`` schedule.

        This is the reproducibility contract: the same plan (same file,
        or the same :meth:`generate` seed) compiles to an identical
        timeline, so fault timings in two runs can be compared by
        equality, not by eyeball.
        """
        return tuple(
            (event.at_s, event.kind, event.target) for event in self.events
        )

    # ------------------------------------------------------------------
    # JSON round trip (same shape discipline as loadgen trace files)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "plan_version": _PLAN_VERSION,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        if payload.get("plan_version") != _PLAN_VERSION:
            raise ValueError(
                f"unsupported plan_version: {payload.get('plan_version')!r}"
            )
        return cls(
            seed=int(payload["seed"]),
            events=tuple(
                FaultEvent.from_dict(event) for event in payload["events"]
            ),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    # ------------------------------------------------------------------
    # Seeded generation
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        duration_s: float,
        workers: int = 2,
        crashes: int = 1,
        stalls: int = 1,
        stall_s: float = 0.4,
        socket_bursts: int = 1,
        burst_window_s: float = 0.3,
        burst_count: int = 5,
        slow_windows: int = 0,
        slow_window_s: float = 0.5,
        delay_ms: float = 50.0,
    ) -> "FaultPlan":
        """A seeded random plan over ``duration_s`` seconds.

        Events are scattered over the middle 80% of the run (faults at
        the very start hit an empty server; faults at the very end have
        no recovery window to observe) and are fully determined by
        ``seed`` — ``random.Random``'s Mersenne Twister stream is
        stable across Python versions, so the same call regenerates the
        identical plan anywhere.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        rng = random.Random(seed)
        lo, hi = 0.1 * duration_s, 0.9 * duration_s

        def moment() -> float:
            return round(rng.uniform(lo, hi), 3)

        events: list[FaultEvent] = []
        for _ in range(crashes):
            events.append(
                FaultEvent(
                    at_s=moment(),
                    kind="worker_crash",
                    target=rng.randrange(workers),
                )
            )
        for _ in range(stalls):
            events.append(
                FaultEvent(
                    at_s=moment(),
                    kind="worker_stall",
                    target=rng.randrange(workers),
                    duration_s=stall_s,
                )
            )
        for _ in range(socket_bursts):
            kind = rng.choice(
                ("socket_reset", "truncate_response", "malformed_response")
            )
            events.append(
                FaultEvent(
                    at_s=moment(),
                    kind=kind,
                    duration_s=burst_window_s,
                    count=burst_count,
                )
            )
        for _ in range(slow_windows):
            events.append(
                FaultEvent(
                    at_s=moment(),
                    kind="slow_batch",
                    target=rng.randrange(workers),
                    duration_s=slow_window_s,
                    delay_ms=delay_ms,
                )
            )
        events.sort(key=lambda event: event.at_s)
        return cls(seed=seed, events=tuple(events))
