"""Deterministic chaos engineering: seeded fault plans + injection seams."""

from repro.chaos.injector import FaultInjector
from repro.chaos.plan import (
    GATEWAY_KINDS,
    KINDS,
    ONESHOT_KINDS,
    WORKER_KINDS,
    FaultEvent,
    FaultPlan,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "GATEWAY_KINDS",
    "KINDS",
    "ONESHOT_KINDS",
    "WORKER_KINDS",
]
