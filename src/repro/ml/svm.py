"""Linear SVM: one-vs-rest hinge loss trained with Pegasos SGD.

The Linear SVM baseline from §III-A.  Each class gets a binary
max-margin separator trained with the Pegasos algorithm
(Shalev-Shwartz et al., 2011): stochastic sub-gradient steps with the
1/(lambda * t) schedule and the optional projection onto the
1/sqrt(lambda) ball.  Multi-class prediction takes the argmax margin.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinearSVM"]


class LinearSVM:
    """One-vs-rest linear SVM.

    Parameters
    ----------
    c:
        Inverse regularisation (converted to Pegasos lambda as
        ``1 / (c * n_samples)``).
    epochs:
        Passes over the training set per binary problem.
    seed:
        Shuffling seed (Pegasos samples uniformly; we shuffle per epoch).
    project:
        Apply the norm-ball projection step from the Pegasos paper.
    """

    def __init__(
        self,
        *,
        c: float = 1.0,
        epochs: int = 20,
        seed: int = 0,
        project: bool = True,
        fit_intercept: bool = True,
    ) -> None:
        if c <= 0:
            raise ValueError("c must be positive")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.c = c
        self.epochs = epochs
        self.seed = seed
        self.project = project
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None
        self.n_classes_: int | None = None

    # ------------------------------------------------------------------
    def _fit_binary(
        self, x: np.ndarray, sign: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Pegasos on one binary problem; returns the weight vector."""
        n, d = x.shape
        lam = 1.0 / (self.c * n)
        weights = np.zeros(d)
        t = 0
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                t += 1
                eta = 1.0 / (lam * t)
                margin = sign[i] * float(x[i] @ weights)
                weights *= 1.0 - eta * lam
                if margin < 1.0:
                    weights += eta * sign[i] * x[i]
                if self.project:
                    norm = float(np.linalg.norm(weights))
                    bound = 1.0 / np.sqrt(lam)
                    if norm > bound:
                        weights *= bound / norm
        return weights

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LinearSVM":
        """Fit OvR separators on ``features`` (n, d), integer ``targets``."""
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.int64)
        if x.ndim != 2:
            raise ValueError("features must be 2-D")
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and targets length mismatch")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if self.fit_intercept:
            x = np.hstack([x, np.ones((x.shape[0], 1))])
        n_classes = int(y.max()) + 1
        self.n_classes_ = n_classes
        rng = np.random.default_rng(self.seed)
        stacked = np.zeros((x.shape[1], n_classes))
        for k in range(n_classes):
            sign = np.where(y == k, 1.0, -1.0)
            stacked[:, k] = self._fit_binary(x, sign, rng)
        if self.fit_intercept:
            self.coef_ = stacked[:-1, :]
            self.intercept_ = stacked[-1, :]
        else:
            self.coef_ = stacked
            self.intercept_ = np.zeros(n_classes)
        return self

    # ------------------------------------------------------------------
    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self.coef_ is None or self.intercept_ is None:
            raise RuntimeError("LinearSVM must be fitted first")
        return np.asarray(features, dtype=np.float64) @ self.coef_ + self.intercept_

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Class with the largest one-vs-rest margin."""
        return self.decision_function(features).argmax(axis=1)
