"""Linear SVM: one-vs-rest hinge loss trained with Pegasos SGD.

The Linear SVM baseline from §III-A.  Each class gets a binary
max-margin separator trained with the Pegasos algorithm
(Shalev-Shwartz et al., 2011): stochastic sub-gradient steps with the
1/(lambda * t) schedule and the optional projection onto the
1/sqrt(lambda) ball.  Multi-class prediction takes the argmax margin.

Features may be dense arrays or :class:`repro.sparse.CSRMatrix`
instances.  The sparse path keeps the weight vector dense (it fills in
during training) but computes each example's margin and sub-gradient
update from the example's stored non-zeros only, which is where a
TF-IDF row with ~25 active terms out of thousands wins big.
"""

from __future__ import annotations

import numpy as np

from repro.sparse import CSRMatrix, is_sparse

__all__ = ["LinearSVM"]


class LinearSVM:
    """One-vs-rest linear SVM.

    Parameters
    ----------
    c:
        Inverse regularisation (converted to Pegasos lambda as
        ``1 / (c * n_samples)``).
    epochs:
        Passes over the training set per binary problem.
    seed:
        Shuffling seed (Pegasos samples uniformly; we shuffle per epoch).
    project:
        Apply the norm-ball projection step from the Pegasos paper.
    fit_intercept:
        Learn a bias term by appending a constant-1 feature.

    Example
    -------
    >>> x = np.array([[0.0, 1.0], [0.0, 2.0], [3.0, 0.0], [4.0, 0.0]])
    >>> y = np.array([0, 0, 1, 1])
    >>> LinearSVM(epochs=20, seed=0).fit(x, y).predict(x).tolist()
    [0, 0, 1, 1]
    """

    def __init__(
        self,
        *,
        c: float = 1.0,
        epochs: int = 20,
        seed: int = 0,
        project: bool = True,
        fit_intercept: bool = True,
    ) -> None:
        if c <= 0:
            raise ValueError("c must be positive")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.c = c
        self.epochs = epochs
        self.seed = seed
        self.project = project
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None
        self.n_classes_: int | None = None

    # ------------------------------------------------------------------
    def _fit_binary_dense(
        self, x: np.ndarray, sign: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Pegasos on one binary problem over dense rows."""
        n, d = x.shape
        lam = 1.0 / (self.c * n)
        weights = np.zeros(d)
        t = 0
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                t += 1
                eta = 1.0 / (lam * t)
                margin = sign[i] * float(x[i] @ weights)
                weights *= 1.0 - eta * lam
                if margin < 1.0:
                    weights += eta * sign[i] * x[i]
                if self.project:
                    norm = float(np.linalg.norm(weights))
                    bound = 1.0 / np.sqrt(lam)
                    if norm > bound:
                        weights *= bound / norm
        return weights

    def _fit_binary_sparse(
        self, x: CSRMatrix, sign: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Pegasos over CSR rows: margins/updates touch non-zeros only.

        The per-step shrink ``w *= (1 - eta * lam)`` is folded into a
        scalar so each iteration costs O(nnz(row)) instead of O(d); the
        squared norm is maintained incrementally for the projection.
        """
        n, d = x.shape
        lam = 1.0 / (self.c * n)
        weights = np.zeros(d)
        scale = 1.0  # effective w = scale * weights
        sq_norm = 0.0  # ||effective w||^2
        bound = 1.0 / np.sqrt(lam)
        t = 0
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                t += 1
                eta = 1.0 / (lam * t)
                cols, vals = x.row(i)
                margin = sign[i] * scale * float(vals @ weights[cols])
                shrink = 1.0 - eta * lam
                scale *= shrink
                sq_norm *= shrink * shrink
                if scale < 1e-9:
                    # Re-materialise before the scale underflows.
                    weights *= scale
                    scale = 1.0
                if margin < 1.0 and len(cols):
                    step = eta * sign[i] / scale
                    touched = weights[cols]
                    sq_norm += scale * scale * (
                        2.0 * step * float(vals @ touched)
                        + step * step * float(vals @ vals)
                    )
                    weights[cols] = touched + step * vals
                if self.project and sq_norm > bound * bound:
                    factor = bound / np.sqrt(sq_norm)
                    scale *= factor
                    sq_norm = bound * bound
        return scale * weights

    def fit(self, features, targets: np.ndarray) -> "LinearSVM":
        """Fit OvR separators on ``features`` (n, d), integer ``targets``.

        Parameters
        ----------
        features:
            Dense ``(n, d)`` array or :class:`~repro.sparse.CSRMatrix`.
        targets:
            Integer class ids ``0 .. K-1``, shape ``(n,)``.

        Returns
        -------
        LinearSVM
            ``self`` (fitted), for chaining.
        """
        sparse = is_sparse(features)
        x = features if sparse else np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.int64)
        if not sparse and x.ndim != 2:
            raise ValueError("features must be 2-D")
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and targets length mismatch")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if self.fit_intercept:
            x = (
                x.with_intercept_column()
                if sparse
                else np.hstack([x, np.ones((x.shape[0], 1))])
            )
        n_classes = int(y.max()) + 1
        self.n_classes_ = n_classes
        rng = np.random.default_rng(self.seed)
        fit_binary = self._fit_binary_sparse if sparse else self._fit_binary_dense
        stacked = np.zeros((x.shape[1], n_classes))
        for k in range(n_classes):
            sign = np.where(y == k, 1.0, -1.0)
            stacked[:, k] = fit_binary(x, sign, rng)
        if self.fit_intercept:
            self.coef_ = stacked[:-1, :]
            self.intercept_ = stacked[-1, :]
        else:
            self.coef_ = stacked
            self.intercept_ = np.zeros(n_classes)
        return self

    # ------------------------------------------------------------------
    def decision_function(self, features) -> np.ndarray:
        """One-vs-rest margins, shape ``(n, n_classes)``."""
        if self.coef_ is None or self.intercept_ is None:
            raise RuntimeError("LinearSVM must be fitted first")
        if is_sparse(features):
            return features @ self.coef_ + self.intercept_
        return np.asarray(features, dtype=np.float64) @ self.coef_ + self.intercept_

    def predict(self, features) -> np.ndarray:
        """Class with the largest one-vs-rest margin."""
        return self.decision_function(features).argmax(axis=1)
