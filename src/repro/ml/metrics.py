"""Classification metrics: per-class P/R/F1, accuracy, confusion matrix.

Table IV reports per-class precision, recall and F-score plus overall
accuracy, averaged over 10 folds.  These implementations follow the
scikit-learn conventions (zero division yields 0.0).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Sequence

import numpy as np

__all__ = [
    "ClassMetrics",
    "ClassificationReport",
    "accuracy",
    "confusion_matrix",
    "classification_report",
    "precision_recall_f1",
]


@dataclass(frozen=True)
class ClassMetrics:
    """Precision/recall/F1 for one class."""

    precision: float
    recall: float
    f1: float
    support: int


@dataclass(frozen=True)
class ClassificationReport:
    """Per-class metrics plus aggregate measures."""

    per_class: dict[Hashable, ClassMetrics]
    accuracy: float

    @property
    def macro_f1(self) -> float:
        values = [m.f1 for m in self.per_class.values()]
        return float(np.mean(values)) if values else 0.0

    @property
    def macro_precision(self) -> float:
        values = [m.precision for m in self.per_class.values()]
        return float(np.mean(values)) if values else 0.0

    @property
    def macro_recall(self) -> float:
        values = [m.recall for m in self.per_class.values()]
        return float(np.mean(values)) if values else 0.0

    @property
    def weighted_f1(self) -> float:
        total = sum(m.support for m in self.per_class.values())
        if total == 0:
            return 0.0
        return float(
            sum(m.f1 * m.support for m in self.per_class.values()) / total
        )


def accuracy(y_true: Sequence[Hashable], y_pred: Sequence[Hashable]) -> float:
    """Fraction of exact label matches.

    Parameters
    ----------
    y_true / y_pred:
        Equal-length label sequences (any hashable labels).

    Returns
    -------
    float
        Matches divided by total, in ``[0, 1]``.

    Example
    -------
    >>> accuracy(["a", "b", "b"], ["a", "b", "a"])
    0.6666666666666666
    """
    _check_lengths(y_true, y_pred)
    return sum(t == p for t, p in zip(y_true, y_pred)) / len(y_true)


def confusion_matrix(
    y_true: Sequence[Hashable],
    y_pred: Sequence[Hashable],
    labels: Sequence[Hashable],
) -> np.ndarray:
    """Counts matrix with rows = true labels, columns = predictions.

    Parameters
    ----------
    y_true / y_pred:
        Equal-length label sequences; every label must appear in
        ``labels`` (unknown labels raise ``ValueError``).
    labels:
        Label universe fixing the row/column order.

    Returns
    -------
    numpy.ndarray
        ``(len(labels), len(labels))`` integer counts.

    Example
    -------
    >>> confusion_matrix(["a", "b"], ["a", "a"], ["a", "b"]).tolist()
    [[1, 0], [1, 0]]
    """
    _check_lengths(y_true, y_pred)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        if t not in index:
            raise ValueError(f"true label {t!r} missing from labels")
        if p not in index:
            raise ValueError(f"predicted label {p!r} missing from labels")
        matrix[index[t], index[p]] += 1
    return matrix


def precision_recall_f1(
    y_true: Sequence[Hashable],
    y_pred: Sequence[Hashable],
    label: Hashable,
) -> ClassMetrics:
    """One-vs-rest precision/recall/F1 for ``label``.

    Parameters
    ----------
    y_true / y_pred:
        Equal-length label sequences.
    label:
        The positive class; every other label counts as negative.

    Returns
    -------
    ClassMetrics
        Precision, recall, F1 (0.0 on zero division) and support.

    Example
    -------
    >>> precision_recall_f1(["a", "a", "b"], ["a", "b", "b"], "a").recall
    0.5
    """
    _check_lengths(y_true, y_pred)
    tp = sum(t == label and p == label for t, p in zip(y_true, y_pred))
    fp = sum(t != label and p == label for t, p in zip(y_true, y_pred))
    fn = sum(t == label and p != label for t, p in zip(y_true, y_pred))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    support = sum(t == label for t in y_true)
    return ClassMetrics(precision, recall, f1, support)


def classification_report(
    y_true: Sequence[Hashable],
    y_pred: Sequence[Hashable],
    labels: Sequence[Hashable],
) -> ClassificationReport:
    """Per-class metrics for every label plus overall accuracy.

    Parameters
    ----------
    y_true / y_pred:
        Equal-length label sequences.
    labels:
        Labels to report on (fixes the ``per_class`` key order).

    Returns
    -------
    ClassificationReport
        Per-class :class:`ClassMetrics` plus accuracy and the macro /
        weighted aggregates as properties.

    Example
    -------
    >>> report = classification_report(["a", "b"], ["a", "b"], ["a", "b"])
    >>> (report.accuracy, report.macro_f1)
    (1.0, 1.0)
    """
    per_class = {
        label: precision_recall_f1(y_true, y_pred, label) for label in labels
    }
    return ClassificationReport(per_class=per_class, accuracy=accuracy(y_true, y_pred))


def _check_lengths(y_true: Sequence[Hashable], y_pred: Sequence[Hashable]) -> None:
    if len(y_true) != len(y_pred):
        raise ValueError(
            f"length mismatch: {len(y_true)} true vs {len(y_pred)} predicted"
        )
    if not y_true:
        raise ValueError("cannot score empty label sequences")
