"""Feature/label preprocessing shared by the classic ML baselines.

``StandardScaler`` accepts either dense arrays or
:class:`repro.sparse.CSRMatrix` features: statistics are computed from
the sparse column moments without densifying.  Mean-centering destroys
sparsity by construction, so ``transform`` of a CSR input returns a
dense array (documented on the method); pass ``with_mean=False`` to
keep the output sparse.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.sparse import CSRMatrix, is_sparse

__all__ = ["LabelEncoder", "StandardScaler"]


class LabelEncoder:
    """Map hashable labels to contiguous integer ids and back.

    Example
    -------
    >>> encoder = LabelEncoder().fit(["b", "a", "b"])
    >>> encoder.transform(["a", "b"]).tolist()
    [0, 1]
    >>> encoder.inverse_transform([1, 0])
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._classes: list[Hashable] | None = None
        self._index: dict[Hashable, int] = {}

    def fit(self, labels: Sequence[Hashable]) -> "LabelEncoder":
        """Learn the label set; order follows first appearance, sorted by repr.

        Sorting by ``repr`` keeps the encoding deterministic regardless of
        input order while supporting non-comparable label types (enums).
        """
        if not labels:
            raise ValueError("cannot fit LabelEncoder on no labels")
        unique = sorted(set(labels), key=repr)
        self._classes = unique
        self._index = {label: i for i, label in enumerate(unique)}
        return self

    def transform(self, labels: Sequence[Hashable]) -> np.ndarray:
        if self._classes is None:
            raise RuntimeError("LabelEncoder must be fitted first")
        try:
            return np.asarray([self._index[label] for label in labels], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"unseen label {exc.args[0]!r}") from None

    def fit_transform(self, labels: Sequence[Hashable]) -> np.ndarray:
        return self.fit(labels).transform(labels)

    def inverse_transform(self, ids: Sequence[int]) -> list[Hashable]:
        if self._classes is None:
            raise RuntimeError("LabelEncoder must be fitted first")
        return [self._classes[int(i)] for i in ids]

    @property
    def classes(self) -> list[Hashable]:
        if self._classes is None:
            raise RuntimeError("LabelEncoder must be fitted first")
        return list(self._classes)

    def __len__(self) -> int:
        return len(self._classes or ())


class StandardScaler:
    """Zero-mean, unit-variance feature scaling (variance floor 1e-12).

    Parameters
    ----------
    with_mean:
        Subtract the per-feature mean.  Disable for CSR inputs whose
        sparsity must survive the transform (centering fills in zeros).

    Example
    -------
    >>> x = np.array([[0.0, 10.0], [2.0, 30.0]])
    >>> StandardScaler().fit_transform(x).tolist()
    [[-1.0, -1.0], [1.0, 1.0]]
    """

    def __init__(self, *, with_mean: bool = True) -> None:
        self.with_mean = with_mean
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, features) -> "StandardScaler":
        """Learn per-feature mean and scale from dense or CSR features."""
        if is_sparse(features):
            if features.shape[0] == 0:
                raise ValueError("features must be a non-empty 2-D array")
            mean, var = features.column_moments()
            std = np.sqrt(var)
        else:
            matrix = np.asarray(features, dtype=np.float64)
            if matrix.ndim != 2 or matrix.shape[0] == 0:
                raise ValueError("features must be a non-empty 2-D array")
            mean = matrix.mean(axis=0)
            std = matrix.std(axis=0)
        std[std < 1e-12] = 1.0
        self.mean_ = mean
        self.scale_ = std
        return self

    def transform(self, features) -> "np.ndarray | CSRMatrix":
        """Scale (and optionally centre) ``features``.

        Dense input stays dense.  CSR input stays CSR when
        ``with_mean=False`` (pure column scaling); with centering the
        result is necessarily dense, so the matrix is densified first.
        """
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted first")
        if is_sparse(features):
            if not self.with_mean:
                return features.scale_columns(1.0 / self.scale_)
            features = features.toarray()
        matrix = np.asarray(features, dtype=np.float64)
        if self.with_mean:
            matrix = matrix - self.mean_
        return matrix / self.scale_

    def fit_transform(self, features) -> "np.ndarray | CSRMatrix":
        """:meth:`fit` then :meth:`transform` on the same features."""
        return self.fit(features).transform(features)
