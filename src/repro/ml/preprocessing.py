"""Feature/label preprocessing shared by the classic ML baselines."""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

__all__ = ["LabelEncoder", "StandardScaler"]


class LabelEncoder:
    """Map hashable labels to contiguous integer ids and back."""

    def __init__(self) -> None:
        self._classes: list[Hashable] | None = None
        self._index: dict[Hashable, int] = {}

    def fit(self, labels: Sequence[Hashable]) -> "LabelEncoder":
        """Learn the label set; order follows first appearance, sorted by repr.

        Sorting by ``repr`` keeps the encoding deterministic regardless of
        input order while supporting non-comparable label types (enums).
        """
        if not labels:
            raise ValueError("cannot fit LabelEncoder on no labels")
        unique = sorted(set(labels), key=repr)
        self._classes = unique
        self._index = {label: i for i, label in enumerate(unique)}
        return self

    def transform(self, labels: Sequence[Hashable]) -> np.ndarray:
        if self._classes is None:
            raise RuntimeError("LabelEncoder must be fitted first")
        try:
            return np.asarray([self._index[label] for label in labels], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"unseen label {exc.args[0]!r}") from None

    def fit_transform(self, labels: Sequence[Hashable]) -> np.ndarray:
        return self.fit(labels).transform(labels)

    def inverse_transform(self, ids: Sequence[int]) -> list[Hashable]:
        if self._classes is None:
            raise RuntimeError("LabelEncoder must be fitted first")
        return [self._classes[int(i)] for i in ids]

    @property
    def classes(self) -> list[Hashable]:
        if self._classes is None:
            raise RuntimeError("LabelEncoder must be fitted first")
        return list(self._classes)

    def __len__(self) -> int:
        return len(self._classes or ())


class StandardScaler:
    """Zero-mean, unit-variance feature scaling (variance floor 1e-12)."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        matrix = np.asarray(features, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ValueError("features must be a non-empty 2-D array")
        self.mean_ = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        std[std < 1e-12] = 1.0
        self.scale_ = std
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted first")
        return (np.asarray(features, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)
