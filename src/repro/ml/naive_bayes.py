"""Gaussian naive Bayes.

The third traditional baseline from §III-A.  Fits a per-class diagonal
Gaussian to every feature; the paper (and common practice) feeds it the
TF-IDF matrix, where the Gaussian assumption is badly violated — which
is exactly why it anchors the bottom of Table IV.

Features may be dense arrays or :class:`repro.sparse.CSRMatrix`
instances.  The sparse path estimates per-class means/variances from
column moments of the stored non-zeros (zeros included analytically)
and expands the Mahalanobis-style quadratic term into three sparse
products, so neither fitting nor prediction ever densifies the matrix.
"""

from __future__ import annotations

import numpy as np

from repro.sparse import CSRMatrix, is_sparse

__all__ = ["GaussianNaiveBayes"]


class GaussianNaiveBayes:
    """Gaussian NB with variance smoothing (scikit-learn compatible).

    ``var_smoothing`` adds a fraction of the largest feature variance to
    every variance, protecting the log-density against zero-variance
    features (constant TF-IDF columns).

    Example
    -------
    >>> x = np.array([[0.0], [0.2], [3.8], [4.0]])
    >>> y = np.array([0, 0, 1, 1])
    >>> GaussianNaiveBayes().fit(x, y).predict(x).tolist()
    [0, 0, 1, 1]
    """

    def __init__(self, *, var_smoothing: float = 1e-9) -> None:
        if var_smoothing < 0:
            raise ValueError("var_smoothing must be non-negative")
        self.var_smoothing = var_smoothing
        self.theta_: np.ndarray | None = None  # (n_classes, d) means
        self.var_: np.ndarray | None = None  # (n_classes, d) variances
        self.class_prior_: np.ndarray | None = None
        self.n_classes_: int | None = None

    def fit(self, features, targets: np.ndarray) -> "GaussianNaiveBayes":
        """Estimate per-class means, variances and priors.

        Parameters
        ----------
        features:
            Dense ``(n, d)`` array or :class:`~repro.sparse.CSRMatrix`.
        targets:
            Integer class ids ``0 .. K-1``, shape ``(n,)``.

        Returns
        -------
        GaussianNaiveBayes
            ``self`` (fitted), for chaining.
        """
        sparse = is_sparse(features)
        x = features if sparse else np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.int64)
        if not sparse and x.ndim != 2:
            raise ValueError("features must be 2-D")
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and targets length mismatch")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        n_classes = int(y.max()) + 1
        self.n_classes_ = n_classes
        d = x.shape[1]
        theta = np.zeros((n_classes, d))
        var = np.zeros((n_classes, d))
        prior = np.zeros(n_classes)
        if sparse:
            _, global_var = x.column_moments()
            epsilon = self.var_smoothing * float(global_var.max() or 1.0)
        else:
            epsilon = self.var_smoothing * float(x.var(axis=0).max() or 1.0)
        for k in range(n_classes):
            member_idx = np.flatnonzero(y == k)
            if member_idx.shape[0] == 0:
                raise ValueError(f"class {k} has no training samples")
            if sparse:
                theta[k], class_var = x.select_rows(member_idx).column_moments()
                var[k] = class_var + epsilon
            else:
                members = x[member_idx]
                theta[k] = members.mean(axis=0)
                var[k] = members.var(axis=0) + epsilon
            prior[k] = member_idx.shape[0] / x.shape[0]
        self.theta_, self.var_, self.class_prior_ = theta, var, prior
        return self

    def _joint_log_likelihood(self, features) -> np.ndarray:
        """Unnormalised log posterior per class, shape ``(n, n_classes)``."""
        if self.theta_ is None or self.var_ is None or self.class_prior_ is None:
            raise RuntimeError("GaussianNaiveBayes must be fitted first")
        if is_sparse(features):
            return self._jll_sparse(features)
        x = np.asarray(features, dtype=np.float64)
        jll = np.empty((x.shape[0], self.theta_.shape[0]))
        for k in range(self.theta_.shape[0]):
            log_det = np.log(2.0 * np.pi * self.var_[k]).sum()
            quad = ((x - self.theta_[k]) ** 2 / self.var_[k]).sum(axis=1)
            jll[:, k] = np.log(self.class_prior_[k]) - 0.5 * (log_det + quad)
        return jll

    def _jll_sparse(self, x: CSRMatrix) -> np.ndarray:
        """Sparse joint log-likelihood via the expanded quadratic.

        ``sum_j (x_j - theta_j)^2 / var_j`` splits into
        ``x^2 @ (1/var) - 2 x @ (theta/var) + sum(theta^2/var)`` — two
        CSR products plus a per-class constant.
        """
        assert self.theta_ is not None and self.var_ is not None
        assert self.class_prior_ is not None
        inv_var = 1.0 / self.var_  # (K, d)
        x_sq = CSRMatrix(x.data**2, x.indices, x.indptr, x.shape)
        quad = (
            x_sq @ inv_var.T
            - 2.0 * (x @ (self.theta_ * inv_var).T)
            + (self.theta_**2 * inv_var).sum(axis=1)
        )
        log_det = np.log(2.0 * np.pi * self.var_).sum(axis=1)
        return np.log(self.class_prior_) - 0.5 * (log_det + quad)

    def predict_log_proba(self, features) -> np.ndarray:
        """Log posterior per class (normalised)."""
        jll = self._joint_log_likelihood(features)
        log_norm = np.logaddexp.reduce(jll, axis=1, keepdims=True)
        return jll - log_norm

    def predict_proba(self, features) -> np.ndarray:
        """Posterior probabilities per class."""
        return np.exp(self.predict_log_proba(features))

    def predict(self, features) -> np.ndarray:
        """Maximum a-posteriori class id per row."""
        return self._joint_log_likelihood(features).argmax(axis=1)
