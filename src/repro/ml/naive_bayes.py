"""Gaussian naive Bayes.

The third traditional baseline from §III-A.  Fits a per-class diagonal
Gaussian to every feature; the paper (and common practice) feeds it the
dense TF-IDF matrix, where the Gaussian assumption is badly violated —
which is exactly why it anchors the bottom of Table IV.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GaussianNaiveBayes"]


class GaussianNaiveBayes:
    """Gaussian NB with variance smoothing (scikit-learn compatible).

    ``var_smoothing`` adds a fraction of the largest feature variance to
    every variance, protecting the log-density against zero-variance
    features (constant TF-IDF columns).
    """

    def __init__(self, *, var_smoothing: float = 1e-9) -> None:
        if var_smoothing < 0:
            raise ValueError("var_smoothing must be non-negative")
        self.var_smoothing = var_smoothing
        self.theta_: np.ndarray | None = None  # (n_classes, d) means
        self.var_: np.ndarray | None = None  # (n_classes, d) variances
        self.class_prior_: np.ndarray | None = None
        self.n_classes_: int | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GaussianNaiveBayes":
        """Estimate per-class means, variances and priors."""
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.int64)
        if x.ndim != 2:
            raise ValueError("features must be 2-D")
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and targets length mismatch")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        n_classes = int(y.max()) + 1
        self.n_classes_ = n_classes
        d = x.shape[1]
        theta = np.zeros((n_classes, d))
        var = np.zeros((n_classes, d))
        prior = np.zeros(n_classes)
        epsilon = self.var_smoothing * float(x.var(axis=0).max() or 1.0)
        for k in range(n_classes):
            members = x[y == k]
            if members.shape[0] == 0:
                raise ValueError(f"class {k} has no training samples")
            theta[k] = members.mean(axis=0)
            var[k] = members.var(axis=0) + epsilon
            prior[k] = members.shape[0] / x.shape[0]
        self.theta_, self.var_, self.class_prior_ = theta, var, prior
        return self

    def _joint_log_likelihood(self, features: np.ndarray) -> np.ndarray:
        if self.theta_ is None or self.var_ is None or self.class_prior_ is None:
            raise RuntimeError("GaussianNaiveBayes must be fitted first")
        x = np.asarray(features, dtype=np.float64)
        jll = np.empty((x.shape[0], self.theta_.shape[0]))
        for k in range(self.theta_.shape[0]):
            log_det = np.log(2.0 * np.pi * self.var_[k]).sum()
            quad = ((x - self.theta_[k]) ** 2 / self.var_[k]).sum(axis=1)
            jll[:, k] = np.log(self.class_prior_[k]) - 0.5 * (log_det + quad)
        return jll

    def predict_log_proba(self, features: np.ndarray) -> np.ndarray:
        """Log posterior per class (normalised)."""
        jll = self._joint_log_likelihood(features)
        log_norm = np.logaddexp.reduce(jll, axis=1, keepdims=True)
        return jll - log_norm

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Posterior probabilities per class."""
        return np.exp(self.predict_log_proba(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Maximum a-posteriori class id per row."""
        return self._joint_log_likelihood(features).argmax(axis=1)
