"""Cross-validation utilities: K-fold splitters and a scoring loop."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Hashable, Sequence

import numpy as np

from repro.ml.metrics import ClassificationReport, classification_report

__all__ = ["KFold", "StratifiedKFold", "train_test_split", "cross_validate"]


@dataclass(frozen=True)
class KFold:
    """Plain K-fold: contiguous blocks after an optional shuffle.

    Parameters
    ----------
    n_splits:
        Number of folds (>= 2).
    shuffle / seed:
        Permute sample order first (deterministic given ``seed``).

    Example
    -------
    >>> folds = KFold(n_splits=2, shuffle=False).split(4)
    >>> [eval_idx.tolist() for _, eval_idx in folds]
    [[0, 1], [2, 3]]
    """

    n_splits: int = 10
    shuffle: bool = True
    seed: int = 7

    def split(self, n_samples: int) -> list[tuple[np.ndarray, np.ndarray]]:
        """(train_idx, eval_idx) pairs covering every sample exactly once.

        Parameters
        ----------
        n_samples:
            Dataset size; must be >= ``n_splits``.

        Returns
        -------
        list[tuple[numpy.ndarray, numpy.ndarray]]
            ``n_splits`` sorted index pairs; every sample appears in
            exactly one evaluation part.
        """
        if self.n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        if n_samples < self.n_splits:
            raise ValueError("more folds than samples")
        indices = np.arange(n_samples)
        if self.shuffle:
            indices = np.random.default_rng(self.seed).permutation(n_samples)
        sizes = np.full(self.n_splits, n_samples // self.n_splits, dtype=np.int64)
        sizes[: n_samples % self.n_splits] += 1
        folds: list[tuple[np.ndarray, np.ndarray]] = []
        start = 0
        for size in sizes:
            eval_idx = np.sort(indices[start : start + size])
            train_idx = np.sort(
                np.concatenate([indices[:start], indices[start + size :]])
            )
            folds.append((train_idx, eval_idx))
            start += size
        return folds


@dataclass(frozen=True)
class StratifiedKFold:
    """K-fold preserving class proportions in every evaluation part.

    Parameters
    ----------
    n_splits:
        Number of folds; every class needs at least ``n_splits`` samples.
    seed:
        Per-class shuffle seed (deterministic splits).

    Example
    -------
    >>> labels = ["a"] * 4 + ["b"] * 2
    >>> folds = StratifiedKFold(n_splits=2, seed=0).split(labels)
    >>> [len(eval_idx) for _, eval_idx in folds]
    [3, 3]
    """

    n_splits: int = 10
    seed: int = 7

    def split(
        self, labels: Sequence[Hashable]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """(train_idx, eval_idx) pairs with per-class round-robin assignment.

        Parameters
        ----------
        labels:
            One label per sample; stratification follows these.

        Returns
        -------
        list[tuple[numpy.ndarray, numpy.ndarray]]
            ``n_splits`` sorted index pairs whose evaluation parts keep
            each class's overall proportion (within rounding).
        """
        if self.n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        rng = np.random.default_rng(self.seed)
        by_label: dict[Hashable, list[int]] = {}
        for i, label in enumerate(labels):
            by_label.setdefault(label, []).append(i)
        members: list[list[int]] = [[] for _ in range(self.n_splits)]
        for label in sorted(by_label, key=repr):
            indices = by_label[label]
            if len(indices) < self.n_splits:
                raise ValueError(
                    f"class {label!r} has {len(indices)} samples "
                    f"< {self.n_splits} folds"
                )
            shuffled = [indices[j] for j in rng.permutation(len(indices))]
            for pos, idx in enumerate(shuffled):
                members[pos % self.n_splits].append(idx)
        folds: list[tuple[np.ndarray, np.ndarray]] = []
        all_indices = set(range(len(labels)))
        for k in range(self.n_splits):
            eval_idx = np.asarray(sorted(members[k]), dtype=np.int64)
            train_idx = np.asarray(
                sorted(all_indices - set(members[k])), dtype=np.int64
            )
            folds.append((train_idx, eval_idx))
        return folds


def train_test_split(
    n_samples: int, *, test_fraction: float = 0.2, seed: int = 7
) -> tuple[np.ndarray, np.ndarray]:
    """Shuffled (train_idx, test_idx) partition.

    Parameters
    ----------
    n_samples:
        Dataset size to partition.
    test_fraction:
        Fraction (0, 1) of samples in the test part (at least one).
    seed:
        Shuffle seed.

    Returns
    -------
    tuple[numpy.ndarray, numpy.ndarray]
        Sorted, disjoint ``(train_idx, test_idx)`` covering all samples.

    Example
    -------
    >>> train, test = train_test_split(10, test_fraction=0.3, seed=0)
    >>> (len(train), len(test))
    (7, 3)
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    order = np.random.default_rng(seed).permutation(n_samples)
    n_test = max(1, int(round(test_fraction * n_samples)))
    return np.sort(order[n_test:]), np.sort(order[:n_test])


def cross_validate(
    fit_predict: Callable[[np.ndarray, np.ndarray], Sequence[Hashable]],
    labels: Sequence[Hashable],
    class_labels: Sequence[Hashable],
    folds: Sequence[tuple[np.ndarray, np.ndarray]],
) -> list[ClassificationReport]:
    """Score ``fit_predict`` over prepared folds.

    ``fit_predict(train_idx, eval_idx)`` trains on the first index set and
    returns predictions for the second; this function scores each fold
    with the Table IV metrics.
    """
    reports: list[ClassificationReport] = []
    for train_idx, eval_idx in folds:
        predictions = fit_predict(np.asarray(train_idx), np.asarray(eval_idx))
        gold = [labels[i] for i in eval_idx]
        reports.append(classification_report(gold, list(predictions), class_labels))
    return reports
