"""Multi-label wellness classification (the paper's §V future work).

The paper's conclusion proposes "multi-label classification to better
handle overlapping wellness dimensions".  The corpus supports it
natively: a balanced post's gold label *set* is its dominant dimension
plus the secondary dimensions present in the text (perplexity guideline 1
says annotators "label all relevant ones but highlight the most
dominant").

This module provides a one-vs-rest multi-label classifier over any binary
scorer plus the standard multi-label metrics (subset accuracy, Hamming
loss, micro/macro F1).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Sequence

import numpy as np

from repro.ml.logistic import LogisticRegression
from repro.sparse import is_sparse

__all__ = [
    "MultiLabelMetrics",
    "OneVsRestClassifier",
    "multilabel_metrics",
]


class OneVsRestClassifier:
    """Independent binary logistic head per label.

    Parameters
    ----------
    labels:
        The full label universe, in a fixed order.
    threshold:
        Decision threshold on each head's probability.
    always_predict_top:
        Guarantee a non-empty prediction by always including the
        highest-scoring label (the dominant dimension always exists).

    Example
    -------
    >>> x = np.array([[0.0], [0.0], [5.0], [5.0]])
    >>> sets = [{"calm"}, {"calm"}, {"calm", "tired"}, {"tired"}]
    >>> clf = OneVsRestClassifier(["calm", "tired"]).fit(x, sets)
    >>> clf.predict(np.array([[0.0]])) == [{"calm"}]
    True
    """

    def __init__(
        self,
        labels: Sequence[Hashable],
        *,
        threshold: float = 0.5,
        always_predict_top: bool = True,
        max_iter: int = 200,
    ) -> None:
        if not labels:
            raise ValueError("labels must be non-empty")
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.labels = list(labels)
        self.threshold = threshold
        self.always_predict_top = always_predict_top
        self.max_iter = max_iter
        self._heads: list[LogisticRegression] | None = None

    def fit(
        self, features, label_sets: Sequence[set[Hashable]]
    ) -> "OneVsRestClassifier":
        """Fit one binary head per label on ``(features, label_sets)``.

        ``features`` may be a dense array or a
        :class:`~repro.sparse.CSRMatrix`; each logistic head consumes
        either form natively.
        """
        x = features if is_sparse(features) else np.asarray(features, dtype=np.float64)
        if x.shape[0] != len(label_sets):
            raise ValueError("features and label sets length mismatch")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._heads = []
        for label in self.labels:
            y = np.asarray(
                [1 if label in s else 0 for s in label_sets], dtype=np.int64
            )
            head = LogisticRegression(max_iter=self.max_iter)
            if y.min() == y.max():
                # Degenerate: label always (or never) present; a constant
                # head would crash the softmax target range, so remember
                # the constant instead.
                head = _ConstantHead(int(y[0]))
            else:
                head.fit(x, y)
            self._heads.append(head)
        return self

    def predict_proba(self, features) -> np.ndarray:
        """Per-label probabilities, shape ``(n, n_labels)``."""
        if self._heads is None:
            raise RuntimeError("OneVsRestClassifier must be fitted first")
        x = features if is_sparse(features) else np.asarray(features, dtype=np.float64)
        columns = []
        for head in self._heads:
            probs = head.predict_proba(x)
            columns.append(probs[:, 1] if probs.shape[1] == 2 else probs[:, 0])
        return np.column_stack(columns)

    def predict(self, features: np.ndarray) -> list[set[Hashable]]:
        """Label set per row (never empty when ``always_predict_top``)."""
        probs = self.predict_proba(features)
        results: list[set[Hashable]] = []
        for row in probs:
            chosen = {
                label for label, p in zip(self.labels, row) if p >= self.threshold
            }
            if not chosen and self.always_predict_top:
                chosen = {self.labels[int(row.argmax())]}
            results.append(chosen)
        return results


class _ConstantHead:
    """Stand-in head for a label that is constant in training data."""

    def __init__(self, value: int) -> None:
        self._value = float(value)

    def predict_proba(self, features) -> np.ndarray:
        n = features.shape[0] if is_sparse(features) else np.asarray(features).shape[0]
        positive = np.full(n, self._value)
        return np.column_stack([1.0 - positive, positive])


@dataclass(frozen=True)
class MultiLabelMetrics:
    """Standard multi-label scores."""

    subset_accuracy: float
    hamming_loss: float
    micro_f1: float
    macro_f1: float


def multilabel_metrics(
    gold: Sequence[set[Hashable]],
    predicted: Sequence[set[Hashable]],
    labels: Sequence[Hashable],
) -> MultiLabelMetrics:
    """Score predicted label sets against gold label sets.

    Parameters
    ----------
    gold / predicted:
        Equal-length sequences of label sets.
    labels:
        Full label universe (denominator of the Hamming loss and the
        per-label F1 average).

    Returns
    -------
    MultiLabelMetrics
        Subset accuracy, Hamming loss, micro and macro F1.

    Example
    -------
    >>> m = multilabel_metrics([{"a"}, {"a", "b"}], [{"a"}, {"b"}], ["a", "b"])
    >>> (m.subset_accuracy, m.hamming_loss)
    (0.5, 0.25)
    """
    if len(gold) != len(predicted):
        raise ValueError("gold and predicted length mismatch")
    if not gold:
        raise ValueError("nothing to score")
    n = len(gold)
    subset = sum(g == p for g, p in zip(gold, predicted)) / n
    hamming = sum(
        len(g.symmetric_difference(p)) for g, p in zip(gold, predicted)
    ) / (n * len(labels))

    tp_total = fp_total = fn_total = 0
    per_label_f1 = []
    for label in labels:
        tp = sum(label in g and label in p for g, p in zip(gold, predicted))
        fp = sum(label not in g and label in p for g, p in zip(gold, predicted))
        fn = sum(label in g and label not in p for g, p in zip(gold, predicted))
        tp_total += tp
        fp_total += fp
        fn_total += fn
        denominator = 2 * tp + fp + fn
        per_label_f1.append(2 * tp / denominator if denominator else 0.0)
    micro_denominator = 2 * tp_total + fp_total + fn_total
    micro = 2 * tp_total / micro_denominator if micro_denominator else 0.0
    return MultiLabelMetrics(
        subset_accuracy=subset,
        hamming_loss=hamming,
        micro_f1=micro,
        macro_f1=float(np.mean(per_label_f1)),
    )
