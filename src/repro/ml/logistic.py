"""Multinomial logistic regression trained by full-batch gradient descent.

The LR baseline from §III-A: softmax regression over TF-IDF features with
L2 regularisation, optimised with gradient descent plus Nesterov momentum
and a simple backtracking step size — dependency-free but converging to
the same optimum surface as scikit-learn's lbfgs solver.

Features may be dense ``numpy`` arrays or :class:`repro.sparse.CSRMatrix`
instances; the sparse path computes ``X @ W`` and the gradient
``X.T @ (probs - onehot)`` directly on the CSR structure, touching only
the stored non-zeros, and yields the same predictions as the dense path.
Because the full-batch solver multiplies the same matrix hundreds of
times, ``fit`` adaptively densifies small, not-sparse-enough matrices
where iterated BLAS products beat the sparse kernels (see
``_densify_for_training``); the result is numerically the same either
way.
"""

from __future__ import annotations

import numpy as np

from repro.sparse import CSRMatrix, is_sparse

__all__ = ["LogisticRegression", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilised.

    Parameters
    ----------
    logits:
        Array whose last axis holds unnormalised class scores.

    Returns
    -------
    numpy.ndarray
        Same shape as ``logits``; rows sum to 1.

    Example
    -------
    >>> softmax(np.array([[0.0, 0.0]])).tolist()
    [[0.5, 0.5]]
    """
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def _prepare_features(features) -> "CSRMatrix | np.ndarray":
    """Validate features and pass CSR through / densify everything else."""
    if is_sparse(features):
        return features
    x = np.asarray(features, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("features must be 2-D")
    return x


# Full-batch gradient descent multiplies the same matrix hundreds of
# times, so per-product overhead dominates.  Below ~2% density the
# sparse kernels win; above it BLAS on the densified matrix is faster,
# provided the dense form stays small (cells * 8 bytes <= ~128 MB).
_DENSE_TRAINING_DENSITY = 0.02
_DENSE_TRAINING_CELLS = 16_000_000


def _densify_for_training(x: "CSRMatrix | np.ndarray") -> "CSRMatrix | np.ndarray":
    """Densify a CSR matrix when iterated BLAS products will be faster.

    Numerically a no-op: the dense path computes exactly what the
    sparse path would (the stored values are the same matrix), so
    predictions do not depend on which kernel training used.
    """
    if (
        is_sparse(x)
        and x.density >= _DENSE_TRAINING_DENSITY
        and x.shape[0] * x.shape[1] <= _DENSE_TRAINING_CELLS
    ):
        return x.toarray()
    return x


def _add_intercept(x: "CSRMatrix | np.ndarray") -> "CSRMatrix | np.ndarray":
    """Append a constant-1 bias column in either representation."""
    if is_sparse(x):
        return x.with_intercept_column()
    return np.hstack([x, np.ones((x.shape[0], 1))])


def _matmul(x: "CSRMatrix | np.ndarray", weights: np.ndarray) -> np.ndarray:
    """``x @ weights`` for dense or CSR ``x`` (always a dense result)."""
    return x @ weights


def _grad_matmul(x: "CSRMatrix | np.ndarray", residual: np.ndarray) -> np.ndarray:
    """``x.T @ residual`` without materialising a transpose for CSR."""
    if is_sparse(x):
        return x.transpose_matmul(residual)
    return x.T @ residual


class LogisticRegression:
    """Softmax regression with L2 penalty.

    Parameters
    ----------
    c:
        Inverse regularisation strength (scikit-learn's ``C``).
    max_iter:
        Gradient steps.
    tol:
        Stop when the gradient's infinity norm falls below this.
    learning_rate:
        Initial step size; adapted by backtracking when a step would
        increase the loss.
    fit_intercept:
        Learn an unpenalised bias per class.

    Example
    -------
    >>> x = np.array([[0.0], [1.0], [2.0], [3.0]])
    >>> y = np.array([0, 0, 1, 1])
    >>> LogisticRegression(max_iter=200).fit(x, y).predict(x).tolist()
    [0, 0, 1, 1]
    """

    def __init__(
        self,
        *,
        c: float = 1.0,
        max_iter: int = 300,
        tol: float = 1e-5,
        learning_rate: float = 1.0,
        fit_intercept: bool = True,
    ) -> None:
        if c <= 0:
            raise ValueError("c must be positive")
        self.c = c
        self.max_iter = max_iter
        self.tol = tol
        self.learning_rate = learning_rate
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None
        self.n_classes_: int | None = None
        self.n_iter_: int = 0

    # ------------------------------------------------------------------
    def _loss_grad(
        self, weights: np.ndarray, x, onehot: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Mean cross-entropy + L2, and its gradient, for stacked weights."""
        n = x.shape[0]
        probs = softmax(_matmul(x, weights))
        eps = 1e-12
        data_loss = -np.log(probs[onehot.astype(bool)] + eps).mean()
        penalty_mask = np.ones_like(weights)
        if self.fit_intercept:
            penalty_mask[-1, :] = 0.0  # bias row unpenalised
        reg = 0.5 / self.c * float((penalty_mask * weights**2).sum()) / n
        grad = _grad_matmul(x, probs - onehot) / n + (penalty_mask * weights) / (
            self.c * n
        )
        return data_loss + reg, grad

    def fit(self, features, targets: np.ndarray) -> "LogisticRegression":
        """Fit on ``features`` (n, d) with integer ``targets`` (n,).

        Parameters
        ----------
        features:
            Dense ``(n, d)`` array or :class:`~repro.sparse.CSRMatrix`.
        targets:
            Integer class ids ``0 .. K-1``, shape ``(n,)``.

        Returns
        -------
        LogisticRegression
            ``self`` (fitted), for chaining.
        """
        x = _densify_for_training(_prepare_features(features))
        y = np.asarray(targets, dtype=np.int64)
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and targets length mismatch")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        n_classes = int(y.max()) + 1
        self.n_classes_ = n_classes
        if self.fit_intercept:
            x = _add_intercept(x)
        onehot = np.zeros((x.shape[0], n_classes))
        onehot[np.arange(x.shape[0]), y] = 1.0

        weights = np.zeros((x.shape[1], n_classes))
        velocity = np.zeros_like(weights)
        lr = self.learning_rate
        loss, grad = self._loss_grad(weights, x, onehot)
        for step in range(self.max_iter):
            self.n_iter_ = step + 1
            if np.abs(grad).max() < self.tol:
                break
            # Nesterov lookahead with backtracking on divergence.
            lookahead = weights + 0.9 * velocity
            _, grad_la = self._loss_grad(lookahead, x, onehot)
            candidate_velocity = 0.9 * velocity - lr * grad_la
            candidate = weights + candidate_velocity
            new_loss, new_grad = self._loss_grad(candidate, x, onehot)
            if new_loss > loss + 1e-10:
                lr *= 0.5
                velocity = np.zeros_like(weights)
                if lr < 1e-8:
                    break
                continue
            weights, velocity = candidate, candidate_velocity
            loss, grad = new_loss, new_grad

        if self.fit_intercept:
            self.coef_ = weights[:-1, :]
            self.intercept_ = weights[-1, :]
        else:
            self.coef_ = weights
            self.intercept_ = np.zeros(n_classes)
        return self

    # ------------------------------------------------------------------
    def decision_function(self, features) -> np.ndarray:
        """Raw class scores ``X @ W + b``, shape ``(n, n_classes)``."""
        if self.coef_ is None or self.intercept_ is None:
            raise RuntimeError("LogisticRegression must be fitted first")
        x = _prepare_features(features)
        return _matmul(x, self.coef_) + self.intercept_

    def predict_proba(self, features) -> np.ndarray:
        """Class probabilities, shape ``(n, n_classes)``."""
        return softmax(self.decision_function(features))

    def predict(self, features) -> np.ndarray:
        """Most probable class id per row."""
        return self.decision_function(features).argmax(axis=1)
