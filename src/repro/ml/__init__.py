"""Classic ML substrate: estimators, metrics, model selection.

The estimators accept either dense numpy features or the CSR matrices
produced by ``TfidfVectorizer(sparse_output=True)``
(:class:`repro.sparse.CSRMatrix`); both paths produce identical
predictions.
"""

from repro.ml.logistic import LogisticRegression, softmax
from repro.ml.metrics import (
    ClassificationReport,
    ClassMetrics,
    accuracy,
    classification_report,
    confusion_matrix,
    precision_recall_f1,
)
from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    cross_validate,
    train_test_split,
)
from repro.ml.multilabel import (
    MultiLabelMetrics,
    OneVsRestClassifier,
    multilabel_metrics,
)
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.preprocessing import LabelEncoder, StandardScaler
from repro.ml.svm import LinearSVM

__all__ = [
    "ClassMetrics",
    "ClassificationReport",
    "GaussianNaiveBayes",
    "KFold",
    "LabelEncoder",
    "LinearSVM",
    "LogisticRegression",
    "MultiLabelMetrics",
    "OneVsRestClassifier",
    "StandardScaler",
    "StratifiedKFold",
    "accuracy",
    "classification_report",
    "confusion_matrix",
    "cross_validate",
    "multilabel_metrics",
    "precision_recall_f1",
    "softmax",
    "train_test_split",
]
