"""Perplexity-rule engine: resolving multi-dimension posts.

Implements the operational half of §II-D.2.  Given a post whose text
touches several wellness dimensions, the engine detects the candidate
dimensions from lexicon evidence and resolves the *dominant* one using the
paper's rules: emphasis markers (rule 1), context clues from the span
sentence (rule 2), and lexical weight as the fallback.

The simulated annotators consult this engine, so their confusions arise
from genuinely ambiguous text, not from arbitrary label noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.labels import DIMENSIONS, WellnessDimension
from repro.corpus.lexicon import CORE_LEXICON, SUPPORT_LEXICON
from repro.corpus.templates import EMPHASIS_MARKERS
from repro.text.tokenize import sent_tokenize, word_tokenize

__all__ = [
    "DimensionEvidence",
    "PerplexityDecision",
    "detect_dimensions",
    "resolve_dominant",
]

# Words that identify each dimension, weighted: core lexicon words count
# double because they are the vocabulary annotators were trained on
# (Table I indicators ↔ Table III frequent words).
_CORE_WEIGHT = 2.0
_SUPPORT_WEIGHT = 1.0

# Vocabulary owned by several dimensions gets fractional weight so shared
# words ("feel", "anxiety") pull weakly toward each owner.
_WORD_WEIGHTS: dict[str, dict[WellnessDimension, float]] = {}
for _dim in DIMENSIONS:
    for _word in CORE_LEXICON[_dim]:
        _WORD_WEIGHTS.setdefault(_word, {})[_dim] = _CORE_WEIGHT
    for _word in SUPPORT_LEXICON[_dim]:
        _WORD_WEIGHTS.setdefault(_word, {}).setdefault(_dim, _SUPPORT_WEIGHT)
for _word, _owners in _WORD_WEIGHTS.items():
    if len(_owners) > 1:
        for _dim in _owners:
            _owners[_dim] /= len(_owners)


@dataclass(frozen=True)
class DimensionEvidence:
    """Lexical evidence for one dimension inside a post."""

    dimension: WellnessDimension
    score: float
    matched_words: tuple[str, ...]


@dataclass(frozen=True)
class PerplexityDecision:
    """Outcome of dominant-dimension resolution."""

    dominant: WellnessDimension
    candidates: tuple[DimensionEvidence, ...]
    rule_applied: int  # PERPLEXITY_RULES number that settled the call
    emphasized_sentence: str | None = None


def detect_dimensions(text: str) -> list[DimensionEvidence]:
    """Score every dimension's lexical evidence in ``text``.

    Returns evidence sorted by descending score; dimensions with zero
    evidence are omitted.
    """
    scores: dict[WellnessDimension, float] = {d: 0.0 for d in DIMENSIONS}
    matches: dict[WellnessDimension, list[str]] = {d: [] for d in DIMENSIONS}
    for token in word_tokenize(text):
        owners = _WORD_WEIGHTS.get(token)
        if not owners:
            continue
        for dim, weight in owners.items():
            scores[dim] += weight
            matches[dim].append(token)
    evidence = [
        DimensionEvidence(dim, scores[dim], tuple(matches[dim]))
        for dim in DIMENSIONS
        if scores[dim] > 0.0
    ]
    evidence.sort(key=lambda e: (-e.score, e.dimension.code))
    return evidence


def _emphasized_sentence(text: str) -> str | None:
    """The sentence introduced by an emphasis marker, if any (rule 1)."""
    lowered_markers = tuple(m.lower() for m in EMPHASIS_MARKERS)
    for sentence in sent_tokenize(text):
        lower = sentence.lower()
        if any(marker in lower for marker in lowered_markers):
            return sentence
    return None


def resolve_dominant(text: str) -> PerplexityDecision:
    """Apply the perplexity rules to find the post's dominant dimension.

    Resolution order mirrors §II-D.2:

    1. If an emphasis marker highlights a sentence, the strongest
       dimension *within that sentence* wins (rule 1).
    2. Otherwise, if the lexical scores have a clear leader over the whole
       post, it wins (rule 2 — context decides).
    3. Ties fall back to the first-mentioned dimension (narratives lead
       with what matters most), still under rule 2.
    """
    candidates = detect_dimensions(text)
    if not candidates:
        raise ValueError("no wellness-dimension evidence found in text")

    emphasized = _emphasized_sentence(text)
    if emphasized is not None:
        local = detect_dimensions(emphasized)
        if local:
            return PerplexityDecision(
                dominant=local[0].dimension,
                candidates=tuple(candidates),
                rule_applied=1,
                emphasized_sentence=emphasized,
            )

    best = candidates[0]
    if len(candidates) == 1 or best.score > candidates[1].score:
        return PerplexityDecision(
            dominant=best.dimension,
            candidates=tuple(candidates),
            rule_applied=2,
        )

    # Tie: first mention in the running text wins.
    tied = {c.dimension for c in candidates if c.score == best.score}
    for token in word_tokenize(text):
        owners = _WORD_WEIGHTS.get(token, {})
        for dim in owners:
            if dim in tied:
                return PerplexityDecision(
                    dominant=dim,
                    candidates=tuple(candidates),
                    rule_applied=2,
                )
    return PerplexityDecision(  # pragma: no cover - tie always has a mention
        dominant=best.dimension,
        candidates=tuple(candidates),
        rule_applied=2,
    )
