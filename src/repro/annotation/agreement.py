"""Inter-annotator agreement statistics.

The paper reports Fleiss' kappa = 75.92% over two trained annotators
(§II-E).  This module implements Fleiss' kappa for any number of raters,
Cohen's kappa for exactly two, and raw percent agreement.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Sequence

import numpy as np

__all__ = ["fleiss_kappa", "cohen_kappa", "percent_agreement", "rating_matrix"]


def rating_matrix(
    ratings: Sequence[Sequence[Hashable]],
    categories: Sequence[Hashable],
) -> np.ndarray:
    """Build the ``n_items x n_categories`` count matrix Fleiss' kappa uses.

    ``ratings[i]`` holds the labels every rater assigned to item ``i``;
    every item must have the same number of ratings.
    """
    if not ratings:
        raise ValueError("ratings must be non-empty")
    n_raters = len(ratings[0])
    if n_raters < 2:
        raise ValueError("need at least two raters per item")
    index = {c: j for j, c in enumerate(categories)}
    matrix = np.zeros((len(ratings), len(categories)), dtype=np.int64)
    for i, item_ratings in enumerate(ratings):
        if len(item_ratings) != n_raters:
            raise ValueError(
                f"item {i} has {len(item_ratings)} ratings, expected {n_raters}"
            )
        for label in item_ratings:
            if label not in index:
                raise ValueError(f"label {label!r} not in categories")
            matrix[i, index[label]] += 1
    return matrix


def fleiss_kappa(matrix: np.ndarray) -> float:
    """Fleiss' kappa from an ``n_items x n_categories`` count matrix.

    Follows Fleiss (1971): observed agreement is the mean per-item pairwise
    agreement; expected agreement is the sum of squared category shares.
    Returns 1.0 when raters agree perfectly (including the degenerate
    single-category case where chance agreement is also perfect).
    """
    counts = np.asarray(matrix, dtype=np.float64)
    if counts.ndim != 2:
        raise ValueError("matrix must be 2-dimensional")
    n_items, _ = counts.shape
    raters_per_item = counts.sum(axis=1)
    if n_items == 0:
        raise ValueError("matrix must have at least one item")
    n_raters = raters_per_item[0]
    if n_raters < 2 or not np.all(raters_per_item == n_raters):
        raise ValueError("every item needs the same number (>=2) of ratings")

    p_item = (np.square(counts).sum(axis=1) - n_raters) / (n_raters * (n_raters - 1))
    p_observed = float(p_item.mean())
    shares = counts.sum(axis=0) / (n_items * n_raters)
    p_expected = float(np.square(shares).sum())
    if p_expected >= 1.0:
        return 1.0
    return (p_observed - p_expected) / (1.0 - p_expected)


def cohen_kappa(
    labels_a: Sequence[Hashable], labels_b: Sequence[Hashable]
) -> float:
    """Cohen's kappa between two raters' label sequences."""
    if len(labels_a) != len(labels_b):
        raise ValueError("label sequences must have equal length")
    if not labels_a:
        raise ValueError("label sequences must be non-empty")
    n = len(labels_a)
    observed = sum(a == b for a, b in zip(labels_a, labels_b)) / n
    freq_a = Counter(labels_a)
    freq_b = Counter(labels_b)
    expected = sum(
        (freq_a[c] / n) * (freq_b.get(c, 0) / n) for c in freq_a
    )
    if expected >= 1.0:
        return 1.0
    return (observed - expected) / (1.0 - expected)


def percent_agreement(
    labels_a: Sequence[Hashable], labels_b: Sequence[Hashable]
) -> float:
    """Fraction of items the two raters label identically."""
    if len(labels_a) != len(labels_b):
        raise ValueError("label sequences must have equal length")
    if not labels_a:
        raise ValueError("label sequences must be non-empty")
    return sum(a == b for a, b in zip(labels_a, labels_b)) / len(labels_a)
