"""Machine-readable annotation and perplexity guidelines (§II-D).

The paper publishes seven data-annotation guidelines and six perplexity
guidelines.  Encoding them as data (rather than prose buried in a README)
lets the annotation simulator reference the exact rule it applied, the
Fig. 2 experiment print the framework, and tests assert the guideline set
is complete.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Guideline",
    "PerplexityRule",
    "ANNOTATION_GUIDELINES",
    "PERPLEXITY_RULES",
]


@dataclass(frozen=True)
class Guideline:
    """One §II-D.1 annotation guideline."""

    number: int
    title: str
    text: str


@dataclass(frozen=True)
class PerplexityRule:
    """One §II-D.2 perplexity rule with the paper's worked example."""

    number: int
    title: str
    text: str
    example_text: str
    example_resolution: str


ANNOTATION_GUIDELINES: tuple[Guideline, ...] = (
    Guideline(
        1,
        "Identify relevant text spans",
        "Identify relevant text spans in the posts: words or phrases that "
        "describe thoughts, actions or feelings linked to a wellness "
        "dimension.",
    ),
    Guideline(
        2,
        "Handle overlaps",
        "Initially label all the relevant dimensions if a text span fits "
        "multiple dimensions; later, based on perplexity guidelines, the "
        "key dimension will be determined and assigned.",
    ),
    Guideline(
        3,
        "Be specific",
        "Annotations should be specific: the exact words or phrases that "
        "indicate a wellness dimension should be highlighted.",
    ),
    Guideline(
        4,
        "Focus long posts",
        "If the post is very lengthy, focus on text that shows how the "
        "dimension impacts mental well-being.",
    ),
    Guideline(
        5,
        "Avoid assumptions",
        "Only annotate what is explicitly stated or strongly implied; "
        "avoid assumptions.",
    ),
    Guideline(
        6,
        "Record complete entries",
        "Each annotated text entry should include the text (user's social "
        "media post), the text span (key phrases in the text), and the "
        "wellness dimension (one of the six labels).",
    ),
    Guideline(
        7,
        "Check annotation quality",
        "Determine annotation quality by having a second annotator review "
        "20% of the entries and discussing ambiguous cases to refine the "
        "guidelines.",
    ),
)


PERPLEXITY_RULES: tuple[PerplexityRule, ...] = (
    PerplexityRule(
        1,
        "Prioritize Dominant Dimensions",
        "If a text spans multiple wellness dimensions, label all relevant "
        "ones but highlight the most dominant, based on context or "
        "emphasis.",
        "My volunteer work (Vocational) helps me connect with others "
        "(Social), but I'm exhausted (Physical).",
        "Labels: Vocational (dominant), Social, Physical.",
    ),
    PerplexityRule(
        2,
        "Resolve Ambiguity with Context Clues",
        "If the meaning is unclear, use surrounding sentences to infer the "
        "dimension.",
        "I feel overwhelmed. (Previous sentence: my boss gave me three "
        "deadlines.)",
        "Label: Vocational.",
    ),
    PerplexityRule(
        3,
        "Break Down Compound Sentences",
        "Split sentences with multiple independent clauses into separate "
        "annotations.",
        "I journal to manage stress (Emotional), but my poor diet "
        "(Physical) isn't helping.",
        "Split into two entries.",
    ),
    PerplexityRule(
        4,
        "Avoid Overinterpreting Metaphors/Sarcasm",
        "Label metaphors or sarcasm literally unless the tone is obvious.",
        "Oh yeah, my 'healthy' routine of 2 hours of sleep is working "
        "great!",
        "Label: Physical (negatively impacted).",
    ),
    PerplexityRule(
        5,
        "Label Implicit Meanings Sparingly",
        "Only label implied wellness aspects if strongly supported by "
        "context; avoid guessing.",
        "I haven't left my room in days.",
        "Implicit labels: Social (isolation), Physical (inactivity).",
    ),
    PerplexityRule(
        6,
        "Validate Annotations with Team Consensus",
        "Discuss 10% of ambiguous cases as a team to align "
        "interpretations; update guidelines based on recurring dilemmas.",
        "(recurring ambiguous cases)",
        "Team discussion; guideline update.",
    ),
)
