"""Simulated student annotators.

The paper trained two student annotators who labelled every post
independently, reaching Fleiss' kappa = 75.92% (§II-E).  Humans being
unavailable offline, this module simulates them: each annotator follows
the perplexity engine on clear posts and wavers on genuinely ambiguous
ones (posts whose text carries secondary-dimension vocabulary), with a
per-annotator reliability and bias profile.

Confusions therefore concentrate exactly where §IV says they did — the
Social/Emotional and Spiritual/Emotional boundaries — rather than being
uniform label noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.annotation.perplexity import resolve_dominant
from repro.core.instance import AnnotatedInstance, Span
from repro.core.labels import WellnessDimension, dimension_from_code
from repro.corpus.lexicon import SECONDARY_BLEED
from repro.text.tokenize import sent_tokenize

__all__ = ["Annotation", "SimulatedAnnotator"]


@dataclass(frozen=True)
class Annotation:
    """One annotator's labelling of one post."""

    post_id: str
    label: WellnessDimension
    span_text: str
    confident: bool


@dataclass
class SimulatedAnnotator:
    """A rule-following annotator with human-like wavering.

    Parameters
    ----------
    name:
        Annotator identifier (appears in agreement reports).
    seed:
        Personal randomness; two annotators must use different seeds.
    clear_accuracy:
        Probability of following the gold label on a post with no
        secondary-dimension content.
    ambiguous_accuracy:
        Probability of resolving a multi-dimension post to the gold
        dominant dimension; otherwise the annotator picks a plausible
        secondary dimension (the §IV confusion mechanism).
    """

    name: str
    seed: int
    clear_accuracy: float = 0.97
    ambiguous_accuracy: float = 0.76
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.clear_accuracy <= 1.0:
            raise ValueError("clear_accuracy must be in [0, 1]")
        if not 0.0 <= self.ambiguous_accuracy <= 1.0:
            raise ValueError("ambiguous_accuracy must be in [0, 1]")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    def annotate(self, instance: AnnotatedInstance) -> Annotation:
        """Label one post and select its explanation span."""
        secondary = self._secondary_dimensions(instance)
        if secondary:
            correct = self._rng.random() < self.ambiguous_accuracy
            label = instance.label if correct else self._confused_label(
                instance, secondary
            )
        else:
            correct = self._rng.random() < self.clear_accuracy
            label = instance.label if correct else self._confused_label(
                instance, secondary
            )
        span_text = (
            instance.span_text if label == instance.label else self._fallback_span(
                instance
            )
        )
        return Annotation(
            post_id=instance.post.post_id,
            label=label,
            span_text=span_text,
            confident=correct and not secondary,
        )

    def annotate_all(self, instances: list[AnnotatedInstance]) -> list[Annotation]:
        """Label every post independently, in order."""
        return [self.annotate(inst) for inst in instances]

    # ------------------------------------------------------------------
    def _secondary_dimensions(
        self, instance: AnnotatedInstance
    ) -> list[WellnessDimension]:
        codes = instance.metadata.get("secondary_dims", [])
        return [dimension_from_code(c) for c in codes]

    def _confused_label(
        self,
        instance: AnnotatedInstance,
        secondary: list[WellnessDimension],
    ) -> WellnessDimension:
        """A plausible wrong label.

        Prefers a secondary dimension actually present in the text; falls
        back to the bleed matrix, then to the perplexity engine's second
        candidate.
        """
        if secondary:
            return secondary[int(self._rng.integers(len(secondary)))]
        bleed = SECONDARY_BLEED[instance.label]
        dims = list(bleed)
        probs = np.asarray([bleed[d] for d in dims], dtype=float)
        choice = int(self._rng.choice(len(dims), p=probs / probs.sum()))
        candidate = dims[choice]
        if candidate != instance.label:
            return candidate
        decision = resolve_dominant(instance.text)  # pragma: no cover - fallback
        for evidence in decision.candidates:  # pragma: no cover
            if evidence.dimension != instance.label:
                return evidence.dimension
        return instance.label  # pragma: no cover

    def _fallback_span(self, instance: AnnotatedInstance) -> str:
        """Span selected when the annotator mislabels: a non-gold sentence.

        A confused annotator highlights the sentence that misled them —
        the one carrying secondary-dimension vocabulary — or, failing
        that, the gold span (they at least found the salient text).
        """
        gold_span = instance.span_text
        for sentence in sent_tokenize(instance.text):
            if gold_span not in sentence:
                return sentence.rstrip(".!?")
        return gold_span


def make_annotation_instance(
    instance: AnnotatedInstance, annotation: Annotation
) -> AnnotatedInstance:
    """Materialise an annotator's view of a post as an instance.

    Useful for building alternative gold standards (e.g. adjudication
    studies).  The span is located inside the post text; if the annotator
    span drifted, it falls back to the gold span.
    """
    try:
        span = Span.locate(instance.post.text, annotation.span_text)
    except ValueError:
        span = instance.span
    return AnnotatedInstance(
        post=instance.post,
        span=span,
        label=annotation.label,
        metadata={**instance.metadata, "annotator": annotation.post_id},
    )
