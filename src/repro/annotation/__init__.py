"""Annotation framework substrate: guidelines, simulated annotators, agreement."""

from repro.annotation.agreement import (
    cohen_kappa,
    fleiss_kappa,
    percent_agreement,
    rating_matrix,
)
from repro.annotation.annotator import Annotation, SimulatedAnnotator
from repro.annotation.guidelines import (
    ANNOTATION_GUIDELINES,
    PERPLEXITY_RULES,
    Guideline,
    PerplexityRule,
)
from repro.annotation.perplexity import (
    DimensionEvidence,
    PerplexityDecision,
    detect_dimensions,
    resolve_dominant,
)
from repro.annotation.task import (
    AgreementReport,
    AnnotationTask,
    run_annotation_study,
)

__all__ = [
    "ANNOTATION_GUIDELINES",
    "AgreementReport",
    "Annotation",
    "AnnotationTask",
    "DimensionEvidence",
    "Guideline",
    "PERPLEXITY_RULES",
    "PerplexityDecision",
    "PerplexityRule",
    "SimulatedAnnotator",
    "cohen_kappa",
    "detect_dimensions",
    "fleiss_kappa",
    "percent_agreement",
    "rating_matrix",
    "resolve_dominant",
    "run_annotation_study",
]
