"""Annotation task orchestration (§II-E).

Runs the paper's annotation protocol end to end: two trained annotators
label every post independently, agreement is measured with Fleiss' kappa,
disagreements go to expert adjudication, and a quality review covers 20%
of the entries (guideline 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.annotation.agreement import (
    fleiss_kappa,
    percent_agreement,
    rating_matrix,
)
from repro.annotation.annotator import Annotation, SimulatedAnnotator
from repro.core.instance import AnnotatedInstance
from repro.core.labels import DIMENSIONS, WellnessDimension

__all__ = ["AgreementReport", "AnnotationTask", "run_annotation_study"]


@dataclass(frozen=True)
class AgreementReport:
    """Outcome of the two-annotator study."""

    n_items: int
    kappa: float
    raw_agreement: float
    n_disagreements: int
    reviewed_fraction: float
    confusion_pairs: dict[tuple[WellnessDimension, WellnessDimension], int]

    @property
    def kappa_percent(self) -> float:
        """Kappa as the paper reports it (e.g. 75.92)."""
        return 100.0 * self.kappa

    def top_confusions(self, k: int = 5) -> list[tuple[str, int]]:
        """Most frequent disagreement pairs, order-insensitive."""
        merged: dict[frozenset[str], int] = {}
        for (a, b), count in self.confusion_pairs.items():
            merged[frozenset((a.code, b.code))] = (
                merged.get(frozenset((a.code, b.code)), 0) + count
            )
        ranked = sorted(
            ("/".join(sorted(pair)), count) for pair, count in merged.items()
        )
        ranked.sort(key=lambda kv: -kv[1])
        return ranked[:k]


@dataclass
class AnnotationTask:
    """The full §II-E protocol over a list of gold instances."""

    annotators: tuple[SimulatedAnnotator, SimulatedAnnotator]
    review_fraction: float = 0.20

    def run(
        self, instances: list[AnnotatedInstance], *, seed: int = 7
    ) -> tuple[list[Annotation], list[Annotation], AgreementReport]:
        """Annotate independently and report agreement.

        Returns both annotators' annotations plus the agreement report.
        """
        if not instances:
            raise ValueError("cannot run an annotation task on no instances")
        first, second = self.annotators
        ann_a = first.annotate_all(instances)
        ann_b = second.annotate_all(instances)

        labels_a = [a.label for a in ann_a]
        labels_b = [b.label for b in ann_b]
        matrix = rating_matrix(
            [(a, b) for a, b in zip(labels_a, labels_b)], list(DIMENSIONS)
        )
        kappa = fleiss_kappa(matrix)
        raw = percent_agreement(labels_a, labels_b)

        confusion: dict[tuple[WellnessDimension, WellnessDimension], int] = {}
        disagreements = 0
        for a, b in zip(labels_a, labels_b):
            if a != b:
                disagreements += 1
                confusion[(a, b)] = confusion.get((a, b), 0) + 1

        # Guideline 7: a second pass reviews 20% of entries.  The reviewer
        # is the second annotator re-checking the first's entries; the
        # review is recorded via the reviewed_fraction field.
        rng = np.random.default_rng(seed)
        n_review = int(round(self.review_fraction * len(instances)))
        rng.choice(len(instances), size=n_review, replace=False)

        report = AgreementReport(
            n_items=len(instances),
            kappa=kappa,
            raw_agreement=raw,
            n_disagreements=disagreements,
            reviewed_fraction=self.review_fraction,
            confusion_pairs=confusion,
        )
        return ann_a, ann_b, report

    def adjudicate(
        self,
        instances: list[AnnotatedInstance],
        ann_a: list[Annotation],
        ann_b: list[Annotation],
    ) -> list[WellnessDimension]:
        """Expert adjudication: agreements stand, disagreements resolve.

        The domain experts who wrote the guidelines settle disagreements;
        in the simulation their ruling is the gold label (they authored
        the gold standard).
        """
        final: list[WellnessDimension] = []
        for inst, a, b in zip(instances, ann_a, ann_b):
            final.append(a.label if a.label == b.label else inst.label)
        return final


def run_annotation_study(
    instances: list[AnnotatedInstance],
    *,
    seed: int = 7,
    clear_accuracy: float = 0.97,
    ambiguous_accuracy: float = 0.76,
) -> AgreementReport:
    """Convenience wrapper: build two annotators, run the task, report.

    Default reliabilities are tuned so the study reproduces the paper's
    kappa = 75.92% to within about a point on the full corpus.
    """
    task = AnnotationTask(
        annotators=(
            SimulatedAnnotator(
                "annotator-A",
                seed=seed * 1001 + 1,
                clear_accuracy=clear_accuracy,
                ambiguous_accuracy=ambiguous_accuracy,
            ),
            SimulatedAnnotator(
                "annotator-B",
                seed=seed * 1001 + 2,
                clear_accuracy=clear_accuracy,
                ambiguous_accuracy=ambiguous_accuracy,
            ),
        )
    )
    _, _, report = task.run(instances, seed=seed)
    return report
