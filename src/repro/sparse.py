"""From-scratch CSR (compressed sparse row) matrix for TF-IDF features.

TF-IDF matrices over the Holistix corpus are ~95% zeros (a post
mentions a few dozen terms out of a few-thousand-term vocabulary), so
materialising them densely wastes both memory and the flops every
classifier then spends multiplying zeros.  :class:`CSRMatrix` stores
only the non-zero entries in the standard three-array layout
(``data``/``indices``/``indptr``) and implements exactly the operations
the pipeline needs:

* ``csr @ dense`` products (classifier forward passes),
* transposed products ``csr.T @ dense`` (logistic-regression gradients),
* per-row access (Pegasos SGD updates),
* column scaling and L2 row normalisation (the TF-IDF weighting),
* row selection and column moments (per-class Gaussian NB statistics).

Everything is numpy-vectorised over the non-zeros; there is no
per-element Python loop on any hot path.

Example
-------
>>> import numpy as np
>>> from repro.sparse import CSRMatrix
>>> dense = np.array([[0.0, 2.0], [3.0, 0.0]])
>>> m = CSRMatrix.from_dense(dense)
>>> m.nnz
2
>>> np.allclose(m @ np.eye(2), dense)
True
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["CSRMatrix", "is_sparse", "as_dense"]


class CSRMatrix:
    """A read-mostly sparse matrix in compressed sparse row format.

    Parameters
    ----------
    data:
        Non-zero values, row-major (``float64``).
    indices:
        Column index of each value in ``data``.
    indptr:
        Row boundaries: row ``i`` owns ``data[indptr[i]:indptr[i + 1]]``.
    shape:
        ``(n_rows, n_cols)``.  ``n_cols`` may exceed ``indices.max() + 1``
        (trailing all-zero columns are representable).

    Notes
    -----
    Instances are treated as immutable by every consumer; operations
    return new matrices (or fresh dense arrays) rather than mutating.
    """

    __slots__ = ("data", "indices", "indptr", "shape", "_row_nnz")

    def __init__(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        shape: tuple[int, int],
    ) -> None:
        data = np.asarray(data, dtype=np.float64)
        indices = np.asarray(indices, dtype=np.int64)
        indptr = np.asarray(indptr, dtype=np.int64)
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if data.ndim != 1 or indices.ndim != 1 or indptr.ndim != 1:
            raise ValueError("data, indices and indptr must be 1-D")
        if data.shape[0] != indices.shape[0]:
            raise ValueError("data and indices length mismatch")
        if indptr.shape[0] != n_rows + 1:
            raise ValueError(f"indptr must have {n_rows + 1} entries")
        if indptr[0] != 0 or indptr[-1] != data.shape[0]:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indices.size and (indices.min() < 0 or indices.max() >= n_cols):
            raise ValueError("column index out of range")
        self.data = data
        self.indices = indices
        self.indptr = indptr
        self.shape = (n_rows, n_cols)
        self._row_nnz: np.ndarray | None = None  # lazy row index per nnz

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, array: np.ndarray) -> "CSRMatrix":
        """Compress a dense 2-D array (exact: keeps every non-zero)."""
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        mask = array != 0.0
        indptr = np.zeros(array.shape[0] + 1, dtype=np.int64)
        np.cumsum(mask.sum(axis=1), out=indptr[1:])
        rows, cols = np.nonzero(mask)
        return cls(array[rows, cols], cols, indptr, array.shape)

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[tuple[np.ndarray, np.ndarray]],
        n_cols: int,
    ) -> "CSRMatrix":
        """Assemble from per-row ``(column indices, values)`` pairs.

        Each row contributes one ``(cols, vals)`` pair; empty rows
        contribute empty arrays.  Columns within a row need not be
        sorted.  (``TfidfVectorizer.transform_sparse`` builds its
        arrays flat for speed; this constructor is the convenient
        general-purpose equivalent.)
        """
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum([len(cols) for cols, _ in rows], out=indptr[1:])
        if rows:
            indices = np.concatenate(
                [np.asarray(cols, dtype=np.int64) for cols, _ in rows]
            )
            data = np.concatenate(
                [np.asarray(vals, dtype=np.float64) for _, vals in rows]
            )
        else:
            indices = np.zeros(0, dtype=np.int64)
            data = np.zeros(0, dtype=np.float64)
        return cls(data, indices, indptr, (len(rows), n_cols))

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) entries."""
        return int(self.data.shape[0])

    @property
    def density(self) -> float:
        """Fraction of cells that are stored."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.data.copy(), self.indices.copy(), self.indptr.copy(), self.shape
        )

    def toarray(self) -> np.ndarray:
        """Densify to a ``(n_rows, n_cols)`` float64 array.

        Duplicate column indices within a row are **summed** (scipy
        semantics), matching what the product/sum kernels compute, so
        dense and sparse consumers always see the same matrix.  Norm
        and scaling operations still treat duplicates as separate
        entries — producers should emit unique columns per row.
        """
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, (self._row_of_nnz(), self.indices), self.data)
        return out

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of row ``i``'s ``(column indices, values)``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def _row_of_nnz(self) -> np.ndarray:
        """Row index of every stored entry, shape ``(nnz,)`` (cached)."""
        if self._row_nnz is None:
            self._row_nnz = np.repeat(
                np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
            )
        return self._row_nnz

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3f})"
        )

    # ------------------------------------------------------------------
    # Products
    # ------------------------------------------------------------------
    def __matmul__(self, other: np.ndarray) -> np.ndarray:
        """``self @ other`` against a dense vector/matrix → dense result.

        Each output column is a segment sum of the per-nnz contributions
        grouped by row, computed with ``np.bincount`` (one C pass per
        output column — measured faster than ``reduceat``/cumsum
        variants at TF-IDF sizes).
        """
        other = np.asarray(other, dtype=np.float64)
        if other.shape[0] != self.shape[1]:
            raise ValueError(
                f"shape mismatch: {self.shape} @ {other.shape}"
            )
        vector = other.ndim == 1
        if vector:
            other = other[:, None]
        rows = self._row_of_nnz()
        gathered = other[self.indices]
        out = np.empty((self.shape[0], other.shape[1]), dtype=np.float64)
        for j in range(other.shape[1]):
            out[:, j] = np.bincount(
                rows, weights=self.data * gathered[:, j], minlength=self.shape[0]
            )
        return out[:, 0] if vector else out

    def transpose_matmul(self, other: np.ndarray) -> np.ndarray:
        """``self.T @ other`` against a dense matrix → dense ``(n_cols, k)``.

        The logistic-regression gradient ``X.T @ (probs - onehot)``
        without ever forming ``X.T``: contributions are accumulated per
        column index with ``np.bincount``.
        """
        other = np.asarray(other, dtype=np.float64)
        if other.shape[0] != self.shape[0]:
            raise ValueError(
                f"shape mismatch: {self.shape}.T @ {other.shape}"
            )
        vector = other.ndim == 1
        if vector:
            other = other[:, None]
        gathered = other[self._row_of_nnz()]
        out = np.empty((self.shape[1], other.shape[1]), dtype=np.float64)
        for j in range(other.shape[1]):
            out[:, j] = np.bincount(
                self.indices,
                weights=self.data * gathered[:, j],
                minlength=self.shape[1],
            )
        return out[:, 0] if vector else out

    # ------------------------------------------------------------------
    # Rescaling
    # ------------------------------------------------------------------
    def scale_columns(self, factors: np.ndarray) -> "CSRMatrix":
        """New matrix with column ``j`` multiplied by ``factors[j]``."""
        factors = np.asarray(factors, dtype=np.float64)
        if factors.shape != (self.shape[1],):
            raise ValueError("factors must have one entry per column")
        return CSRMatrix(
            self.data * factors[self.indices], self.indices, self.indptr, self.shape
        )

    def row_norms(self) -> np.ndarray:
        """L2 norm of every row, shape ``(n_rows,)``."""
        running = np.zeros(self.nnz + 1, dtype=np.float64)
        np.cumsum(self.data**2, out=running[1:])
        return np.sqrt(running[self.indptr[1:]] - running[self.indptr[:-1]])

    def normalized_rows(self) -> "CSRMatrix":
        """New matrix with unit-L2 rows (all-zero rows stay zero)."""
        norms = self.row_norms()
        scale = np.where(norms > 0, 1.0 / np.where(norms > 0, norms, 1.0), 0.0)
        return CSRMatrix(
            self.data * np.repeat(scale, np.diff(self.indptr)),
            self.indices,
            self.indptr,
            self.shape,
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def select_rows(self, row_indices: np.ndarray) -> "CSRMatrix":
        """New matrix keeping ``row_indices`` (in the given order)."""
        row_indices = np.asarray(row_indices, dtype=np.int64)
        lengths = self.indptr[row_indices + 1] - self.indptr[row_indices]
        indptr = np.zeros(len(row_indices) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        take = np.concatenate(
            [np.arange(self.indptr[i], self.indptr[i + 1]) for i in row_indices]
        ) if len(row_indices) else np.zeros(0, dtype=np.int64)
        return CSRMatrix(
            self.data[take],
            self.indices[take],
            indptr,
            (len(row_indices), self.shape[1]),
        )

    def with_intercept_column(self) -> "CSRMatrix":
        """New matrix with a constant-1 column appended (bias feature)."""
        n_rows, n_cols = self.shape
        positions = self.indptr[1:]
        data = np.insert(self.data, positions, 1.0)
        indices = np.insert(self.indices, positions, n_cols)
        indptr = self.indptr + np.arange(n_rows + 1, dtype=np.int64)
        return CSRMatrix(data, indices, indptr, (n_rows, n_cols + 1))

    # ------------------------------------------------------------------
    # Column moments (Gaussian NB statistics)
    # ------------------------------------------------------------------
    def column_sums(self) -> np.ndarray:
        """Sum of every column, shape ``(n_cols,)``."""
        return np.bincount(
            self.indices, weights=self.data, minlength=self.shape[1]
        )

    def column_means(self) -> np.ndarray:
        """Mean of every column (zeros included), shape ``(n_cols,)``."""
        if self.shape[0] == 0:
            raise ValueError("mean of an empty matrix")
        return self.column_sums() / self.shape[0]

    def column_moments(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-column ``(mean, variance)`` with zeros included.

        Variance uses ``E[x^2] - E[x]^2`` (clipped at 0 against rounding),
        which needs only one pass over the stored entries.
        """
        if self.shape[0] == 0:
            raise ValueError("moments of an empty matrix")
        mean = self.column_means()
        sq = np.bincount(
            self.indices, weights=self.data**2, minlength=self.shape[1]
        )
        var = np.maximum(sq / self.shape[0] - mean**2, 0.0)
        return mean, var


def is_sparse(features: object) -> bool:
    """True when ``features`` is a :class:`CSRMatrix`."""
    return isinstance(features, CSRMatrix)


def as_dense(features: "CSRMatrix | np.ndarray") -> np.ndarray:
    """Densify a CSR matrix; pass dense input through as float64."""
    if isinstance(features, CSRMatrix):
        return features.toarray()
    return np.asarray(features, dtype=np.float64)
