"""Scoring LIME explanations against gold spans (Table V).

The paper "calculate[s] the similarity score between the LIME-generated
predictions and the annotated explanation spans using keywords", reporting
F1/precision/recall plus ROUGE and BLEU.  Here: the LIME explanation's
top-k keywords are compared with the gold span's content words as sets
(P/R/F1) and as text (ROUGE-1 F, BLEU).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.explain.bleu import bleu
from repro.explain.lime import Explanation
from repro.explain.rouge import rouge_n
from repro.text.stopwords import FUNCTION_WORDS
from repro.text.tokenize import word_tokenize

__all__ = ["SpanSimilarity", "keyword_similarity", "score_explanations"]


@dataclass(frozen=True)
class SpanSimilarity:
    """Table V row: keyword overlap + text-similarity metrics."""

    f1: float
    precision: float
    recall: float
    rouge: float
    bleu: float


def _content_words(text: str) -> set[str]:
    return {t for t in word_tokenize(text) if t not in FUNCTION_WORDS}


def keyword_similarity(
    explanation_keywords: Sequence[str], gold_span: str
) -> tuple[float, float, float]:
    """Set precision/recall/F1 of keywords against the span's content words."""
    predicted = {k.lower() for k in explanation_keywords}
    gold = _content_words(gold_span)
    if not predicted or not gold:
        return 0.0, 0.0, 0.0
    overlap = len(predicted & gold)
    precision = overlap / len(predicted)
    recall = overlap / len(gold)
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return precision, recall, f1


def score_explanations(
    explanations: Sequence[Explanation],
    gold_spans: Sequence[str],
    *,
    top_k: int = 10,
    bleu_max_n: int = 2,
) -> SpanSimilarity:
    """Average Table V metrics over a set of explained posts."""
    if len(explanations) != len(gold_spans):
        raise ValueError("explanations and gold spans length mismatch")
    if not explanations:
        raise ValueError("nothing to score")
    precisions, recalls, f1s, rouges, bleus = [], [], [], [], []
    for explanation, gold in zip(explanations, gold_spans):
        keywords = explanation.top_words(top_k)
        precision, recall, f1 = keyword_similarity(keywords, gold)
        keyword_text = " ".join(keywords)
        precisions.append(precision)
        recalls.append(recall)
        f1s.append(f1)
        rouges.append(rouge_n(keyword_text, gold, 1).f1)
        bleus.append(bleu(keyword_text, gold, max_n=bleu_max_n))
    n = len(explanations)
    return SpanSimilarity(
        f1=sum(f1s) / n,
        precision=sum(precisions) / n,
        recall=sum(recalls) / n,
        rouge=sum(rouges) / n,
        bleu=sum(bleus) / n,
    )
