"""Explanation-span prediction (the paper's §V future work).

The paper plans to "leverage explanation span predictions to further
enhance model explainability".  This module implements the natural first
system: given a post and its (predicted) wellness dimension, rank the
post's sentences by how strongly they express that dimension and return
the best one as the predicted explanation span.

Scoring combines the perplexity engine's lexical evidence with an
optional classifier-probability drop test (how much the predicted class
probability falls when the sentence is removed — an occlusion saliency).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from repro.annotation.perplexity import detect_dimensions
from repro.core.labels import WellnessDimension
from repro.explain.rouge import rouge_l, rouge_n
from repro.text.tokenize import sent_tokenize

__all__ = ["SpanPrediction", "SpanPredictor", "evaluate_span_predictions"]


@dataclass(frozen=True)
class SpanPrediction:
    """A predicted explanation span with its per-sentence scores."""

    text: str
    span: str
    sentence_scores: tuple[tuple[str, float], ...]


class SpanPredictor:
    """Rank sentences as explanation-span candidates.

    Parameters
    ----------
    predict_proba:
        Optional classifier probability function over texts; when given,
        occlusion saliency is mixed into the lexical score.
    occlusion_weight:
        Relative weight of the occlusion term (0 = lexical only).
    """

    def __init__(
        self,
        predict_proba: Callable[[list[str]], np.ndarray] | None = None,
        *,
        occlusion_weight: float = 1.0,
    ) -> None:
        if occlusion_weight < 0:
            raise ValueError("occlusion_weight must be non-negative")
        self.predict_proba = predict_proba
        self.occlusion_weight = occlusion_weight

    # ------------------------------------------------------------------
    def _lexical_score(self, sentence: str, dimension: WellnessDimension) -> float:
        for evidence in detect_dimensions(sentence):
            if evidence.dimension is dimension:
                return evidence.score
        return 0.0

    def _occlusion_scores(
        self,
        sentences: Sequence[str],
        dimension_index: int,
    ) -> np.ndarray:
        """Probability drop when each sentence is removed."""
        assert self.predict_proba is not None
        full_text = " ".join(sentences)
        variants = [
            " ".join(s for j, s in enumerate(sentences) if j != i) or full_text
            for i in range(len(sentences))
        ]
        probs = np.asarray(self.predict_proba([full_text] + variants))
        base = probs[0, dimension_index]
        return np.maximum(base - probs[1:, dimension_index], 0.0)

    # ------------------------------------------------------------------
    def predict(
        self, text: str, dimension: WellnessDimension, *, dimension_index: int | None = None
    ) -> SpanPrediction:
        """Predict the explanation span of ``text`` for ``dimension``.

        ``dimension_index`` is the class column for the probability
        function (defaults to the DIMENSIONS ordering).
        """
        sentences = sent_tokenize(text)
        if not sentences:
            raise ValueError("cannot predict a span for empty text")
        lexical = np.asarray(
            [self._lexical_score(s, dimension) for s in sentences]
        )
        scores = lexical.astype(np.float64)
        if self.predict_proba is not None and len(sentences) > 1:
            from repro.core.labels import DIMENSIONS

            index = (
                DIMENSIONS.index(dimension)
                if dimension_index is None
                else dimension_index
            )
            occlusion = self._occlusion_scores(sentences, index)
            # Normalise both signals to [0, 1] before mixing.
            if lexical.max() > 0:
                scores = lexical / lexical.max()
            if occlusion.max() > 0:
                scores = scores + self.occlusion_weight * occlusion / occlusion.max()
        best = int(scores.argmax())
        span = sentences[best].rstrip(".!?")
        ranked = tuple(
            (s, float(score)) for s, score in zip(sentences, scores)
        )
        return SpanPrediction(text=text, span=span, sentence_scores=ranked)


@dataclass(frozen=True)
class SpanEvaluation:
    """Aggregate quality of predicted spans against gold spans."""

    rouge1_f1: float
    rouge_l_f1: float
    exact_sentence_rate: float


def evaluate_span_predictions(
    predictions: Sequence[SpanPrediction], gold_spans: Sequence[str]
) -> SpanEvaluation:
    """Score predicted spans with ROUGE and exact-sentence hit rate."""
    if len(predictions) != len(gold_spans):
        raise ValueError("predictions and gold spans length mismatch")
    if not predictions:
        raise ValueError("nothing to evaluate")
    rouge1 = []
    rouge_lcs = []
    exact = 0
    for prediction, gold in zip(predictions, gold_spans):
        rouge1.append(rouge_n(prediction.span, gold, 1).f1)
        rouge_lcs.append(rouge_l(prediction.span, gold).f1)
        if gold in prediction.span or prediction.span in gold:
            exact += 1
    n = len(predictions)
    return SpanEvaluation(
        rouge1_f1=float(np.mean(rouge1)),
        rouge_l_f1=float(np.mean(rouge_lcs)),
        exact_sentence_rate=exact / n,
    )
