"""LIME for text, from scratch (Ribeiro et al., 2016).

The paper applies LIME post-hoc to the best traditional model (LR) and
the best transformer (MentalBERT) and compares the resulting keyword
explanations to the gold spans (Table V).

Algorithm: sample binary word-mask perturbations of the input, query the
black-box probability function on the perturbed texts, weight samples by
an exponential kernel on cosine distance in mask space, and fit a ridge
surrogate whose coefficients rank word importance for the predicted
class.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from repro.text.tokenize import word_tokenize

__all__ = ["Explanation", "LimeTextExplainer"]


@dataclass(frozen=True)
class Explanation:
    """Word-importance explanation of one prediction."""

    text: str
    predicted_class: int
    word_weights: tuple[tuple[str, float], ...]  # descending |weight|
    intercept: float
    surrogate_r2: float

    def top_words(self, k: int = 5, *, positive_only: bool = True) -> list[str]:
        """Most influential words for the predicted class."""
        words = [
            w
            for w, weight in self.word_weights
            if (weight > 0 or not positive_only)
        ]
        return words[:k]

    def as_span(self, k: int = 5) -> str:
        """Top-k positive words joined as a keyword span (Table V input)."""
        return " ".join(self.top_words(k))


class LimeTextExplainer:
    """Perturbation-based local explanations for any text classifier.

    Parameters
    ----------
    predict_proba:
        Black-box function: list of texts → ``(n, n_classes)`` array.
    n_samples:
        Perturbations per explanation (the original text is always
        included with full weight).
    kernel_width:
        Exponential kernel width over cosine distance; LIME's default
        0.25 works well for the short posts here.
    ridge_alpha:
        L2 strength of the surrogate.
    """

    def __init__(
        self,
        predict_proba: Callable[[list[str]], np.ndarray],
        *,
        n_samples: int = 300,
        kernel_width: float = 0.25,
        ridge_alpha: float = 1.0,
        seed: int = 7,
    ) -> None:
        if n_samples < 10:
            raise ValueError("n_samples must be at least 10")
        self.predict_proba = predict_proba
        self.n_samples = n_samples
        self.kernel_width = kernel_width
        self.ridge_alpha = ridge_alpha
        self.seed = seed

    @classmethod
    def from_engine(cls, engine, **kwargs) -> "LimeTextExplainer":
        """Explainer whose black box is a ``PredictionEngine``.

        Routing the perturbation queries through the engine means the
        hundreds of masked texts per explanation are length-bucketed into
        batches, and texts repeated across explanations hit the engine's
        prediction cache instead of the model.
        """
        return cls(engine.predict_proba, **kwargs)

    # ------------------------------------------------------------------
    def _perturbations(
        self, n_words: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Binary mask matrix; row 0 is the unperturbed text."""
        masks = rng.random((self.n_samples, n_words)) > 0.5
        masks[0, :] = True
        # Never produce a fully-empty text: force one random word on.
        empty = ~masks.any(axis=1)
        masks[empty, rng.integers(0, n_words, size=int(empty.sum()))] = True
        return masks

    @staticmethod
    def _apply_mask(words: Sequence[str], mask: np.ndarray) -> str:
        return " ".join(w for w, keep in zip(words, mask) if keep)

    def _kernel(self, masks: np.ndarray) -> np.ndarray:
        """Exponential kernel on cosine distance from the full mask."""
        norm = np.sqrt(masks.sum(axis=1) * masks.shape[1])
        cosine = masks.sum(axis=1) / np.maximum(norm, 1e-12)
        distance = 1.0 - cosine
        return np.exp(-(distance**2) / self.kernel_width**2)

    def _ridge(
        self, x: np.ndarray, y: np.ndarray, weights: np.ndarray
    ) -> tuple[np.ndarray, float, float]:
        """Weighted ridge regression; returns (coef, intercept, R^2)."""
        sw = np.sqrt(weights)
        design = np.hstack([x, np.ones((x.shape[0], 1))]) * sw[:, None]
        target = y * sw
        penalty = self.ridge_alpha * np.eye(design.shape[1])
        penalty[-1, -1] = 0.0  # unpenalised intercept
        solution = np.linalg.solve(
            design.T @ design + penalty, design.T @ target
        )
        coef, intercept = solution[:-1], float(solution[-1])
        predictions = x @ coef + intercept
        total = float((weights * (y - np.average(y, weights=weights)) ** 2).sum())
        residual = float((weights * (y - predictions) ** 2).sum())
        r2 = 1.0 - residual / total if total > 0 else 0.0
        return coef, intercept, r2

    # ------------------------------------------------------------------
    def explain(self, text: str, *, class_index: int | None = None) -> Explanation:
        """Explain the classifier's prediction on ``text``.

        ``class_index`` defaults to the predicted class.
        """
        words = word_tokenize(text)
        if not words:
            raise ValueError("cannot explain an empty text")
        rng = np.random.default_rng(self.seed)
        masks = self._perturbations(len(words), rng)
        texts = [self._apply_mask(words, mask) for mask in masks]
        probs = np.asarray(self.predict_proba(texts), dtype=np.float64)
        if probs.ndim != 2 or probs.shape[0] != len(texts):
            raise ValueError("predict_proba returned the wrong shape")
        target_class = (
            int(probs[0].argmax()) if class_index is None else int(class_index)
        )
        weights = self._kernel(masks.astype(np.float64))
        coef, intercept, r2 = self._ridge(
            masks.astype(np.float64), probs[:, target_class], weights
        )
        # Aggregate duplicate words by total weight.
        by_word: dict[str, float] = {}
        for word, weight in zip(words, coef):
            by_word[word] = by_word.get(word, 0.0) + float(weight)
        ranked = sorted(by_word.items(), key=lambda kv: (-abs(kv[1]), kv[0]))
        return Explanation(
            text=text,
            predicted_class=target_class,
            word_weights=tuple(ranked),
            intercept=intercept,
            surrogate_r2=r2,
        )
