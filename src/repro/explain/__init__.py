"""Explainability substrate: LIME, ROUGE, BLEU, span-similarity scoring."""

from repro.explain.bleu import bleu, brevity_penalty, modified_precision
from repro.explain.lime import Explanation, LimeTextExplainer
from repro.explain.rouge import RougeScore, rouge_l, rouge_n
from repro.explain.span_predictor import (
    SpanPredictor,
    SpanPrediction,
    evaluate_span_predictions,
)
from repro.explain.similarity import (
    SpanSimilarity,
    keyword_similarity,
    score_explanations,
)

__all__ = [
    "Explanation",
    "LimeTextExplainer",
    "RougeScore",
    "SpanPrediction",
    "SpanPredictor",
    "SpanSimilarity",
    "bleu",
    "brevity_penalty",
    "evaluate_span_predictions",
    "keyword_similarity",
    "modified_precision",
    "rouge_l",
    "rouge_n",
    "score_explanations",
]
