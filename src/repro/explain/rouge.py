"""ROUGE metrics from scratch (Lin, 2004).

Table V scores LIME keyword explanations against gold spans with ROUGE;
this module implements ROUGE-N (n-gram recall/precision/F) and ROUGE-L
(longest common subsequence).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text.ngrams import ngram_counts
from repro.text.tokenize import word_tokenize

__all__ = ["RougeScore", "rouge_n", "rouge_l"]


@dataclass(frozen=True)
class RougeScore:
    """Precision/recall/F1 triple for one ROUGE variant."""

    precision: float
    recall: float
    f1: float


def _prf(overlap: float, candidate_total: float, reference_total: float) -> RougeScore:
    precision = overlap / candidate_total if candidate_total else 0.0
    recall = overlap / reference_total if reference_total else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return RougeScore(precision, recall, f1)


def rouge_n(candidate: str, reference: str, n: int = 1) -> RougeScore:
    """ROUGE-N: clipped n-gram overlap between candidate and reference."""
    cand = ngram_counts(word_tokenize(candidate), n)
    ref = ngram_counts(word_tokenize(reference), n)
    overlap = sum(min(count, ref[gram]) for gram, count in cand.items())
    return _prf(overlap, sum(cand.values()), sum(ref.values()))


def _lcs_length(a: list[str], b: list[str]) -> int:
    """Longest common subsequence length, O(len(a)*len(b))."""
    if not a or not b:
        return 0
    previous = [0] * (len(b) + 1)
    for token_a in a:
        current = [0] * (len(b) + 1)
        for j, token_b in enumerate(b, start=1):
            if token_a == token_b:
                current[j] = previous[j - 1] + 1
            else:
                current[j] = max(previous[j], current[j - 1])
        previous = current
    return previous[-1]


def rouge_l(candidate: str, reference: str) -> RougeScore:
    """ROUGE-L: longest-common-subsequence precision/recall/F."""
    cand = word_tokenize(candidate)
    ref = word_tokenize(reference)
    lcs = _lcs_length(cand, ref)
    return _prf(lcs, len(cand), len(ref))
