"""BLEU from scratch (Papineni et al., 2002).

Table V reports BLEU between LIME keyword explanations and gold spans.
Implements clipped modified n-gram precision with smoothing (method 1,
add-epsilon) and the brevity penalty.
"""

from __future__ import annotations

import math

from repro.text.ngrams import ngram_counts
from repro.text.tokenize import word_tokenize

__all__ = ["bleu", "modified_precision", "brevity_penalty"]


def modified_precision(candidate: list[str], reference: list[str], n: int) -> float:
    """Clipped n-gram precision for one order."""
    cand_counts = ngram_counts(candidate, n)
    if not cand_counts:
        return 0.0
    ref_counts = ngram_counts(reference, n)
    clipped = sum(
        min(count, ref_counts[gram]) for gram, count in cand_counts.items()
    )
    return clipped / sum(cand_counts.values())


def brevity_penalty(candidate_len: int, reference_len: int) -> float:
    """Penalise candidates shorter than the reference."""
    if candidate_len == 0:
        return 0.0
    if candidate_len >= reference_len:
        return 1.0
    return math.exp(1.0 - reference_len / candidate_len)


def bleu(
    candidate: str,
    reference: str,
    *,
    max_n: int = 4,
    smoothing_epsilon: float = 0.1,
) -> float:
    """Sentence-level BLEU with uniform weights over orders 1..max_n.

    Zero precisions are smoothed with ``smoothing_epsilon / candidate
    n-gram count`` (Chen & Cherry's method 1), the standard choice for
    short-segment scoring like Table V's span comparison.
    """
    cand = word_tokenize(candidate)
    ref = word_tokenize(reference)
    if not cand or not ref:
        return 0.0
    log_sum = 0.0
    for n in range(1, max_n + 1):
        total = max(len(cand) - n + 1, 0)
        if total == 0:
            precision = smoothing_epsilon / max(len(cand), 1)
        else:
            precision = modified_precision(cand, ref, n)
            if precision == 0.0:
                precision = smoothing_epsilon / total
        log_sum += math.log(precision)
    geometric = math.exp(log_sum / max_n)
    return brevity_penalty(len(cand), len(ref)) * geometric
