"""Transformer building blocks: encoder and decoder stacks."""

from __future__ import annotations

import numpy as np

from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor

__all__ = ["FeedForward", "EncoderBlock", "DecoderBlock", "TransformerEncoder"]


class FeedForward(Module):
    """Position-wise two-layer MLP with GELU."""

    def __init__(self, dim: int, hidden: int, *, dropout: float = 0.0, seed: int = 0):
        super().__init__()
        self.up = Linear(dim, hidden, seed=seed)
        self.down = Linear(hidden, dim, seed=seed + 1)
        self.drop = Dropout(dropout, seed=seed + 2)

    def forward(self, x: Tensor) -> Tensor:
        return self.drop(self.down(self.up(x).gelu()))


class EncoderBlock(Module):
    """Pre-norm transformer encoder block."""

    def __init__(
        self,
        dim: int,
        n_heads: int,
        ffn_hidden: int,
        *,
        causal: bool = False,
        relative_positions: bool = False,
        dropout: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadAttention(
            dim,
            n_heads,
            causal=causal,
            relative_positions=relative_positions,
            dropout=dropout,
            seed=seed,
        )
        self.norm2 = LayerNorm(dim)
        self.ffn = FeedForward(dim, ffn_hidden, dropout=dropout, seed=seed + 10)
        self.drop = Dropout(dropout, seed=seed + 20)

    def forward(self, x: Tensor, *, padding_mask: np.ndarray | None = None) -> Tensor:
        x = x + self.drop(self.attn(self.norm1(x), padding_mask=padding_mask))
        return x + self.ffn(self.norm2(x))


class DecoderBlock(Module):
    """Pre-norm decoder block: causal self-attention + cross-attention."""

    def __init__(
        self,
        dim: int,
        n_heads: int,
        ffn_hidden: int,
        *,
        dropout: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.self_attn = MultiHeadAttention(
            dim, n_heads, causal=True, dropout=dropout, seed=seed
        )
        self.norm2 = LayerNorm(dim)
        self.cross_attn = MultiHeadAttention(
            dim, n_heads, dropout=dropout, seed=seed + 5
        )
        self.norm3 = LayerNorm(dim)
        self.ffn = FeedForward(dim, ffn_hidden, dropout=dropout, seed=seed + 10)

    def forward(
        self,
        x: Tensor,
        memory: Tensor,
        *,
        memory_padding_mask: np.ndarray | None = None,
    ) -> Tensor:
        x = x + self.self_attn(self.norm1(x))
        x = x + self.cross_attn(
            self.norm2(x), memory, memory, padding_mask=memory_padding_mask
        )
        return x + self.ffn(self.norm3(x))


class TransformerEncoder(Module):
    """Token + position embeddings over a stack of encoder blocks.

    ``use_absolute_positions=False`` (the XLNet variant) drops the learned
    absolute position table; position information then flows only through
    the blocks' relative-position biases.
    """

    def __init__(
        self,
        *,
        vocab_size: int,
        max_len: int,
        dim: int,
        n_layers: int,
        n_heads: int,
        ffn_hidden: int,
        causal: bool = False,
        relative_positions: bool = False,
        use_absolute_positions: bool = True,
        dropout: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.max_len = max_len
        self.token_embedding = Embedding(vocab_size, dim, seed=seed)
        self.use_absolute_positions = use_absolute_positions
        if use_absolute_positions:
            self.position_embedding = Embedding(max_len, dim, seed=seed + 1)
        self.embed_dropout = Dropout(dropout, seed=seed + 2)
        self.blocks = []
        for layer in range(n_layers):
            block = EncoderBlock(
                dim,
                n_heads,
                ffn_hidden,
                causal=causal,
                relative_positions=relative_positions,
                dropout=dropout,
                seed=seed + 100 * (layer + 1),
            )
            setattr(self, f"block{layer}", block)
            self.blocks.append(block)
        self.final_norm = LayerNorm(dim)

    def forward(
        self, token_ids: np.ndarray, *, padding_mask: np.ndarray | None = None
    ) -> Tensor:
        ids = np.asarray(token_ids, dtype=np.int64)
        if ids.ndim != 2:
            raise ValueError(f"token_ids must be (B, T), got {ids.shape}")
        if ids.shape[1] > self.max_len:
            raise ValueError(f"sequence length {ids.shape[1]} > max_len {self.max_len}")
        x = self.token_embedding(ids)
        if self.use_absolute_positions:
            positions = np.broadcast_to(np.arange(ids.shape[1]), ids.shape)
            x = x + self.position_embedding(positions)
        x = self.embed_dropout(x)
        for block in self.blocks:
            x = block(x, padding_mask=padding_mask)
        return self.final_norm(x)
