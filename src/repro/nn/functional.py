"""Loss functions and stateless neural helpers."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["cross_entropy", "dropout", "attention_mask_from_padding"]


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    *,
    ignore_index: int | None = None,
) -> Tensor:
    """Mean cross-entropy over the last axis of ``logits``.

    ``logits`` may be ``(N, C)`` or ``(B, T, C)``; targets are the matching
    integer array.  ``ignore_index`` masks positions out of the loss (used
    by MLM pretraining, where only masked positions contribute).  The
    softmax+NLL backward is fused for numerical stability.
    """
    flat_logits = logits.data.reshape(-1, logits.shape[-1])
    flat_targets = np.asarray(targets, dtype=np.int64).reshape(-1)
    if flat_logits.shape[0] != flat_targets.shape[0]:
        raise ValueError(
            f"{flat_logits.shape[0]} logit rows vs {flat_targets.shape[0]} targets"
        )
    if ignore_index is not None:
        keep = flat_targets != ignore_index
    else:
        keep = np.ones_like(flat_targets, dtype=bool)
    n_kept = int(keep.sum())
    if n_kept == 0:
        raise ValueError("no targets left after ignore_index masking")

    shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    safe_targets = np.where(keep, flat_targets, 0)
    picked = probs[np.arange(flat_targets.shape[0]), safe_targets]
    losses = -np.log(picked + 1e-12)
    loss_value = float(losses[keep].mean())

    def backward(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        scale = float(grad.reshape(-1)[0]) / n_kept
        delta = probs.copy()
        delta[np.arange(flat_targets.shape[0]), safe_targets] -= 1.0
        delta[~keep] = 0.0
        logits._accumulate((delta * scale).reshape(logits.shape))

    return Tensor._make(np.asarray(loss_value, dtype=np.float32), (logits,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, *, training: bool) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)``."""
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)
    return x * Tensor(mask)


def attention_mask_from_padding(token_ids: np.ndarray, pad_id: int) -> np.ndarray:
    """Boolean mask ``(B, 1, 1, T)`` that is True on PAD positions.

    Broadcastable against attention scores ``(B, H, T, T)``; True entries
    are filled with -inf before the softmax.
    """
    ids = np.asarray(token_ids)
    return (ids == pad_id)[:, None, None, :]
