"""Loss functions, fused composite kernels, and stateless neural helpers.

The fused ops (:func:`layer_norm`, :func:`linear`, :func:`scaled_dot`)
collapse multi-node sub-graphs into a single tape node with a
hand-written backward rule.  On a numpy substrate the tape bookkeeping
of a composed op chain costs as much as the arithmetic, so fusing is
the main forward/backward speed lever.  :func:`use_fused_ops` toggles
the fused kernels off globally; the composed fallbacks are kept both as
the reference implementation for equivalence tests and as the baseline
the ``transformer`` benchmark scenario measures against.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.nn.tensor import Tensor, is_grad_enabled

__all__ = [
    "cross_entropy",
    "dropout",
    "attention_mask_from_padding",
    "layer_norm",
    "linear",
    "scaled_dot",
    "fused_ops_enabled",
    "use_fused_ops",
]

_FUSED_ENABLED = True


def fused_ops_enabled() -> bool:
    """True unless inside a :func:`use_fused_ops` ``False`` block."""
    return _FUSED_ENABLED


@contextmanager
def use_fused_ops(enabled: bool):
    """Context manager selecting fused kernels vs composed fallbacks.

    The composed path builds the same computation from primitive tensor
    ops; results agree with the fused kernels to float32 round-off.
    Used by the equivalence tests and the ``transformer`` benchmark.
    """
    global _FUSED_ENABLED
    previous = _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _FUSED_ENABLED = previous


def _tape_live(*tensors: Tensor) -> bool:
    """True when an op over ``tensors`` must record a tape node."""
    return is_grad_enabled() and any(t.requires_grad for t in tensors)


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    *,
    ignore_index: int | None = None,
) -> Tensor:
    """Mean cross-entropy over the last axis of ``logits``.

    ``logits`` may be ``(N, C)`` or ``(B, T, C)``; targets are the matching
    integer array.  ``ignore_index`` masks positions out of the loss (used
    by MLM pretraining, where only masked positions contribute).  The
    softmax+NLL backward is fused for numerical stability.
    """
    flat_logits = logits.data.reshape(-1, logits.shape[-1])
    flat_targets = np.asarray(targets, dtype=np.int64).reshape(-1)
    if flat_logits.shape[0] != flat_targets.shape[0]:
        raise ValueError(
            f"{flat_logits.shape[0]} logit rows vs {flat_targets.shape[0]} targets"
        )
    if ignore_index is not None:
        keep = flat_targets != ignore_index
    else:
        keep = np.ones_like(flat_targets, dtype=bool)
    n_kept = int(keep.sum())
    if n_kept == 0:
        raise ValueError("no targets left after ignore_index masking")

    shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
    probs = np.exp(shifted, out=shifted)
    probs /= probs.sum(axis=1, keepdims=True)
    safe_targets = np.where(keep, flat_targets, 0)
    picked = probs[np.arange(flat_targets.shape[0]), safe_targets]
    losses = -np.log(picked + 1e-12)
    loss_value = float(losses[keep].mean())

    def backward(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        scale = float(grad.reshape(-1)[0]) / n_kept
        delta = probs.copy()
        delta[np.arange(flat_targets.shape[0]), safe_targets] -= 1.0
        delta[~keep] = 0.0
        delta *= np.float32(scale)
        logits._accumulate(delta.reshape(logits.shape), owned=True)

    return Tensor._make(np.asarray(loss_value, dtype=np.float32), (logits,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, *, training: bool) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)``.

    When ``p == 0`` or outside training, the input is returned untouched
    — no RNG draw, no tape node.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape, dtype=np.float32) >= p).astype(np.float32)
    mask *= np.float32(1.0 / (1.0 - p))
    return x * Tensor(mask)


def attention_mask_from_padding(token_ids: np.ndarray, pad_id: int) -> np.ndarray:
    """Boolean mask ``(B, 1, 1, T)`` that is True on PAD positions.

    Broadcastable against attention scores ``(B, H, T, T)``; True entries
    are filled with -inf before the softmax.
    """
    ids = np.asarray(token_ids)
    return (ids == pad_id)[:, None, None, :]


# ----------------------------------------------------------------------
# Fused composite kernels
# ----------------------------------------------------------------------
def layer_norm(x: Tensor, gain: Tensor, shift: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis — one tape node.

    The composed version builds ~10 nodes (two means, a centring, a
    rsqrt, scale, shift); this kernel does the same arithmetic with one
    node, reusing the normalised activations in the analytic backward.
    """
    if not _FUSED_ENABLED:
        mu = x.mean(axis=-1, keepdims=True)
        centred = x - mu
        var = (centred * centred).mean(axis=-1, keepdims=True)
        inv = (var + eps) ** -0.5
        return centred * inv * gain + shift

    xd = x.data
    dim = xd.shape[-1]
    mu = xd.mean(axis=-1, keepdims=True, dtype=np.float32)
    centred = xd - mu
    var = np.mean(centred * centred, axis=-1, keepdims=True, dtype=np.float32)
    inv = var + np.float32(eps)
    np.sqrt(inv, out=inv)
    np.divide(1.0, inv, out=inv)
    normed = centred
    normed *= inv
    data = normed * gain.data
    data += shift.data
    if not _tape_live(x, gain, shift):
        return Tensor(data)

    def backward(grad: np.ndarray) -> None:
        flat = grad.reshape(-1, dim)
        if shift.requires_grad:
            shift._accumulate(flat.sum(axis=0), owned=True)
        if gain.requires_grad:
            gain._accumulate(
                (flat * normed.reshape(-1, dim)).sum(axis=0), owned=True
            )
        if x.requires_grad:
            g = grad * gain.data
            g_mean = g.mean(axis=-1, keepdims=True, dtype=np.float32)
            gn_mean = np.mean(
                g * normed, axis=-1, keepdims=True, dtype=np.float32
            )
            dx = g - g_mean
            dx -= normed * gn_mean
            dx *= inv
            x._accumulate(dx, owned=True)

    return Tensor._node(data, (x, gain, shift), backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ W (+ b)`` — one tape node (addmm-style).

    The weight gradient is computed as a single 2-D GEMM over the
    flattened batch instead of a batched matmul followed by an axis sum.
    Inputs with fewer than two dims fall back to the composed path.
    """
    if not _FUSED_ENABLED or x.data.ndim < 2:
        out = x @ weight
        if bias is not None:
            out = out + bias
        return out

    in_features = weight.data.shape[0]
    data = x.data @ weight.data
    if bias is not None:
        data += bias.data
    parents = (x, weight) if bias is None else (x, weight, bias)
    if not _tape_live(*parents):
        return Tensor(data)

    def backward(grad: np.ndarray) -> None:
        flat_grad = grad.reshape(-1, grad.shape[-1])
        if bias is not None and bias.requires_grad:
            bias._accumulate(flat_grad.sum(axis=0), owned=True)
        if weight.requires_grad:
            flat_x = x.data.reshape(-1, in_features)
            weight._accumulate(flat_x.T @ flat_grad, owned=True)
        if x.requires_grad:
            x._accumulate(grad @ weight.data.T, owned=True)

    return Tensor._node(data, parents, backward)


def scaled_dot(q: Tensor, k: Tensor, scale: float) -> Tensor:
    """Attention scores ``(q @ k^T) * scale`` — one tape node.

    Folds the key transpose and the ``1/sqrt(head_dim)`` scale into the
    score kernel, instead of a swapaxes node, a matmul node, and a
    scalar-multiply node each carrying a ``(B, H, Tq, Tk)`` temporary.
    """
    if not _FUSED_ENABLED:
        return (q @ k.swapaxes(-1, -2)) * scale

    s = np.float32(scale)
    data = q.data @ np.swapaxes(k.data, -1, -2)
    data *= s
    if not _tape_live(q, k):
        return Tensor(data)

    def backward(grad: np.ndarray) -> None:
        gs = grad * s
        if q.requires_grad:
            q._accumulate(gs @ k.data, owned=True)
        if k.requires_grad:
            k._accumulate(np.swapaxes(gs, -1, -2) @ q.data, owned=True)

    return Tensor._node(data, (q, k), backward)
