"""Neural network modules: parameter containers and core layers."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.nn.functional import dropout, layer_norm, linear
from repro.nn.tensor import Tensor

__all__ = ["Module", "Linear", "Embedding", "LayerNorm", "Dropout", "Sequential"]


class Module:
    """Base class: tracks parameters and sub-modules by attribute."""

    def __init__(self) -> None:
        self._parameters: dict[str, Tensor] = {}
        self._modules: dict[str, Module] = {}
        self.training = True

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Tensor]:
        """All trainable tensors, depth-first, deterministic order."""
        for param in self._parameters.values():
            yield param
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        """This module and every sub-module, depth-first, stable order."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def reseed_rngs(self, seed: int) -> None:
        """Reset every stochastic sub-module's stream deterministically.

        Stateful streams (dropout) otherwise make training depend on how
        many draws earlier phases consumed — e.g. fine-tuning after an
        in-process pretraining run would differ from fine-tuning after
        restoring the same weights from the pretraining cache.  Each
        stochastic module gets a distinct, position-derived seed.
        """
        for offset, module in enumerate(self.modules()):
            reset = getattr(module, "reset_stream", None)
            if reset is not None:
                reset(seed + offset)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    def n_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{param.data.shape} vs {state[name].shape}"
                )
            param.data = state[name].astype(np.float32).copy()
        # Restoring weights mutates fitted state in place: bump the
        # version so prediction caches keyed on it stop serving rows
        # computed with the old weights (see repro.engine.engine).
        self._weights_version = getattr(self, "_weights_version", 0) + 1

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine map ``y = x W + b`` with Xavier-uniform init."""

    def __init__(
        self, in_features: int, out_features: int, *, bias: bool = True, seed: int = 0
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        bound = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Tensor(
            rng.uniform(-bound, bound, size=(in_features, out_features)),
            requires_grad=True,
        )
        self.has_bias = bias
        if bias:
            self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return linear(x, self.weight, self.bias if self.has_bias else None)


class Embedding(Module):
    """Token-id → vector lookup table."""

    def __init__(self, num_embeddings: int, dim: int, *, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.weight = Tensor(
            rng.normal(0.0, 0.02, size=(num_embeddings, dim)), requires_grad=True
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        return Tensor.embedding(self.weight, ids)


class LayerNorm(Module):
    """Layer normalisation over the last axis with learned scale/shift."""

    def __init__(self, dim: int, *, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gain = Tensor(np.ones(dim), requires_grad=True)
        self.shift = Tensor(np.zeros(dim), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return layer_norm(x, self.gain, self.shift, self.eps)


class Dropout(Module):
    """Inverted dropout module with its own deterministic stream."""

    def __init__(self, p: float, *, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def reset_stream(self, seed: int) -> None:
        """Restart the dropout stream (see :meth:`Module.reseed_rngs`)."""
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x  # untouched: no RNG draw, no tape node
        return dropout(x, self.p, self._rng, training=True)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.steps = list(modules)
        for i, module in enumerate(modules):
            setattr(self, f"step{i}", module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.steps:
            x = module(x)
        return x
