"""Model persistence: state dicts and full checkpoints on disk.

Two layers:

* ``save_weights`` / ``load_weights`` — a module's named parameters as a
  single compressed ``.npz`` (the original minimal API, kept as-is).
* ``save_checkpoint`` / ``load_checkpoint`` — a checkpoint *directory*
  holding ``weights.npz`` (arbitrary named arrays) plus ``config.json``
  (JSON-serialisable metadata), which is what
  ``WellnessClassifier.save``/``load`` round-trips through for both the
  traditional and transformer baselines.

``collect_array_state`` / ``restore_array_state`` capture the fitted
sklearn-style ``*_`` attributes of the classical ML models so they can
ride in the same checkpoint format as the neural state dicts.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.layers import Module

__all__ = [
    "save_weights",
    "load_weights",
    "save_checkpoint",
    "load_checkpoint",
    "collect_array_state",
    "restore_array_state",
]

CHECKPOINT_FORMAT_VERSION = 1
_WEIGHTS_NAME = "weights.npz"
_CONFIG_NAME = "config.json"


def save_weights(module: Module, path: str | Path) -> None:
    """Write every named parameter to a compressed ``.npz`` archive."""
    state = module.state_dict()
    np.savez_compressed(str(path), **state)


def load_weights(module: Module, path: str | Path) -> None:
    """Load weights written by :func:`save_weights` into ``module``.

    Shapes and names must match exactly.
    """
    with np.load(str(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)


# ----------------------------------------------------------------------
# Checkpoint directories: arrays + JSON config
# ----------------------------------------------------------------------
def save_checkpoint(
    path: str | Path,
    *,
    arrays: dict[str, np.ndarray],
    config: dict,
) -> Path:
    """Write a checkpoint directory: ``weights.npz`` + ``config.json``.

    ``path`` is created (parents included) if missing; an existing
    checkpoint at the same path is overwritten.
    """
    target = Path(path)
    target.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(str(target / _WEIGHTS_NAME), **arrays)
    payload = {"format_version": CHECKPOINT_FORMAT_VERSION, **config}
    (target / _CONFIG_NAME).write_text(
        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )
    return target


def load_checkpoint(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Read a checkpoint directory back as ``(arrays, config)``."""
    target = Path(path)
    weights_path = target / _WEIGHTS_NAME
    config_path = target / _CONFIG_NAME
    if not weights_path.is_file() or not config_path.is_file():
        raise FileNotFoundError(
            f"{target} is not a checkpoint directory "
            f"(expected {_WEIGHTS_NAME} and {_CONFIG_NAME})"
        )
    with np.load(str(weights_path)) as archive:
        arrays = {name: archive[name] for name in archive.files}
    config = json.loads(config_path.read_text(encoding="utf-8"))
    version = config.pop("format_version", None)
    if version != CHECKPOINT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format_version {version!r} "
            f"(this build reads {CHECKPOINT_FORMAT_VERSION})"
        )
    return arrays, config


# ----------------------------------------------------------------------
# sklearn-style estimator state
# ----------------------------------------------------------------------
def collect_array_state(estimator: object) -> dict[str, np.ndarray]:
    """Fitted ``*_`` attributes of a classical model, as named arrays.

    Scalars (``n_classes_``, ``n_iter_``) are stored as 0-d arrays so
    everything fits one ``.npz``; private and unfitted (``None``)
    attributes are skipped.
    """
    state: dict[str, np.ndarray] = {}
    for name, value in vars(estimator).items():
        if not name.endswith("_") or name.startswith("_") or value is None:
            continue
        state[name] = np.asarray(value)
    return state


def restore_array_state(estimator: object, state: dict[str, np.ndarray]) -> None:
    """Set fitted attributes captured by :func:`collect_array_state`.

    0-d integer/float arrays are unwrapped back to Python scalars so the
    estimator sees the same types it produced during ``fit``.
    """
    for name, value in state.items():
        if value.ndim == 0:
            setattr(estimator, name, value.item())
        else:
            setattr(estimator, name, value)
    # In-place fitted-state mutation: bump the weights version so
    # prediction caches keyed on it miss instead of serving rows
    # computed with the previous weights (see repro.engine.engine).
    estimator._weights_version = getattr(estimator, "_weights_version", 0) + 1
