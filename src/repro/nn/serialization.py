"""Model persistence: state dicts, disk checkpoints, shared memory.

Three layers:

* ``save_weights`` / ``load_weights`` — a module's named parameters as a
  single compressed ``.npz`` (the original minimal API, kept as-is).
* ``save_checkpoint`` / ``load_checkpoint`` — a checkpoint *directory*
  holding ``weights.npz`` (arbitrary named arrays) plus ``config.json``
  (JSON-serialisable metadata), which is what
  ``WellnessClassifier.save``/``load`` round-trips through for both the
  traditional and transformer baselines.
* :class:`SharedCheckpoint` — the same named arrays published once into
  a ``multiprocessing.shared_memory`` segment so worker *processes* can
  attach zero-copy read-only numpy views instead of each loading (and
  decompressing) the ``.npz``.  A ``weights_version`` token lives in the
  segment header; :meth:`SharedCheckpoint.update` overwrites the weight
  bytes in place and bumps it, which is the cross-process cache
  invalidation / hot-reload protocol the multi-process serving layer
  (:mod:`repro.engine.procserver`) builds on.

``collect_array_state`` / ``restore_array_state`` capture the fitted
sklearn-style ``*_`` attributes of the classical ML models so they can
ride in the same checkpoint format as the neural state dicts.
"""

from __future__ import annotations

import json
import secrets
import sys
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from repro.nn.layers import Module

__all__ = [
    "SharedArraySpec",
    "SharedCheckpoint",
    "SharedManifest",
    "save_weights",
    "load_weights",
    "save_checkpoint",
    "load_checkpoint",
    "collect_array_state",
    "restore_array_state",
]

CHECKPOINT_FORMAT_VERSION = 1
_WEIGHTS_NAME = "weights.npz"
_CONFIG_NAME = "config.json"


def save_weights(module: Module, path: str | Path) -> None:
    """Write every named parameter to a compressed ``.npz`` archive."""
    state = module.state_dict()
    np.savez_compressed(str(path), **state)


def load_weights(module: Module, path: str | Path) -> None:
    """Load weights written by :func:`save_weights` into ``module``.

    Shapes and names must match exactly.
    """
    with np.load(str(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)


# ----------------------------------------------------------------------
# Checkpoint directories: arrays + JSON config
# ----------------------------------------------------------------------
def save_checkpoint(
    path: str | Path,
    *,
    arrays: dict[str, np.ndarray],
    config: dict,
) -> Path:
    """Write a checkpoint directory: ``weights.npz`` + ``config.json``.

    ``path`` is created (parents included) if missing; an existing
    checkpoint at the same path is overwritten.
    """
    target = Path(path)
    target.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(str(target / _WEIGHTS_NAME), **arrays)
    payload = {"format_version": CHECKPOINT_FORMAT_VERSION, **config}
    (target / _CONFIG_NAME).write_text(
        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )
    return target


def load_checkpoint(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Read a checkpoint directory back as ``(arrays, config)``."""
    target = Path(path)
    weights_path = target / _WEIGHTS_NAME
    config_path = target / _CONFIG_NAME
    if not weights_path.is_file() or not config_path.is_file():
        raise FileNotFoundError(
            f"{target} is not a checkpoint directory "
            f"(expected {_WEIGHTS_NAME} and {_CONFIG_NAME})"
        )
    with np.load(str(weights_path)) as archive:
        arrays = {name: archive[name] for name in archive.files}
    config = json.loads(config_path.read_text(encoding="utf-8"))
    version = config.pop("format_version", None)
    if version != CHECKPOINT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format_version {version!r} "
            f"(this build reads {CHECKPOINT_FORMAT_VERSION})"
        )
    return arrays, config


# ----------------------------------------------------------------------
# Shared-memory checkpoints: zero-copy weights across processes
# ----------------------------------------------------------------------
# Layout of a published segment:
#   [0, 8)              weights_version (little-endian uint64)
#   [64, ...)           the arrays, each aligned to _ALIGN bytes
# The 64-byte header leaves room for future fields without moving the
# payload off cache-line alignment.
_HEADER_BYTES = 64
_ALIGN = 64


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class SharedArraySpec:
    """Where one named array lives inside a shared segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class SharedManifest:
    """Everything a worker process needs to attach a published segment.

    Plain picklable data — it travels to worker processes over the
    spawn/fork argument channel (or any pipe), never through the
    filesystem.
    """

    shm_name: str
    total_bytes: int
    specs: tuple[SharedArraySpec, ...]


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without resource-tracker registration.

    On Python < 3.13, attaching to an existing segment registers it with
    the resource tracker exactly like creating one does; when the
    attaching process exits, the tracker believes the segment leaked and
    unlinks it out from under the owner (cpython#82300).  Worse, forked
    attachers share the parent's tracker, whose cache is a set — two
    attachers registering and unregistering the same name race into a
    tracker-side KeyError.  Only the publishing process owns cleanup, so
    attachers suppress registration entirely: 3.13+ has ``track=False``
    for this; older interpreters get a momentary no-op ``register``
    swap around the ``SharedMemory`` constructor.
    """
    if sys.version_info >= (3, 13):  # pragma: no cover - newer interpreters
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = original


class SharedCheckpoint:
    """Named numpy arrays in one shared-memory segment.

    The *publisher* (`publish`) creates the segment, copies the arrays
    in once, and is responsible for :meth:`unlink`.  Any number of
    *attachers* (`attach`, typically worker processes) map the same
    physical pages and read the arrays through zero-copy read-only
    views — no per-worker deserialisation, no per-worker copy of the
    weights (transformer workers copy once into their parameters via
    ``load_state_dict``; traditional models serve straight off the
    views).

    ``weights_version`` is a monotonically increasing token stored in
    the segment header.  :meth:`update` overwrites the weight bytes in
    place (shapes and dtypes must match) and bumps the token; attached
    processes poll :attr:`weights_version` cheaply (one uint64 read)
    and invalidate their prediction caches when it moves — the
    cross-process analogue of :func:`repro.engine.engine.
    bump_weights_version`.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        manifest: SharedManifest,
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._manifest = manifest
        self._owner = owner
        self._closed = False
        self._header = np.frombuffer(shm.buf, dtype=np.uint64, count=1)
        views: dict[str, np.ndarray] = {}
        for spec in manifest.specs:
            view = np.frombuffer(
                shm.buf,
                dtype=np.dtype(spec.dtype),
                count=int(np.prod(spec.shape, dtype=np.int64)),
                offset=spec.offset,
            ).reshape(spec.shape)
            if not owner:
                view.flags.writeable = False
            views[spec.name] = view
        self._views = views

    # ------------------------------------------------------------------
    @classmethod
    def publish(
        cls,
        arrays: dict[str, np.ndarray],
        *,
        name: str | None = None,
        weights_version: int = 1,
    ) -> "SharedCheckpoint":
        """Create a segment holding ``arrays`` and return the owner handle."""
        if not arrays:
            raise ValueError("cannot publish an empty checkpoint")
        specs: list[SharedArraySpec] = []
        offset = _HEADER_BYTES
        prepared: dict[str, np.ndarray] = {}
        for array_name, value in arrays.items():
            value = np.asarray(value)
            # Record the shape first: ascontiguousarray promotes 0-d
            # arrays to (1,), and a scalar that round-trips as a vector
            # breaks restore_array_state's 0-d → Python-scalar unwrap.
            shape = tuple(value.shape)
            value = np.ascontiguousarray(value)
            prepared[array_name] = value
            specs.append(
                SharedArraySpec(
                    name=array_name,
                    dtype=value.dtype.str,
                    shape=shape,
                    offset=offset,
                )
            )
            offset = _align(offset + value.nbytes)
        shm_name = name or f"hx_{secrets.token_hex(8)}"
        shm = shared_memory.SharedMemory(
            name=shm_name, create=True, size=max(offset, _HEADER_BYTES + 1)
        )
        manifest = SharedManifest(
            shm_name=shm.name, total_bytes=shm.size, specs=tuple(specs)
        )
        checkpoint = cls(shm, manifest, owner=True)
        for spec in specs:
            checkpoint._views[spec.name][...] = prepared[spec.name]
        checkpoint._header[0] = weights_version
        return checkpoint

    @classmethod
    def attach(cls, manifest: SharedManifest) -> "SharedCheckpoint":
        """Attach read-only views over a segment published elsewhere."""
        # The owner unlinks; an attacher registering with the resource
        # tracker would let the tracker unlink a live segment at exit.
        shm = _attach_untracked(manifest.shm_name)
        return cls(shm, manifest, owner=False)

    # ------------------------------------------------------------------
    @property
    def manifest(self) -> SharedManifest:
        return self._manifest

    @property
    def owner(self) -> bool:
        return self._owner

    @property
    def name(self) -> str:
        return self._manifest.shm_name

    @property
    def arrays(self) -> dict[str, np.ndarray]:
        """Name -> view.  Views are read-only for attachers."""
        return dict(self._views)

    @property
    def weights_version(self) -> int:
        """The header token; one uint64 read, safe to poll per batch."""
        return int(self._header[0])

    def update(self, arrays: dict[str, np.ndarray]) -> int:
        """Overwrite the weight bytes in place and bump the version.

        The hot-reload path: shapes and dtypes must match the published
        layout exactly (a retrained model with the same architecture).
        Returns the new ``weights_version`` attached processes will see.
        """
        if not self._owner:
            raise PermissionError("only the publishing process may update")
        missing = set(self._views) - set(arrays)
        unexpected = set(arrays) - set(self._views)
        if missing or unexpected:
            raise ValueError(
                f"array-name mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for array_name, view in self._views.items():
            value = np.asarray(arrays[array_name])
            if value.shape != view.shape or np.dtype(value.dtype) != view.dtype:
                raise ValueError(
                    f"layout mismatch for {array_name!r}: segment holds "
                    f"{view.dtype}{view.shape}, got {value.dtype}{value.shape}"
                )
            view[...] = value
        self._header[0] += 1
        return int(self._header[0])

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        if self._closed:
            return
        self._closed = True
        # The numpy views pin the exported buffer; release them before
        # closing or SharedMemory.close() raises BufferError.
        self._views = {}
        self._header = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - caller kept a view alive
            pass

    def unlink(self) -> None:
        """Destroy the segment (publisher only; idempotent)."""
        if not self._owner:
            raise PermissionError("only the publishing process may unlink")
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()


# ----------------------------------------------------------------------
# sklearn-style estimator state
# ----------------------------------------------------------------------
def collect_array_state(estimator: object) -> dict[str, np.ndarray]:
    """Fitted ``*_`` attributes of a classical model, as named arrays.

    Scalars (``n_classes_``, ``n_iter_``) are stored as 0-d arrays so
    everything fits one ``.npz``; private and unfitted (``None``)
    attributes are skipped.
    """
    state: dict[str, np.ndarray] = {}
    for name, value in vars(estimator).items():
        if not name.endswith("_") or name.startswith("_") or value is None:
            continue
        state[name] = np.asarray(value)
    return state


def restore_array_state(estimator: object, state: dict[str, np.ndarray]) -> None:
    """Set fitted attributes captured by :func:`collect_array_state`.

    0-d integer/float arrays are unwrapped back to Python scalars so the
    estimator sees the same types it produced during ``fit``.
    """
    for name, value in state.items():
        if value.ndim == 0:
            setattr(estimator, name, value.item())
        else:
            setattr(estimator, name, value)
    # In-place fitted-state mutation: bump the weights version so
    # prediction caches keyed on it miss instead of serving rows
    # computed with the previous weights (see repro.engine.engine).
    estimator._weights_version = getattr(estimator, "_weights_version", 0) + 1
