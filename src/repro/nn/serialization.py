"""Weight persistence: save/load a module's state dict as ``.npz``."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.layers import Module

__all__ = ["save_weights", "load_weights"]


def save_weights(module: Module, path: str | Path) -> None:
    """Write every named parameter to a compressed ``.npz`` archive."""
    state = module.state_dict()
    np.savez_compressed(str(path), **state)


def load_weights(module: Module, path: str | Path) -> None:
    """Load weights written by :func:`save_weights` into ``module``.

    Shapes and names must match exactly.
    """
    with np.load(str(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
