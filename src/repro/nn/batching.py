"""Length-bucketed minibatch scheduling shared by the training loops.

The prediction engine already sorts inference requests by token count so
each batch pads only to its own longest row.  This module brings the
same idea to *training* without giving up shuffling: the epoch's random
order is kept, but consecutive *windows* of ``window × batch_size``
indices are sorted by length before being sliced into batches.  Batches
therefore contain near-uniform lengths (little padding) while batch
composition still changes every epoch with the shuffle.

``window=1`` (or ``0``) disables bucketing and reproduces plain
sequential slicing of the shuffled order exactly.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

__all__ = ["window_bucketed_batches", "padded_token_count"]


def window_bucketed_batches(
    order: Sequence[int],
    lengths: Sequence[int],
    batch_size: int,
    *,
    window: int = 8,
    rng: "np.random.Generator | None" = None,
) -> Iterator[list[int]]:
    """Yield index batches from ``order``, locally sorted by length.

    Parameters
    ----------
    order:
        The epoch's (shuffled) sample indices; consumed left to right.
    lengths:
        ``lengths[i]`` is the token count of sample ``i``.
    batch_size:
        Samples per batch; the final batch of a window may be shorter.
    window:
        How many batches' worth of indices are sorted together.  Larger
        windows pack lengths tighter but localise samples of similar
        length to the same training steps; ``<= 1`` disables sorting.
    rng:
        When given, the order of batches *within* each window is
        shuffled.  The sort is stable on length alone, so equal-length
        samples keep their shuffled order — together these keep batch
        composition and visit order stochastic across epochs even when
        one window spans the whole epoch.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if window <= 1:
        for start in range(0, len(order), batch_size):
            picks = list(order[start : start + batch_size])
            if picks:
                yield picks
        return
    span = batch_size * window
    for window_start in range(0, len(order), span):
        chunk = sorted(
            order[window_start : window_start + span],
            key=lengths.__getitem__,
        )
        batches = [
            chunk[start : start + batch_size]
            for start in range(0, len(chunk), batch_size)
        ]
        if rng is not None and len(batches) > 1:
            for pick in rng.permutation(len(batches)):
                yield batches[int(pick)]
        else:
            yield from batches


def padded_token_count(lengths: Sequence[int], batches: Iterator[list[int]]) -> int:
    """Total token slots (incl. padding) the given batches would cost."""
    total = 0
    for batch in batches:
        width = max(lengths[i] for i in batch)
        total += width * len(batch)
    return total
