"""Optimisers and learning-rate schedules."""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "SGD",
    "Adam",
    "AdamW",
    "LRSchedule",
    "ConstantSchedule",
    "WarmupLinearSchedule",
    "CosineSchedule",
    "clip_grad_norm",
]


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class _Optimizer:
    """Shared bookkeeping: parameter list, zero_grad, step counting."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters = [p for p in parameters]
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.t = 0

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(_Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self, parameters: Iterable[Tensor], lr: float, *, momentum: float = 0.0
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.t += 1
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum > 0:
                v *= self.momentum
                v -= self.lr * p.grad
                p.data += v
            else:
                p.data -= self.lr * p.grad


class Adam(_Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float,
        *,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _update(self, p: Tensor, m: np.ndarray, v: np.ndarray) -> np.ndarray:
        m *= self.beta1
        m += (1 - self.beta1) * p.grad
        v *= self.beta2
        v += (1 - self.beta2) * p.grad**2
        m_hat = m / (1 - self.beta1**self.t)
        v_hat = v / (1 - self.beta2**self.t)
        return self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def step(self) -> None:
        self.t += 1
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            p.data -= self._update(p, m, v)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float,
        *,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(parameters, lr, betas=betas, eps=eps)
        self.weight_decay = weight_decay

    def step(self) -> None:
        self.t += 1
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            p.data -= self.lr * self.weight_decay * p.data
            p.data -= self._update(p, m, v)


class LRSchedule:
    """Base schedule: maps step → learning rate and drives an optimizer."""

    def __init__(self, optimizer: _Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self._step = 0

    def rate(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step; sets and returns the optimizer's new lr."""
        self._step += 1
        lr = self.rate(self._step)
        self.optimizer.lr = lr
        return lr


class ConstantSchedule(LRSchedule):
    """Fixed learning rate."""

    def rate(self, step: int) -> float:
        return self.base_lr


class WarmupLinearSchedule(LRSchedule):
    """Linear warmup to base lr, then linear decay to zero."""

    def __init__(
        self, optimizer: _Optimizer, *, warmup_steps: int, total_steps: int
    ) -> None:
        super().__init__(optimizer)
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.warmup_steps = max(1, warmup_steps)
        self.total_steps = total_steps

    def rate(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        remaining = max(0, self.total_steps - step)
        return self.base_lr * remaining / (self.total_steps - self.warmup_steps)


class CosineSchedule(LRSchedule):
    """Linear warmup followed by cosine decay to ``min_lr``."""

    def __init__(
        self,
        optimizer: _Optimizer,
        *,
        warmup_steps: int,
        total_steps: int,
        min_lr: float = 0.0,
    ) -> None:
        super().__init__(optimizer)
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.warmup_steps = max(1, warmup_steps)
        self.total_steps = total_steps
        self.min_lr = min_lr

    def rate(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        progress = min(1.0, (step - self.warmup_steps) / (
            self.total_steps - self.warmup_steps
        ))
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * float(cosine)
