"""Optimisers and learning-rate schedules.

``Adam``/``AdamW`` keep their moment state in *flat* contiguous float32
buffers: all gradients are gathered into one preallocated array per
step, the moment updates and the bias-corrected step are a handful of
vectorised numpy calls over the whole buffer, and the per-parameter
slices of the result are subtracted back into each parameter in place.
On a model with dozens of small parameter tensors this replaces ~8
numpy calls *per parameter per step* with ~8 calls total.

Gradient clipping has a matching flat path: ``optimizer.
clip_grad_norm(max_norm)`` computes the global norm with one dot
product over the gathered buffer, then rescales the parameter
gradients in place; the standalone :func:`clip_grad_norm` function
remains for parameter lists that don't belong to an optimizer.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "SGD",
    "Adam",
    "AdamW",
    "LRSchedule",
    "ConstantSchedule",
    "WarmupLinearSchedule",
    "CosineSchedule",
    "clip_grad_norm",
]


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(
        np.sqrt(
            sum(float(np.dot(g, g)) for g in (p.grad.reshape(-1) for p in params))
        )
    )
    if total > max_norm and total > 0:
        scale = np.float32(max_norm / total)
        for p in params:
            p.grad *= scale
    return total


class _Optimizer:
    """Shared bookkeeping: parameter list, zero_grad, step counting."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters = [p for p in parameters]
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.t = 0

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def clip_grad_norm(self, max_norm: float) -> float:
        """Default path: delegate to the standalone function."""
        return clip_grad_norm(self.parameters, max_norm)

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(_Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self, parameters: Iterable[Tensor], lr: float, *, momentum: float = 0.0
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.t += 1
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum > 0:
                v *= self.momentum
                v -= self.lr * p.grad
                p.data += v
            else:
                p.data -= self.lr * p.grad


class Adam(_Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction, flat moment storage.

    The flat layout is built lazily from the parameters that actually
    received gradients (heads that a training phase never touches — the
    LM head during fine-tuning, the classifier during pretraining — are
    left out, exactly like the classic skip-if-``grad is None`` loop).
    If the set of live parameters changes mid-life, the layout is
    rebuilt; moments of every parameter seen so far are preserved in a
    side store, so a parameter that skips some steps resumes from its
    accumulated moments rather than restarting at zero.
    """

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float,
        *,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._live: list[Tensor] = []
        self._segments: list[tuple[int, int]] = []
        self._moment_store: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._signature: tuple[int, ...] | None = None
        self._flat_grad: np.ndarray | None = None
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._scratch: np.ndarray | None = None
        self._update: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Flat storage
    # ------------------------------------------------------------------
    def _rebuild_layout(self, live: list[Tensor], signature: tuple[int, ...]) -> None:
        segments: list[tuple[int, int]] = []
        offset = 0
        for p in live:
            segments.append((offset, offset + p.data.size))
            offset += p.data.size
        # Stash the outgoing layout's moments so parameters that drop
        # out of the live set (and later return) keep their state.
        # Keys are id(p); safe because self.parameters holds the refs.
        for p, (a, b) in zip(self._live, self._segments):
            self._moment_store[id(p)] = (self._m[a:b].copy(), self._v[a:b].copy())
        m = np.zeros(offset, dtype=np.float32)
        v = np.zeros(offset, dtype=np.float32)
        for p, (a, b) in zip(live, segments):
            kept = self._moment_store.get(id(p))
            if kept is not None:
                m[a:b], v[a:b] = kept
        self._live = live
        self._segments = segments
        self._signature = signature
        self._flat_grad = np.empty(offset, dtype=np.float32)
        self._m, self._v = m, v
        self._scratch = np.empty(offset, dtype=np.float32)
        self._update = np.empty(offset, dtype=np.float32)

    def _gather(self) -> np.ndarray:
        """Copy every live gradient into the flat buffer (preallocated)."""
        live = [p for p in self.parameters if p.grad is not None]
        signature = tuple(id(p) for p in live)
        if signature != self._signature:
            self._rebuild_layout(live, signature)
        flat = self._flat_grad
        for p, (a, b) in zip(live, self._segments):
            flat[a:b] = p.grad.reshape(-1)
        return flat

    def clip_grad_norm(self, max_norm: float) -> float:
        """Flat clip: the global norm is one dot product over the buffer.

        Scales the per-parameter ``.grad`` arrays in place (matching
        the standalone :func:`clip_grad_norm` contract); ``step()``
        re-gathers, so gradients accumulated after this call are still
        seen.
        """
        flat = self._gather()
        if flat.size == 0:
            return 0.0
        total = float(np.sqrt(np.dot(flat, flat)))
        if total > max_norm and total > 0:
            scale = np.float32(max_norm / total)
            for p in self._live:
                p.grad *= scale
        return total

    # ------------------------------------------------------------------
    def _flat_update(self) -> np.ndarray:
        """Vectorised moment update + bias-corrected step over the buffer."""
        g, m, v = self._flat_grad, self._m, self._v
        scratch, update = self._scratch, self._update
        beta1, beta2 = self.beta1, self.beta2
        m *= beta1
        np.multiply(g, np.float32(1 - beta1), out=scratch)
        m += scratch
        v *= beta2
        np.multiply(g, g, out=scratch)
        scratch *= np.float32(1 - beta2)
        v += scratch
        np.divide(m, np.float32(1 - beta1**self.t), out=update)
        np.divide(v, np.float32(1 - beta2**self.t), out=scratch)
        np.sqrt(scratch, out=scratch)
        scratch += np.float32(self.eps)
        update /= scratch
        update *= np.float32(self.lr)
        return update

    def _scatter(self, update: np.ndarray) -> None:
        for p, (a, b) in zip(self._live, self._segments):
            p.data -= update[a:b].reshape(p.data.shape)

    def step(self) -> None:
        self._gather()
        self.t += 1
        if self._flat_grad.size:
            self._scatter(self._flat_update())


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float,
        *,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(parameters, lr, betas=betas, eps=eps)
        self.weight_decay = weight_decay

    def step(self) -> None:
        self._gather()
        self.t += 1
        if self._flat_grad.size:
            decay = np.float32(1.0 - self.lr * self.weight_decay)
            for p in self._live:
                p.data *= decay
            self._scatter(self._flat_update())


class LRSchedule:
    """Base schedule: maps step → learning rate and drives an optimizer."""

    def __init__(self, optimizer: _Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self._step = 0

    def rate(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step; sets and returns the optimizer's new lr."""
        self._step += 1
        lr = self.rate(self._step)
        self.optimizer.lr = lr
        return lr


class ConstantSchedule(LRSchedule):
    """Fixed learning rate."""

    def rate(self, step: int) -> float:
        return self.base_lr


class WarmupLinearSchedule(LRSchedule):
    """Linear warmup to base lr, then linear decay to zero."""

    def __init__(
        self, optimizer: _Optimizer, *, warmup_steps: int, total_steps: int
    ) -> None:
        super().__init__(optimizer)
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.warmup_steps = max(1, warmup_steps)
        self.total_steps = total_steps

    def rate(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        remaining = max(0, self.total_steps - step)
        return self.base_lr * remaining / (self.total_steps - self.warmup_steps)


class CosineSchedule(LRSchedule):
    """Linear warmup followed by cosine decay to ``min_lr``."""

    def __init__(
        self,
        optimizer: _Optimizer,
        *,
        warmup_steps: int,
        total_steps: int,
        min_lr: float = 0.0,
    ) -> None:
        super().__init__(optimizer)
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.warmup_steps = max(1, warmup_steps)
        self.total_steps = total_steps
        self.min_lr = min_lr

    def rate(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        progress = min(1.0, (step - self.warmup_steps) / (
            self.total_steps - self.warmup_steps
        ))
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * float(cosine)
