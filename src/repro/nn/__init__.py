"""Numpy autograd engine: tensors, layers, attention, optimisers."""

from repro.nn.attention import MultiHeadAttention
from repro.nn.batching import padded_token_count, window_bucketed_batches
from repro.nn.functional import (
    attention_mask_from_padding,
    cross_entropy,
    dropout,
    fused_ops_enabled,
    layer_norm,
    linear,
    scaled_dot,
    use_fused_ops,
)
from repro.nn.layers import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Sequential,
)
from repro.nn.optim import (
    SGD,
    Adam,
    AdamW,
    ConstantSchedule,
    CosineSchedule,
    LRSchedule,
    WarmupLinearSchedule,
    clip_grad_norm,
)
from repro.nn.serialization import (
    collect_array_state,
    load_checkpoint,
    load_weights,
    restore_array_state,
    save_checkpoint,
    save_weights,
)
from repro.nn.tensor import Tensor, is_grad_enabled, no_grad, tape_node_count
from repro.nn.transformer import (
    DecoderBlock,
    EncoderBlock,
    FeedForward,
    TransformerEncoder,
)

__all__ = [
    "Adam",
    "AdamW",
    "ConstantSchedule",
    "CosineSchedule",
    "DecoderBlock",
    "Dropout",
    "Embedding",
    "EncoderBlock",
    "FeedForward",
    "LRSchedule",
    "LayerNorm",
    "Linear",
    "Module",
    "MultiHeadAttention",
    "SGD",
    "Sequential",
    "Tensor",
    "TransformerEncoder",
    "WarmupLinearSchedule",
    "attention_mask_from_padding",
    "clip_grad_norm",
    "collect_array_state",
    "cross_entropy",
    "dropout",
    "fused_ops_enabled",
    "is_grad_enabled",
    "layer_norm",
    "linear",
    "load_checkpoint",
    "load_weights",
    "no_grad",
    "padded_token_count",
    "restore_array_state",
    "save_checkpoint",
    "save_weights",
    "scaled_dot",
    "tape_node_count",
    "use_fused_ops",
    "window_bucketed_batches",
]
