"""Multi-head attention with optional causal masking and relative positions.

One implementation serves all six baselines: BERT-family encoders use
bidirectional attention with padding masks, GPT-2 adds the causal mask,
the T5 decoder adds cross-attention, and the XLNet variant switches on
the learned relative-position bias (its Transformer-XL inheritance).

Attention *geometry* — the causal mask and the relative-position bucket
indices — depends only on ``(t_query, t_key)``, not on the batch, so it
is computed once per shape and cached process-wide instead of being
rebuilt every forward of every layer every training step.  The
``1/sqrt(head_dim)`` score scale is folded into the fused score kernel
(:func:`repro.nn.functional.scaled_dot`) rather than spent on a separate
tape node.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.nn.functional import scaled_dot
from repro.nn.layers import Dropout, Linear, Module
from repro.nn.tensor import Tensor, is_grad_enabled

__all__ = ["MultiHeadAttention"]

_NEG_INF = -1e9


@lru_cache(maxsize=256)
def _causal_mask(t_query: int, t_key: int) -> np.ndarray:
    """Cached ``(1, 1, Tq, Tk)`` boolean mask, True on future positions."""
    future = np.triu(np.ones((t_query, t_key), dtype=bool), k=1)
    mask = future[None, None, :, :]
    mask.setflags(write=False)
    return mask


@lru_cache(maxsize=256)
def _relative_buckets(
    t_query: int, t_key: int, max_distance: int
) -> np.ndarray:
    """Cached flat ``(Tq*Tk,)`` bucket ids of clipped relative distances."""
    positions = np.arange(t_key)[None, :] - np.arange(t_query)[:, None]
    clipped = np.clip(positions, -max_distance, max_distance)
    buckets = (clipped + max_distance).astype(np.int64).reshape(-1)
    buckets.setflags(write=False)
    return buckets


def _gather_bias(rel_bias: Tensor, buckets: np.ndarray, t_query: int, t_key: int) -> Tensor:
    """Fused gather ``rel_bias[:, buckets] -> (H, Tq, Tk)`` in one node."""
    n_heads = rel_bias.data.shape[0]
    data = rel_bias.data[:, buckets].reshape(n_heads, t_query, t_key)
    if not (is_grad_enabled() and rel_bias.requires_grad):
        return Tensor(data)

    def backward(grad: np.ndarray) -> None:
        # Scatter-add per bucket: accumulate over (head-major) columns.
        full = np.zeros(
            (rel_bias.data.shape[1], n_heads), dtype=np.float32
        )
        np.add.at(full, buckets, grad.reshape(n_heads, -1).T)
        rel_bias._accumulate(np.ascontiguousarray(full.T), owned=True)

    return Tensor._node(data, (rel_bias,), backward)


class MultiHeadAttention(Module):
    """Scaled dot-product attention over ``(B, T, D)`` inputs.

    Parameters
    ----------
    dim:
        Model width; must divide evenly by ``n_heads``.
    n_heads:
        Number of attention heads.
    causal:
        Mask future positions (decoder-style).
    relative_positions:
        Add a learned relative-position bias to the attention scores
        (clipped at ``max_relative_distance``), as in Transformer-XL/XLNet
        and T5.
    """

    def __init__(
        self,
        dim: int,
        n_heads: int,
        *,
        causal: bool = False,
        relative_positions: bool = False,
        max_relative_distance: int = 16,
        dropout: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} not divisible by n_heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.scale = 1.0 / float(np.sqrt(self.head_dim))
        self.causal = causal
        self.relative_positions = relative_positions
        self.max_relative_distance = max_relative_distance
        self.q_proj = Linear(dim, dim, seed=seed)
        self.k_proj = Linear(dim, dim, seed=seed + 1)
        self.v_proj = Linear(dim, dim, seed=seed + 2)
        self.out_proj = Linear(dim, dim, seed=seed + 3)
        self.attn_dropout = Dropout(dropout, seed=seed + 4)
        if relative_positions:
            rng = np.random.default_rng(seed + 5)
            n_buckets = 2 * max_relative_distance + 1
            self.rel_bias = Tensor(
                rng.normal(0.0, 0.02, size=(n_heads, n_buckets)),
                requires_grad=True,
            )

    # ------------------------------------------------------------------
    def _split_heads(self, x: Tensor) -> Tensor:
        b, t, _ = x.shape
        return x.reshape(b, t, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        b, h, t, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * d)

    def _relative_bias(self, t_query: int, t_key: int) -> Tensor:
        """Per-head bias ``(H, Tq, Tk)`` from cached bucket indices."""
        buckets = _relative_buckets(t_query, t_key, self.max_relative_distance)
        return _gather_bias(self.rel_bias, buckets, t_query, t_key)

    # ------------------------------------------------------------------
    def forward(
        self,
        query: Tensor,
        key: Tensor | None = None,
        value: Tensor | None = None,
        *,
        padding_mask: np.ndarray | None = None,
    ) -> Tensor:
        """Attend; ``key``/``value`` default to ``query`` (self-attention).

        ``padding_mask`` is boolean, True on PAD key positions, and must
        broadcast to the score shape ``(B, H, Tq, Tk)``.
        """
        key = query if key is None else key
        value = key if value is None else value
        q = self._split_heads(self.q_proj(query))
        k = self._split_heads(self.k_proj(key))
        v = self._split_heads(self.v_proj(value))

        t_query, t_key = q.shape[2], k.shape[2]
        scores = scaled_dot(q, k, self.scale)
        if self.relative_positions:
            scores = scores + self._relative_bias(t_query, t_key)
        if self.causal:
            scores = scores.masked_fill(_causal_mask(t_query, t_key), _NEG_INF)
        if padding_mask is not None:
            scores = scores.masked_fill(padding_mask, _NEG_INF)

        weights = self.attn_dropout(scores.softmax(axis=-1))
        return self.out_proj(self._merge_heads(weights @ v))
