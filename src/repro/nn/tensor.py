"""A small reverse-mode autodiff engine over numpy arrays.

This is the substrate the six transformer baselines are built on: a
``Tensor`` wraps an ``ndarray``, records the operation that produced it,
and ``backward()`` walks the tape in reverse topological order
accumulating gradients.  Broadcasting follows numpy semantics; gradients
of broadcast operands are summed back to the original shape.

Only the operations the models need are implemented, each with an exact
(not numerical) backward rule; the test suite checks every rule against
finite differences.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self) -> None:
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False

    def __exit__(self, *exc: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """True unless inside a :class:`no_grad` block."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An autodiff node wrapping a float32 numpy array."""

    __slots__ = ("data", "grad", "requires_grad", "_backward_fn", "_parents")

    def __init__(
        self,
        data: "np.ndarray | float | int | list",
        *,
        requires_grad: bool = False,
    ) -> None:
        array = np.asarray(data, dtype=np.float32)
        self.data: np.ndarray = array
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward_fn: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Graph helpers
    # ------------------------------------------------------------------
    @classmethod
    def _make(
        cls,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = cls(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward_fn = backward_fn
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: "np.ndarray | None" = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalars; non-scalar roots require an
        explicit output gradient.
        """
        if not self.requires_grad:
            raise RuntimeError("tensor does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() on non-scalar needs an explicit grad")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float32)

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value: "Tensor | float | int | np.ndarray") -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other: "Tensor | float | int") -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: "Tensor | float | int") -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: "Tensor | float | int") -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: "Tensor | float | int") -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float | int") -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(
                        -grad * self.data / (other.data**2), other.data.shape
                    )
                )

        return Tensor._make(data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    grad_self = np.expand_dims(grad, -1) * other.data
                else:
                    grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(grad_self, self.data.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.expand_dims(self.data, -1) * np.expand_dims(
                        grad, -2
                    )
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(grad_other, other.data.shape))

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data**2))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0))

        return Tensor._make(data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        c = np.float32(np.sqrt(2.0 / np.pi))
        inner = c * (self.data + 0.044715 * self.data**3)
        tanh_inner = np.tanh(inner)
        data = 0.5 * self.data * (1.0 + tanh_inner)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                sech2 = 1.0 - tanh_inner**2
                d_inner = c * (1.0 + 3 * 0.044715 * self.data**2)
                local = 0.5 * (1.0 + tanh_inner) + 0.5 * self.data * sech2 * d_inner
                self._accumulate(grad * local)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(
        self, axis: "int | tuple[int, ...] | None" = None, keepdims: bool = False
    ) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for a in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(
        self, axis: "int | tuple[int, ...] | None" = None, keepdims: bool = False
    ) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad if keepdims else np.expand_dims(grad, axis)
            full = data if keepdims else np.expand_dims(data, axis)
            mask = self.data == full
            counts = mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * g / counts)

        return Tensor._make(data, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        order = axes or tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(order)
        inverse = np.argsort(order)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        data = np.swapaxes(self.data, a, b)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(grad, a, b))

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Composite ops with fused backwards
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                dot = (grad * data).sum(axis=axis, keepdims=True)
                self._accumulate(data * (grad - dot))

        return Tensor._make(data, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace entries where ``mask`` is True with ``value``."""
        data = np.where(mask, np.float32(value), self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    _unbroadcast(
                        np.where(mask, np.float32(0.0), grad), self.data.shape
                    )
                )

        return Tensor._make(data, (self,), backward)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        arrays = [t.data for t in tensors]
        data = np.concatenate(arrays, axis=axis)
        sizes = [a.shape[axis] for a in arrays]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            slicer: list[slice] = [slice(None)] * grad.ndim
            for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    slicer[axis] = slice(int(start), int(end))
                    t._accumulate(grad[tuple(slicer)])

        return Tensor._make(data, tuple(tensors), backward)

    @staticmethod
    def embedding(weight: "Tensor", ids: np.ndarray) -> "Tensor":
        """Row lookup ``weight[ids]`` with scatter-add backward."""
        ids = np.asarray(ids, dtype=np.int64)
        data = weight.data[ids]

        def backward(grad: np.ndarray) -> None:
            if weight.requires_grad:
                full = np.zeros_like(weight.data)
                np.add.at(full, ids, grad)
                weight._accumulate(full)

        return Tensor._make(data, (weight,), backward)
