"""A small reverse-mode autodiff engine over numpy arrays.

This is the substrate the six transformer baselines are built on: a
``Tensor`` wraps an ``ndarray``, records the operation that produced it,
and ``backward()`` walks the tape in reverse topological order
accumulating gradients.  Broadcasting follows numpy semantics; gradients
of broadcast operands are summed back to the original shape.

Only the operations the models need are implemented, each with an exact
(not numerical) backward rule; the test suite checks every rule against
finite differences.

Two performance properties hold throughout:

* **Zero-tape inference.**  Every op checks whether a tape node is
  actually needed *before* building one.  Inside :class:`no_grad` (or
  when no input requires grad) an op allocates only its result array —
  no closure, no parent tuple, no node bookkeeping.  The debug counter
  :func:`tape_node_count` makes this testable.
* **Copy-free accumulation.**  Backward rules that hand over a freshly
  allocated array mark it *owned*, and :meth:`Tensor._accumulate`
  adopts it as the gradient buffer instead of copying.  Only gradients
  that alias upstream storage (pass-throughs and views) are copied on
  first accumulation.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "tape_node_count"]

_GRAD_ENABLED = True
_TAPE_NODES = 0
_F32 = np.dtype(np.float32)


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self) -> None:
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False

    def __exit__(self, *exc: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """True unless inside a :class:`no_grad` block."""
    return _GRAD_ENABLED


def tape_node_count() -> int:
    """Total tape nodes built since import (debug/testing aid).

    Ops executed under :class:`no_grad`, or whose inputs don't require
    grad, must leave this counter untouched.
    """
    return _TAPE_NODES


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An autodiff node wrapping a float32 numpy array."""

    __slots__ = ("data", "grad", "requires_grad", "_backward_fn", "_parents")

    def __init__(
        self,
        data: "np.ndarray | float | int | list",
        *,
        requires_grad: bool = False,
    ) -> None:
        if type(data) is np.ndarray and data.dtype is _F32:
            array = data
        else:
            array = np.asarray(data, dtype=np.float32)
        self.data: np.ndarray = array
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward_fn: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Graph helpers
    # ------------------------------------------------------------------
    @classmethod
    def _node(
        cls,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Build a tape node.  Callers must have checked :func:`_tape`."""
        global _TAPE_NODES
        out = cls(data)
        out.requires_grad = True
        out._parents = parents
        out._backward_fn = backward_fn
        _TAPE_NODES += 1
        return out

    @classmethod
    def _make(
        cls,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Compatibility helper: node if the tape is live, else plain tensor."""
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            return cls._node(data, parents, backward_fn)
        return cls(data)

    def _accumulate(self, grad: np.ndarray, *, owned: bool = False) -> None:
        """Add ``grad`` into this tensor's gradient buffer.

        ``owned=True`` promises the array is freshly allocated, float32,
        and aliased nowhere else, so it can be adopted as the buffer
        directly instead of copied.
        """
        if self.grad is None:
            if owned and grad.dtype is _F32:
                self.grad = grad
            else:
                self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: "np.ndarray | None" = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalars; non-scalar roots require an
        explicit output gradient.
        """
        if not self.requires_grad:
            raise RuntimeError("tensor does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() on non-scalar needs an explicit grad")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float32)

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value: "Tensor | float | int | np.ndarray") -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other: "Tensor | float | int") -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data
        if not _GRAD_ENABLED or not (self.requires_grad or other.requires_grad):
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = _unbroadcast(grad, self.data.shape)
                self._accumulate(g, owned=g is not grad)
            if other.requires_grad:
                g = _unbroadcast(grad, other.data.shape)
                other._accumulate(g, owned=g is not grad)

        return Tensor._node(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        if not _GRAD_ENABLED or not self.requires_grad:
            return Tensor(-self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad, owned=True)

        return Tensor._node(-self.data, (self,), backward)

    def __sub__(self, other: "Tensor | float | int") -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: "Tensor | float | int") -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: "Tensor | float | int") -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data
        if not _GRAD_ENABLED or not (self.requires_grad or other.requires_grad):
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    _unbroadcast(grad * other.data, self.data.shape), owned=True
                )
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(grad * self.data, other.data.shape), owned=True
                )

        return Tensor._node(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float | int") -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data
        if not _GRAD_ENABLED or not (self.requires_grad or other.requires_grad):
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    _unbroadcast(grad / other.data, self.data.shape), owned=True
                )
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(
                        -grad * self.data / (other.data**2), other.data.shape
                    ),
                    owned=True,
                )

        return Tensor._node(data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent
        if not _GRAD_ENABLED or not self.requires_grad:
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(
                grad * exponent * self.data ** (exponent - 1), owned=True
            )

        return Tensor._node(data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        data = self.data @ other.data
        if not _GRAD_ENABLED or not (self.requires_grad or other.requires_grad):
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    grad_self = np.expand_dims(grad, -1) * other.data
                else:
                    grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(
                    _unbroadcast(grad_self, self.data.shape), owned=True
                )
            if other.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.expand_dims(self.data, -1) * np.expand_dims(
                        grad, -2
                    )
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(
                    _unbroadcast(grad_other, other.data.shape), owned=True
                )

        return Tensor._node(data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        if not _GRAD_ENABLED or not self.requires_grad:
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data, owned=True)

        return Tensor._node(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)
        if not _GRAD_ENABLED or not self.requires_grad:
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data, owned=True)

        return Tensor._node(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        if not _GRAD_ENABLED or not self.requires_grad:
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data * data), owned=True)

        return Tensor._node(data, (self,), backward)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)
        if not _GRAD_ENABLED or not self.requires_grad:
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0), owned=True)

        return Tensor._node(data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation), fused.

        Forward keeps only ``tanh(inner)`` for backward; the cubic term
        is built from multiplies (``x*x*x``) rather than ``np.power``,
        which is an order of magnitude slower on float32.
        """
        c = np.float32(np.sqrt(2.0 / np.pi))
        x = self.data
        inner = x * x
        inner *= np.float32(0.044715)
        inner += 1.0
        inner *= x  # x + 0.044715 x^3
        inner *= c
        tanh_inner = np.tanh(inner)
        data = tanh_inner + 1.0
        data *= x
        data *= 0.5  # 0.5 x (1 + tanh(inner))
        if not _GRAD_ENABLED or not self.requires_grad:
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            x2 = x * x
            sech2 = 1.0 - tanh_inner * tanh_inner
            d_inner = x2
            d_inner *= np.float32(3 * 0.044715)
            d_inner += 1.0
            d_inner *= c  # c (1 + 3*0.044715 x^2)
            local = sech2
            local *= d_inner
            local *= x
            local += tanh_inner
            local += 1.0
            local *= np.float32(0.5)
            local *= grad
            self._accumulate(local, owned=True)

        return Tensor._node(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))
        if not _GRAD_ENABLED or not self.requires_grad:
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data), owned=True)

        return Tensor._node(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(
        self, axis: "int | tuple[int, ...] | None" = None, keepdims: bool = False
    ) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        if not _GRAD_ENABLED or not self.requires_grad:
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for a in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy(), owned=True)

        return Tensor._node(data, (self,), backward)

    def mean(
        self, axis: "int | tuple[int, ...] | None" = None, keepdims: bool = False
    ) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        if not _GRAD_ENABLED or not self.requires_grad:
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            g = grad if keepdims else np.expand_dims(grad, axis)
            full = data if keepdims else np.expand_dims(data, axis)
            mask = self.data == full
            counts = mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * g / counts, owned=True)

        return Tensor._node(data, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        data = self.data.reshape(shape)
        if not _GRAD_ENABLED or not self.requires_grad:
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            # reshape may return a view of the upstream grad: never owned.
            self._accumulate(grad.reshape(self.data.shape))

        return Tensor._node(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        order = axes or tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(order)
        if not _GRAD_ENABLED or not self.requires_grad:
            return Tensor(data)
        inverse = np.argsort(order)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._node(data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        data = np.swapaxes(self.data, a, b)
        if not _GRAD_ENABLED or not self.requires_grad:
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.swapaxes(grad, a, b))

        return Tensor._node(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        if not _GRAD_ENABLED or not self.requires_grad:
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full, owned=True)

        return Tensor._node(data, (self,), backward)

    # ------------------------------------------------------------------
    # Composite ops with fused backwards
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        data = np.exp(shifted, out=shifted)
        data /= data.sum(axis=axis, keepdims=True)
        if not _GRAD_ENABLED or not self.requires_grad:
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            # Reuse the forward output: dL/dx = p * (g - <g, p>).
            dot = (grad * data).sum(axis=axis, keepdims=True)
            out = grad - dot
            out *= data
            self._accumulate(out, owned=True)

        return Tensor._node(data, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace entries where ``mask`` is True with ``value``."""
        data = np.where(mask, np.float32(value), self.data)
        if not _GRAD_ENABLED or not self.requires_grad:
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(
                _unbroadcast(np.where(mask, np.float32(0.0), grad), self.data.shape),
                owned=True,
            )

        return Tensor._node(data, (self,), backward)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        arrays = [t.data for t in tensors]
        data = np.concatenate(arrays, axis=axis)
        if not _GRAD_ENABLED or not any(t.requires_grad for t in tensors):
            return Tensor(data)
        sizes = [a.shape[axis] for a in arrays]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            slicer: list[slice] = [slice(None)] * grad.ndim
            for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    slicer[axis] = slice(int(start), int(end))
                    t._accumulate(grad[tuple(slicer)])

        return Tensor._node(data, tuple(tensors), backward)

    @staticmethod
    def embedding(weight: "Tensor", ids: np.ndarray) -> "Tensor":
        """Row lookup ``weight[ids]`` with scatter-add backward."""
        ids = np.asarray(ids, dtype=np.int64)
        data = weight.data[ids]
        if not _GRAD_ENABLED or not weight.requires_grad:
            return Tensor(data)

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(weight.data)
            np.add.at(full, ids, grad)
            weight._accumulate(full, owned=True)

        return Tensor._node(data, (weight,), backward)
