"""``holistix-lint`` — run the HX concurrency/determinism rules.

Usage::

    holistix-lint src/ scripts/            # human-readable, exit 1 on findings
    holistix-lint --format github src/     # GitHub Actions ::error annotations
    holistix-lint --select HX001,HX003 f.py
    holistix-lint --list-rules

Exit codes: 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.linter import run
from repro.analysis.rules import ALL_RULES, Rule, Violation

__all__ = ["main"]


def _github_annotation(violation: Violation) -> str:
    # https://docs.github.com/actions/reference/workflow-commands — the
    # message field must not contain raw newlines.
    message = f"{violation.rule} {violation.message}".replace("\n", " ")
    return (
        f"::error file={violation.path},line={violation.line},"
        f"col={violation.col + 1}::{message}"
    )


def _select_rules(spec: str | None) -> list[Rule]:
    if spec is None:
        return list(ALL_RULES)
    wanted = {code.strip().upper() for code in spec.split(",") if code.strip()}
    known = {rule.rule_id for rule in ALL_RULES}
    unknown = wanted - known
    if unknown:
        raise SystemExit(
            f"holistix-lint: unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})"
        )
    return [rule for rule in ALL_RULES if rule.rule_id in wanted]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="holistix-lint",
        description="Repo-specific concurrency & determinism lint (HX rules).",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        type=Path,
        help="files or directories to lint (directories recurse over *.py)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="output style: human-readable, or GitHub Actions ::error lines",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.summary}")
        return 0

    if not args.targets:
        parser.print_usage(sys.stderr)
        print("holistix-lint: no targets given", file=sys.stderr)
        return 2

    missing = [str(t) for t in args.targets if not t.exists()]
    if missing:
        print(f"holistix-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    violations = run(args.targets, _select_rules(args.select))
    for violation in violations:
        if args.format == "github":
            print(_github_annotation(violation))
        else:
            print(violation.render())
    if violations:
        count = len(violations)
        plural = "s" if count != 1 else ""
        print(f"holistix-lint: {count} violation{plural}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
