"""Static and dynamic concurrency/determinism analysis for this repo.

Two halves:

* :mod:`repro.analysis.rules` + :mod:`repro.analysis.linter` — the
  ``holistix-lint`` AST rules (HX001–HX006) that check lock discipline,
  seeded-path determinism, thread ownership, metric naming, and chaos
  seams at lint time.
* :mod:`repro.analysis.lockcheck` — the ``REPRO_LOCK_CHECK=1`` runtime
  lock-order registry (:class:`~repro.analysis.lockcheck.OrderedLock`)
  that turns potential deadlocks and lock-contract violations into
  deterministic test failures.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue.
"""

from repro.analysis.lockcheck import (
    LockOrderError,
    LockOrderRegistry,
    OrderedLock,
    create_lock,
    lock_check_enabled,
    require_held,
)
from repro.analysis.linter import check_file, check_source, run
from repro.analysis.rules import ALL_RULES, FileContext, Rule, Violation

__all__ = [
    "ALL_RULES",
    "FileContext",
    "LockOrderError",
    "LockOrderRegistry",
    "OrderedLock",
    "Rule",
    "Violation",
    "check_file",
    "check_source",
    "create_lock",
    "lock_check_enabled",
    "require_held",
    "run",
]
