"""Repo-specific AST lint rules (HX001–HX006).

Each rule encodes one invariant the serving stack's correctness leans
on.  They are deliberately *heuristic*: the goal is to make the easy
mistake loud at lint time, not to build a sound static analyzer.  Every
rule documents its heuristic and its known blind spots; deliberate
exceptions are silenced in-line with ``# noqa: HXnnn`` (see
:mod:`repro.analysis.linter`).

The rules:

========  ==============================================================
HX001     shared-state field written outside its owning ``with lock``
HX002     blocking call while holding a lock
HX003     wall-clock / global randomness in seeded (deterministic) code
HX004     ``threading.Thread`` without an explicit ``daemon=`` decision
HX005     Prometheus metric-name and label conventions
HX006     chaos seam used without a ``None`` guard
========  ==============================================================
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import ClassVar

__all__ = ["ALL_RULES", "FileContext", "Rule", "Violation", "rule_by_id"]

_LOCK_NAME_RE = re.compile(r"(?:^|_)(?:lock|locks|mutex)(?:_|$|s$)|(?:lock|mutex)$")


@dataclass(frozen=True)
class Violation:
    """One finding: rule, location, and a message naming the fix."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


@dataclass(frozen=True)
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    tree: ast.Module
    lines: tuple[str, ...]

    @classmethod
    def from_source(cls, source: str, path: str) -> "FileContext":
        return cls(
            path=path,
            source=source,
            tree=ast.parse(source, filename=path),
            lines=tuple(source.splitlines()),
        )


class Rule:
    """Base class: subclasses set ``rule_id``/``summary`` and ``check``."""

    rule_id: ClassVar[str] = ""
    summary: ClassVar[str] = ""

    def check(self, ctx: FileContext) -> list[Violation]:
        raise NotImplementedError

    def _violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=self.rule_id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _ancestors(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> list[ast.AST]:
    chain: list[ast.AST] = []
    current = parents.get(node)
    while current is not None:
        chain.append(current)
        current = parents.get(current)
    return chain


def _is_lock_factory_call(node: ast.expr) -> bool:
    """``threading.Lock()`` / ``threading.RLock()`` / ``create_lock(...)``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in ("Lock", "RLock", "create_lock")
    if isinstance(func, ast.Name):
        return func.id in ("Lock", "RLock", "create_lock")
    return False


def _makes_lock(value: ast.expr) -> bool:
    """The assigned value is a lock, or a list/dict comprehension of locks."""
    if _is_lock_factory_call(value):
        return True
    if isinstance(value, (ast.ListComp, ast.SetComp)):
        return _is_lock_factory_call(value.elt)
    if isinstance(value, ast.DictComp):
        return _is_lock_factory_call(value.value)
    if isinstance(value, (ast.List, ast.Tuple)):
        return any(_is_lock_factory_call(item) for item in value.elts)
    return False


def _self_attr_name(node: ast.expr) -> str | None:
    """``self.<attr>`` -> attr; ``self.<attr>[i]`` -> attr; else None."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_attrs_of_class(cls: ast.ClassDef) -> set[str]:
    """Attrs assigned a lock in ``__init__`` whose name looks lock-ish."""
    attrs: set[str] = set()
    for item in cls.body:
        if not (isinstance(item, ast.FunctionDef) and item.name == "__init__"):
            continue
        for node in ast.walk(item):
            if isinstance(node, ast.Assign) and _makes_lock(node.value):
                for target in node.targets:
                    name = _self_attr_name(target)
                    if name is not None and _LOCK_NAME_RE.search(name):
                        attrs.add(name)
            elif (
                isinstance(node, ast.AnnAssign)
                and node.value is not None
                and _makes_lock(node.value)
            ):
                name = _self_attr_name(node.target)
                if name is not None and _LOCK_NAME_RE.search(name):
                    attrs.add(name)
    return attrs


def _with_holds_lock(node: ast.With, lock_attrs: set[str]) -> bool:
    """Any with-item acquires ``self.<lock>`` (or ``self.<locks>[i]``)."""
    for item in node.items:
        name = _self_attr_name(item.context_expr)
        if name is not None and name in lock_attrs:
            return True
    return False


def _written_self_fields(stmt: ast.stmt) -> list[tuple[str, ast.AST]]:
    """(field, node) for every ``self.<field>`` store inside ``stmt``.

    Covers plain assigns, annotated and augmented assigns, and
    subscript stores (``self._x[i] = ...`` mutates shared state just as
    much as rebinding the attribute does).
    """
    found: list[tuple[str, ast.AST]] = []
    for node in ast.walk(stmt):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            for element in _flatten_target(target):
                name = _self_attr_name(element)
                if name is not None:
                    found.append((name, node))
    return found


def _flatten_target(target: ast.expr) -> list[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        flat: list[ast.expr] = []
        for element in target.elts:
            flat.extend(_flatten_target(element))
        return flat
    return [target]


def _methods_of(cls: ast.ClassDef) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    return [
        item
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


# ---------------------------------------------------------------------------
# HX001 — shared-state field written outside its owning lock
# ---------------------------------------------------------------------------


class HX001LockedFieldWrite(Rule):
    """Guarded fields must only be written under their ``with lock``.

    Heuristic: a class owns a lock if ``__init__`` assigns a
    ``threading.Lock()`` / ``RLock()`` / ``create_lock()`` to a
    lock-named attribute (``_lock``, ``_mutex``, ``_slot_locks``…).  A
    field becomes *guarded* the first time any method writes it inside
    ``with self.<lock>``.  Every other write to that field must also be
    inside such a block, except in ``__init__``/``__post_init__``
    (object not yet shared) and ``*_locked`` methods (contract: caller
    holds the lock — enforced dynamically by
    :func:`repro.analysis.lockcheck.require_held`).
    """

    rule_id = "HX001"
    summary = "shared-state field written outside its owning lock"

    _EXEMPT = ("__init__", "__post_init__")

    def check(self, ctx: FileContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                violations.extend(self._check_class(ctx, node))
        return violations

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> list[Violation]:
        lock_attrs = _lock_attrs_of_class(cls)
        if not lock_attrs:
            return []
        parents = _parent_map(cls)
        guarded: set[str] = set()
        writes: list[tuple[str, ast.AST, bool, str]] = []
        for method in _methods_of(cls):
            exempt = method.name in self._EXEMPT or method.name.endswith("_locked")
            for field, node in _written_self_fields(method):
                if field in lock_attrs:
                    continue
                under_lock = any(
                    isinstance(anc, ast.With) and _with_holds_lock(anc, lock_attrs)
                    for anc in _ancestors(node, parents)
                )
                if under_lock and not exempt:
                    guarded.add(field)
                writes.append((field, node, under_lock, method.name))
        violations: list[Violation] = []
        for field, node, under_lock, method_name in writes:
            if field not in guarded or under_lock:
                continue
            if method_name in self._EXEMPT or method_name.endswith("_locked"):
                continue
            violations.append(
                self._violation(
                    ctx,
                    node,
                    f"field 'self.{field}' of class '{cls.name}' is written "
                    f"under a lock elsewhere but written here (in "
                    f"'{method_name}') without holding it; move the write "
                    "inside the with-lock block or rename the method "
                    "'*_locked' if the caller holds the lock",
                )
            )
        return violations


# ---------------------------------------------------------------------------
# HX002 — blocking call while holding a lock
# ---------------------------------------------------------------------------


class HX002BlockingUnderLock(Rule):
    """No sleeps, joins, or socket/pipe I/O inside a lock-held region.

    Heuristic: inside any ``with`` whose context expression's terminal
    name looks lock-ish (``_lock``, ``_mutex``, ``_slot_locks[i]``…),
    flag calls whose callee name is a known blocking primitive.
    ``Condition.wait`` is deliberately *not* flagged — it releases the
    underlying lock while sleeping, which is the whole point.  String
    ``"sep".join`` and ``os.path.join`` receivers are skipped.
    """

    rule_id = "HX002"
    summary = "blocking call while holding a lock"

    _BLOCKING_ATTRS = frozenset(
        {
            "sleep",
            "join",
            "recv",
            "recv_bytes",
            "poll",
            "select",
            "accept",
            "connect",
            "result",
            "send",
            "send_bytes",
            "urlopen",
            "getresponse",
            "read",
            "readline",
        }
    )
    _BLOCKING_NAMES = frozenset({"sleep", "urlopen", "input"})
    _PATH_MODULES = frozenset({"os.path", "posixpath", "ntpath", "path"})

    def check(self, ctx: FileContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.With) and self._is_lock_with(node):
                violations.extend(self._scan_block(ctx, node))
        return violations

    def _is_lock_with(self, node: ast.With) -> bool:
        for item in node.items:
            expr: ast.expr = item.context_expr
            if isinstance(expr, ast.Subscript):
                expr = expr.value
            terminal: str | None = None
            if isinstance(expr, ast.Attribute):
                terminal = expr.attr
            elif isinstance(expr, ast.Name):
                terminal = expr.id
            if terminal is not None and _LOCK_NAME_RE.search(terminal):
                return True
        return False

    def _scan_block(self, ctx: FileContext, block: ast.With) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(block):
            if not isinstance(node, ast.Call):
                continue
            label = self._blocking_label(node)
            if label is not None:
                violations.append(
                    self._violation(
                        ctx,
                        node,
                        f"blocking call '{label}' while holding a lock; "
                        "copy what you need under the lock, release it, "
                        "then block",
                    )
                )
        return violations

    def _blocking_label(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self._BLOCKING_NAMES:
                return func.id
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        if attr not in self._BLOCKING_ATTRS:
            return None
        receiver = func.value
        # "sep".join(...) is string formatting, not thread join.
        if attr == "join" and isinstance(receiver, ast.Constant):
            return None
        if attr == "join":
            rendered = _render(receiver)
            if rendered in self._PATH_MODULES or rendered.endswith(".path"):
                return None
        # dict.get(...).read style false positives are rare enough to accept.
        return f"{_render(receiver)}.{attr}"


def _render(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failures are cosmetic
        return "<expr>"


# ---------------------------------------------------------------------------
# HX003 — nondeterminism in seeded modules
# ---------------------------------------------------------------------------


class HX003SeededDeterminism(Rule):
    """Seeded modules must not reach wall-clock or global randomness.

    Applies to the deterministic subsystems (``repro/loadgen``,
    ``repro/chaos``, ``repro/corpus/factory.py``) and to any file whose
    header carries a ``# holistix-lint: seeded-module`` directive.
    Flags ``time.time``/``time_ns``, ``os.urandom``, ``uuid.uuid4``,
    ``datetime…now``/``utcnow``, module-level ``random.*`` (seeding a
    ``random.Random(seed)`` instance is the sanctioned idiom), and
    ``np.random.*`` outside ``default_rng``/``SeedSequence``.
    ``time.monotonic``/``perf_counter`` are fine — they measure
    duration, not identity, and loadgen's virtual clock injects them.
    """

    rule_id = "HX003"
    summary = "wall-clock or global randomness in a seeded module"

    _SEEDED_PATH_PARTS = ("/loadgen/", "/chaos/")
    _SEEDED_PATH_SUFFIXES = ("corpus/factory.py",)
    _DIRECTIVE = "holistix-lint: seeded-module"

    _RANDOM_OK = frozenset({"Random", "SystemRandom"})
    _NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence"})
    _BANNED_FROM_IMPORTS = {
        ("time", "time"): "time.time",
        ("time", "time_ns"): "time.time_ns",
        ("os", "urandom"): "os.urandom",
        ("uuid", "uuid4"): "uuid.uuid4",
    }

    def check(self, ctx: FileContext) -> list[Violation]:
        if not self._applies(ctx):
            return []
        banned_names = self._banned_name_aliases(ctx.tree)
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            label = self._banned_label(node.func, banned_names)
            if label is not None:
                violations.append(
                    self._violation(
                        ctx,
                        node,
                        f"'{label}' in a seeded module breaks replayability; "
                        "inject a clock/rng parameter (e.g. random.Random(seed), "
                        "time.monotonic) instead",
                    )
                )
        return violations

    def _applies(self, ctx: FileContext) -> bool:
        path = ctx.path.replace("\\", "/")
        if any(part in path for part in self._SEEDED_PATH_PARTS):
            return True
        if any(path.endswith(suffix) for suffix in self._SEEDED_PATH_SUFFIXES):
            return True
        return any(self._DIRECTIVE in line for line in ctx.lines[:5])

    def _banned_name_aliases(self, tree: ast.Module) -> dict[str, str]:
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module is not None:
                for alias in node.names:
                    key = (node.module, alias.name)
                    if key in self._BANNED_FROM_IMPORTS:
                        bound = alias.asname if alias.asname else alias.name
                        aliases[bound] = self._BANNED_FROM_IMPORTS[key]
        return aliases

    def _banned_label(
        self, func: ast.expr, banned_names: dict[str, str]
    ) -> str | None:
        if isinstance(func, ast.Name):
            return banned_names.get(func.id)
        if not isinstance(func, ast.Attribute):
            return None
        receiver = _render(func.value)
        attr = func.attr
        if receiver == "time" and attr in ("time", "time_ns"):
            return f"time.{attr}"
        if receiver == "os" and attr == "urandom":
            return "os.urandom"
        if receiver == "uuid" and attr == "uuid4":
            return "uuid.uuid4"
        if attr in ("now", "utcnow", "today") and "datetime" in receiver.split("."):
            return f"{receiver}.{attr}"
        if receiver == "random" and attr not in self._RANDOM_OK:
            return f"random.{attr}"
        if receiver in ("np.random", "numpy.random") and attr not in self._NP_RANDOM_OK:
            return f"{receiver}.{attr}"
        return None


# ---------------------------------------------------------------------------
# HX004 — Thread without an explicit ownership decision
# ---------------------------------------------------------------------------


class HX004ThreadOwnership(Rule):
    """Every ``threading.Thread`` must state who reaps it.

    Heuristic: the constructor call must pass an explicit ``daemon=``
    keyword.  ``daemon=True`` says "the supervisor/interpreter owns
    shutdown"; ``daemon=False`` says "somebody joins this" — either
    way the author decided.  A bare ``Thread(target=...)`` silently
    inherits daemon-ness from the *creating* thread, which is exactly
    the kind of context-dependent behaviour that leaks threads past
    ``stop()`` in a server.
    """

    rule_id = "HX004"
    summary = "threading.Thread without an explicit daemon= decision"

    def check(self, ctx: FileContext) -> list[Violation]:
        thread_names = self._thread_aliases(ctx.tree)
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_thread_ctor(node.func, thread_names):
                continue
            if any(kw.arg == "daemon" for kw in node.keywords):
                continue
            violations.append(
                self._violation(
                    ctx,
                    node,
                    "threading.Thread(...) without an explicit daemon= "
                    "keyword; pass daemon=True (supervisor-owned) or "
                    "daemon=False and join it on shutdown",
                )
            )
        return violations

    def _thread_aliases(self, tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "threading":
                for alias in node.names:
                    if alias.name == "Thread":
                        names.add(alias.asname if alias.asname else alias.name)
        return names

    def _is_thread_ctor(self, func: ast.expr, thread_names: set[str]) -> bool:
        if isinstance(func, ast.Attribute):
            return func.attr == "Thread" and _render(func.value) == "threading"
        if isinstance(func, ast.Name):
            return func.id in thread_names
        return False


# ---------------------------------------------------------------------------
# HX005 — Prometheus naming conventions
# ---------------------------------------------------------------------------


class HX005MetricConventions(Rule):
    """Metric families follow the exposition-format conventions.

    Checks literal arguments of the repo's ``family(name, kind, ...)``
    and ``_sample(name, value, labels)`` helpers: names are
    ``holistix_``-prefixed snake_case, counter families end
    ``_total``, non-counter families do not, and label keys are
    snake_case.  Dynamic names (f-strings, variables) are skipped —
    :func:`repro.serving.metrics.parse_metrics` round-trips catch those
    in tests.
    """

    rule_id = "HX005"
    summary = "Prometheus metric name/label convention violation"

    _NAME_RE = re.compile(r"^holistix_[a-z][a-z0-9_]*[a-z0-9]$")
    _LABEL_RE = re.compile(r"^[a-z_][a-z0-9_]*$")
    _NON_TOTAL_KINDS = ("gauge", "histogram", "summary")

    def check(self, ctx: FileContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = self._callee_name(node.func)
            if callee == "family":
                violations.extend(self._check_family(ctx, node))
            if callee in ("family", "_sample", "sample"):
                violations.extend(self._check_labels(ctx, node))
            if callee in ("_sample", "sample"):
                violations.extend(self._check_sample(ctx, node))
        return violations

    def _callee_name(self, func: ast.expr) -> str | None:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def _literal_str(self, node: ast.expr | None) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None

    def _check_family(self, ctx: FileContext, call: ast.Call) -> list[Violation]:
        args = call.args
        name = self._literal_str(args[0] if args else None)
        kind = self._literal_str(args[1] if len(args) > 1 else None)
        violations: list[Violation] = []
        if name is not None and not self._NAME_RE.match(name):
            violations.append(
                self._violation(
                    ctx,
                    call,
                    f"metric family {name!r} must be holistix_-prefixed "
                    "snake_case ([a-z0-9_])",
                )
            )
        if name is not None and kind is not None:
            if kind == "counter" and not name.endswith("_total"):
                violations.append(
                    self._violation(
                        ctx,
                        call,
                        f"counter family {name!r} must end '_total' "
                        "(Prometheus counter convention)",
                    )
                )
            elif kind in self._NON_TOTAL_KINDS and name.endswith("_total"):
                violations.append(
                    self._violation(
                        ctx,
                        call,
                        f"{kind} family {name!r} must not end '_total' "
                        "(reserved for counters)",
                    )
                )
        return violations

    def _check_sample(self, ctx: FileContext, call: ast.Call) -> list[Violation]:
        name = self._literal_str(call.args[0] if call.args else None)
        if name is None:
            return []
        base = self._NAME_RE.match(name)
        # _sum/_count suffixes on summary families are legal samples.
        if base is None:
            return [
                self._violation(
                    ctx,
                    call,
                    f"sample name {name!r} must be holistix_-prefixed "
                    "snake_case ([a-z0-9_])",
                )
            ]
        return []

    def _check_labels(self, ctx: FileContext, call: ast.Call) -> list[Violation]:
        violations: list[Violation] = []
        candidates: list[ast.expr] = list(call.args) + [
            kw.value for kw in call.keywords
        ]
        for arg in candidates:
            if not isinstance(arg, ast.Dict):
                continue
            for key in arg.keys:
                literal = self._literal_str(key)
                if literal is not None and not self._LABEL_RE.match(literal):
                    violations.append(
                        self._violation(
                            ctx,
                            call,
                            f"label name {literal!r} must be snake_case "
                            "([a-z_][a-z0-9_]*)",
                        )
                    )
        return violations


# ---------------------------------------------------------------------------
# HX006 — chaos seams must be None-guarded
# ---------------------------------------------------------------------------


class HX006ChaosSeamGuard(Rule):
    """Chaos hooks are optional: every use must tolerate ``chaos is None``.

    A chaos seam is an access to a ``.chaos`` attribute (directly or
    via a local alias like ``chaos = self.chaos``).  Because injectors
    are armed only during fault experiments, production code paths see
    ``None`` — a seam that calls through without a guard is a latent
    ``AttributeError`` on the hot path.  Recognised guard shapes:

    * ``if chaos is not None: chaos.before_batch(...)``
    * early exit: ``if chaos is None: return`` then use below
    * conditional expr: ``x if chaos is None else chaos.fault()``
    * ``chaos is not None and chaos.fault()`` short-circuits
    """

    rule_id = "HX006"
    summary = "chaos seam used without a None guard"

    def check(self, ctx: FileContext) -> list[Violation]:
        parents = _parent_map(ctx.tree)
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                violations.extend(self._check_function(ctx, node, parents))
        return violations

    def _check_function(
        self,
        ctx: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        parents: dict[ast.AST, ast.AST],
    ) -> list[Violation]:
        aliases = self._chaos_aliases(func)
        violations: list[Violation] = []
        for node in ast.walk(func):
            use = self._chaos_use(node, aliases)
            if use is None:
                continue
            expr_key, attr_node = use
            if self._is_guarded(attr_node, expr_key, func, parents):
                continue
            violations.append(
                self._violation(
                    ctx,
                    attr_node,
                    f"chaos seam '{expr_key}.{attr_node.attr}' used without "
                    "a None guard; wrap in 'if chaos is not None:' — the "
                    "injector is absent outside fault experiments",
                )
            )
        return violations

    def _chaos_aliases(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> set[str]:
        """Local names bound from a ``.chaos`` attribute."""
        aliases: set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if isinstance(value, ast.Attribute) and value.attr == "chaos":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        return aliases

    def _chaos_use(
        self, node: ast.AST, aliases: set[str]
    ) -> tuple[str, ast.Attribute] | None:
        """An attribute access *through* a chaos value -> (guard key, node)."""
        if not isinstance(node, ast.Attribute):
            return None
        receiver = node.value
        if isinstance(receiver, ast.Attribute) and receiver.attr == "chaos":
            return _render(receiver), node
        if isinstance(receiver, ast.Name) and receiver.id in aliases:
            return receiver.id, node
        return None

    def _is_guarded(
        self,
        node: ast.Attribute,
        expr_key: str,
        func: ast.AST,
        parents: dict[ast.AST, ast.AST],
    ) -> bool:
        chain: list[ast.AST] = [node]
        current: ast.AST | None = parents.get(node)
        while current is not None:
            if isinstance(current, ast.If) and self._if_guards(
                current, expr_key, chain[-1]
            ):
                return True
            if isinstance(current, ast.IfExp) and self._ifexp_guards(
                current, expr_key, chain[-1]
            ):
                return True
            if isinstance(current, ast.BoolOp) and self._boolop_guards(
                current, expr_key, chain[-1]
            ):
                return True
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and current is not func:
                break
            if self._early_exit_guard(current, expr_key, parents):
                return True
            if current is func:
                break
            chain.append(current)
            current = parents.get(current)
        return False

    def _test_matches(
        self, test: ast.expr, expr_key: str, want_not_none: bool
    ) -> bool:
        """``<expr> is [not] None`` with the requested polarity."""
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
            return False
        op = test.ops[0]
        comparator = test.comparators[0]
        if not (isinstance(comparator, ast.Constant) and comparator.value is None):
            return False
        if _render(test.left) != expr_key:
            return False
        if want_not_none:
            return isinstance(op, ast.IsNot)
        return isinstance(op, ast.Is)

    def _if_guards(self, node: ast.If, expr_key: str, child: ast.AST) -> bool:
        in_body = any(
            child is stmt or self._contains(stmt, child) for stmt in node.body
        )
        in_else = any(
            child is stmt or self._contains(stmt, child) for stmt in node.orelse
        )
        if in_body and self._test_matches(node.test, expr_key, want_not_none=True):
            return True
        return in_else and self._test_matches(node.test, expr_key, want_not_none=False)

    def _ifexp_guards(self, node: ast.IfExp, expr_key: str, child: ast.AST) -> bool:
        if self._test_matches(node.test, expr_key, want_not_none=False):
            return child is node.orelse or self._contains(node.orelse, child)
        if self._test_matches(node.test, expr_key, want_not_none=True):
            return child is node.body or self._contains(node.body, child)
        return False

    def _boolop_guards(self, node: ast.BoolOp, expr_key: str, child: ast.AST) -> bool:
        """``chaos is not None and chaos.f()`` / ``chaos is None or ...``."""
        if not node.values:
            return False
        first = node.values[0]
        rest = node.values[1:]
        in_rest = any(value is child or self._contains(value, child) for value in rest)
        if not in_rest:
            return False
        if isinstance(node.op, ast.And):
            return self._test_matches(first, expr_key, want_not_none=True)
        return self._test_matches(first, expr_key, want_not_none=False)

    def _early_exit_guard(
        self, node: ast.AST, expr_key: str, parents: dict[ast.AST, ast.AST]
    ) -> bool:
        """A preceding sibling ``if <expr> is None: return/raise/...``."""
        parent = parents.get(node)
        body = getattr(parent, "body", None)
        if not isinstance(body, list) or node not in body:
            return False
        index = body.index(node)
        for stmt in body[:index]:
            if not isinstance(stmt, ast.If):
                continue
            if not self._test_matches(stmt.test, expr_key, want_not_none=False):
                continue
            if stmt.body and isinstance(
                stmt.body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
            ):
                return True
        return False

    @staticmethod
    def _contains(root: ast.AST, target: ast.AST) -> bool:
        return any(node is target for node in ast.walk(root))


ALL_RULES: tuple[Rule, ...] = (
    HX001LockedFieldWrite(),
    HX002BlockingUnderLock(),
    HX003SeededDeterminism(),
    HX004ThreadOwnership(),
    HX005MetricConventions(),
    HX006ChaosSeamGuard(),
)


def rule_by_id(rule_id: str) -> Rule:
    for rule in ALL_RULES:
        if rule.rule_id == rule_id:
            return rule
    raise KeyError(rule_id)
