"""File/tree driver for the HX rules, with ``# noqa: HXnnn`` suppression.

Suppression follows the ruff/flake8 convention, scoped to this tool's
rule namespace:

* ``# noqa: HX002`` on the flagged line silences that rule there;
* ``# noqa: HX001, HX002`` silences several;
* a bare ``# noqa`` (no codes) silences every HX rule on the line.

Suppressions should carry a rationale in the surrounding code — the
linter can't check that, but review can.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.analysis.rules import ALL_RULES, FileContext, Rule, Violation

__all__ = ["check_file", "check_source", "collect_files", "run"]

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*))?",
    re.IGNORECASE,
)


def _suppressed_rules(line: str) -> frozenset[str] | None:
    """Rule ids silenced on ``line``; ``frozenset()`` means *all* rules.

    Returns ``None`` when the line carries no noqa comment at all.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return frozenset()
    return frozenset(code.strip().upper() for code in codes.split(","))


def _is_suppressed(violation: Violation, lines: Sequence[str]) -> bool:
    if not 1 <= violation.line <= len(lines):
        return False
    suppressed = _suppressed_rules(lines[violation.line - 1])
    if suppressed is None:
        return False
    return not suppressed or violation.rule in suppressed


def check_source(
    source: str,
    path: str,
    rules: Sequence[Rule] | None = None,
) -> list[Violation]:
    """Run rules over one source string; ``path`` steers path-scoped rules."""
    active = ALL_RULES if rules is None else tuple(rules)
    try:
        ctx = FileContext.from_source(source, path)
    except SyntaxError as error:
        line = error.lineno if error.lineno is not None else 1
        return [
            Violation(
                rule="HX000",
                path=path,
                line=line,
                col=(error.offset - 1) if error.offset else 0,
                message=f"file does not parse: {error.msg}",
            )
        ]
    violations: list[Violation] = []
    for rule in active:
        violations.extend(rule.check(ctx))
    violations = [v for v in violations if not _is_suppressed(v, ctx.lines)]
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def check_file(path: Path, rules: Sequence[Rule] | None = None) -> list[Violation]:
    return check_source(path.read_text(encoding="utf-8"), str(path), rules)


def collect_files(targets: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: set[Path] = set()
    for target in targets:
        if target.is_dir():
            seen.update(p for p in target.rglob("*.py") if "__pycache__" not in p.parts)
        elif target.suffix == ".py":
            seen.add(target)
    return sorted(seen)


def run(
    targets: Iterable[Path], rules: Sequence[Rule] | None = None
) -> list[Violation]:
    """Lint every python file under ``targets``; sorted violations."""
    violations: list[Violation] = []
    for path in collect_files(targets):
        violations.extend(check_file(path, rules))
    return violations


# Re-exported for callers that only need the parse step.
parse = ast.parse
