"""TSan-lite dynamic lock-order checking for the serving stack.

The static rules in :mod:`repro.analysis.rules` catch what is visible in
the source; this module catches what only shows up at runtime — the
*order* in which threads actually acquire locks, and whether code that
assumes "my caller holds the lock" is ever reached without it.

Design goals, in priority order:

1. **Zero overhead when disabled.**  :func:`create_lock` returns a plain
   ``threading.Lock`` unless ``REPRO_LOCK_CHECK`` is set in the
   environment, so production and default test runs execute exactly the
   code they executed before this module existed.
2. **Deterministic failure on *potential* deadlock.**  When enabled,
   every blocking acquire records a ``held -> acquiring`` edge in one
   global lock-order graph keyed by *lock name* (a role like
   ``"server.mutex"``, not an instance id).  The first acquire that
   would close a cycle raises :class:`LockOrderError` immediately — the
   inconsistent ordering is reported even if the interleaving that
   would actually deadlock never happens in this run.
3. **Guarded-access assertions.**  :func:`require_held` is the runtime
   twin of the HX001 static rule: methods whose contract is "caller
   holds the lock" (the ``*_locked`` naming convention) call it on
   entry, and with checking enabled it raises if the calling thread
   does not own the lock.  With checking disabled it is a single
   ``isinstance`` test on a plain lock — effectively free, and never
   raises.

Usage::

    from repro.analysis.lockcheck import create_lock, require_held

    class Stats:
        def __init__(self) -> None:
            self._lock = create_lock("server.stats")

        def _reset_locked(self) -> None:
            require_held(self._lock)
            ...

``threading.Condition(ordered_lock)`` works: :class:`OrderedLock`
implements the ``_release_save`` / ``_acquire_restore`` / ``_is_owned``
protocol conditions use, and a condition ``wait()`` correctly pops the
lock from the holder's stack while sleeping.

The registry is global on purpose: running the whole tier-1 suite under
``REPRO_LOCK_CHECK=1`` accumulates one ordering graph across every
server, gateway, and client the tests construct, so an inconsistent
ordering *between* components is caught even when no single test
exercises both orders.
"""

from __future__ import annotations

import os
import threading
from types import TracebackType
from typing import cast

__all__ = [
    "LockOrderError",
    "LockOrderRegistry",
    "OrderedLock",
    "create_lock",
    "lock_check_enabled",
    "registry",
    "require_held",
]

_ENV_VAR = "REPRO_LOCK_CHECK"


class LockOrderError(RuntimeError):
    """A lock-ordering cycle, or a guarded path reached without its lock."""


class _HeldState(threading.local):
    """Per-thread stack of lock names currently held (acquisition order)."""

    def __init__(self) -> None:
        self.stack: list[str] = []


class LockOrderRegistry:
    """Global ``held -> acquiring`` edge graph with cycle detection.

    Edges are keyed by lock *name*, so every instance created with the
    same role name contributes to one node — two servers in one process
    must still agree on ordering, which is exactly the property a
    process-wide deadlock needs violated.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._edges: dict[str, set[str]] = {}
        self._held = _HeldState()

    # ------------------------------------------------------------------
    # Bookkeeping called by OrderedLock
    # ------------------------------------------------------------------
    def before_blocking_acquire(self, name: str) -> None:
        """Record edges from every held lock to ``name``; raise on cycle."""
        held = self._held.stack
        if not held:
            return
        for holder in held:
            if holder == name:
                raise LockOrderError(
                    f"recursive acquire of non-reentrant lock {name!r} "
                    f"(held: {held})"
                )
            self._add_edge(holder, name)

    def note_acquired(self, name: str) -> None:
        self._held.stack.append(name)

    def note_released(self, name: str) -> None:
        stack = self._held.stack
        # Locks are typically released LIFO, but the protocol does not
        # require it; remove the most recent matching entry.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    def held_names(self) -> tuple[str, ...]:
        """Locks held by the calling thread, in acquisition order."""
        return tuple(self._held.stack)

    # ------------------------------------------------------------------
    # Graph
    # ------------------------------------------------------------------
    def _add_edge(self, source: str, target: str) -> None:
        with self._lock:
            targets = self._edges.setdefault(source, set())
            if target in targets:
                return
            cycle = self._find_path(target, source)
            if cycle is not None:
                raise LockOrderError(
                    "lock-order cycle: acquiring "
                    f"{target!r} while holding {source!r} inverts the "
                    "established order "
                    + " -> ".join(repr(n) for n in [target, *cycle])
                    + f" -> {target!r}"
                )
            targets.add(target)

    def _find_path(self, start: str, goal: str) -> list[str] | None:
        """DFS path ``start -> ... -> goal`` through recorded edges."""
        if start == goal:
            return [start]
        seen = {start}
        stack: list[tuple[str, list[str]]] = [(start, [])]
        while stack:
            node, path = stack.pop()
            for nxt in self._edges.get(node, ()):
                if nxt == goal:
                    return [*path, nxt]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, [*path, nxt]))
        return None

    def edges(self) -> dict[str, frozenset[str]]:
        """Immutable copy of the recorded ordering graph."""
        with self._lock:
            return {name: frozenset(targets) for name, targets in self._edges.items()}

    def reset(self) -> None:
        """Forget all recorded edges (test isolation)."""
        with self._lock:
            self._edges.clear()


#: The process-wide registry every :func:`create_lock` lock reports to.
registry = LockOrderRegistry()


class OrderedLock:
    """A ``threading.Lock`` that reports acquires to a lock-order registry.

    Drop-in for the subset of the ``Lock`` API this repository uses:
    context manager, ``acquire(blocking, timeout)``, ``release()``,
    ``locked()`` — plus the private condition-variable protocol so
    ``threading.Condition(OrderedLock(...))`` behaves correctly.

    Non-blocking acquires (``blocking=False``) do not record ordering
    edges: a try-lock cannot participate in a deadlock, and the probe
    idiom (``ensure_workers``) intentionally skips busy slots.
    """

    def __init__(
        self, name: str, order_registry: LockOrderRegistry | None = None
    ) -> None:
        self.name = name
        self._registry = order_registry if order_registry is not None else registry
        self._inner = threading.Lock()
        self._owner: int | None = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking:
            self._registry.before_blocking_acquire(self.name)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._registry.note_acquired(self.name)
            self._owner = threading.get_ident()
        return acquired

    def release(self) -> None:
        self._owner = None
        self._registry.note_released(self.name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    @property
    def held(self) -> bool:
        """Whether the calling thread currently owns this lock."""
        return self._owner == threading.get_ident()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self._inner.locked() else "unlocked"
        return f"<OrderedLock {self.name!r} {state}>"

    # ------------------------------------------------------------------
    # threading.Condition protocol
    # ------------------------------------------------------------------
    def _release_save(self) -> None:
        """Condition.wait: fully release (non-reentrant => plain release)."""
        self.release()

    def _acquire_restore(self, state: object) -> None:
        """Condition.wait: reacquire after waking."""
        self.acquire()

    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()


def lock_check_enabled() -> bool:
    """Whether ``REPRO_LOCK_CHECK`` asks for ordered locks."""
    return os.environ.get(_ENV_VAR, "") not in ("", "0")


def create_lock(name: str) -> threading.Lock:
    """The lock factory every shared-state class in this repo uses.

    Returns a plain ``threading.Lock`` (zero overhead) unless
    ``REPRO_LOCK_CHECK`` is set, in which case an :class:`OrderedLock`
    reporting to the global :data:`registry` is returned.  The
    environment is consulted at *creation* time, so a test can arm
    checking for exactly the objects it constructs.

    Declared as ``threading.Lock`` although the checked variant is an
    :class:`OrderedLock`: the wrapper implements the full ``Lock``
    surface this repository uses (including the ``Condition`` protocol),
    and the single declared type lets strictly typed consumers pass the
    result to ``threading.Condition`` without per-site casts.
    """
    if lock_check_enabled():
        return cast(threading.Lock, OrderedLock(name))
    return threading.Lock()


def require_held(lock: object, what: str = "") -> None:
    """Assert the calling thread owns ``lock`` (no-op when unchecked).

    The dynamic side of the ``*_locked`` naming convention: call this
    first in any method whose contract is "caller holds the lock".  On
    a plain ``threading.Lock`` (checking disabled) this is a single
    failed ``isinstance`` and returns immediately.
    """
    if isinstance(lock, OrderedLock) and not lock.held:
        raise LockOrderError(
            f"{what or 'a guarded path'} requires {lock.name!r} to be held "
            f"by the calling thread (held: {list(registry.held_names())})"
        )
