"""The paper's future-work directions (§V), implemented and demonstrated.

Run with::

    python examples/multilabel_and_spans.py

1. **Multi-label classification** of overlapping wellness dimensions
   (one-vs-rest over TF-IDF; gold label sets come straight from the
   perplexity-guideline annotations).
2. **Explanation-span prediction**: rank a post's sentences and predict
   which one carries the explanation, scored with ROUGE against gold.
3. **Impact analysis**: the dimension-interaction graph (which aspects
   co-occur, which is most central).
"""

from __future__ import annotations

from repro.core import HolistixDataset, analyze_interactions
from repro.core.labels import DIMENSIONS
from repro.explain import SpanPredictor, evaluate_span_predictions
from repro.ml import OneVsRestClassifier, multilabel_metrics
from repro.text import TfidfVectorizer


def main() -> None:
    dataset = HolistixDataset.build()
    split = dataset.fixed_split()

    # ------------------------------------------------------------------
    print("1. Multi-label classification (overlapping dimensions)\n")
    vectorizer = TfidfVectorizer(max_features=3000)
    x_train = vectorizer.fit_transform(split.train.texts)
    x_test = vectorizer.transform(split.test.texts)
    model = OneVsRestClassifier(list(DIMENSIONS)).fit(
        x_train, split.train.multi_label_sets()
    )
    predictions = model.predict(x_test)
    gold_sets = split.test.multi_label_sets()
    metrics = multilabel_metrics(gold_sets, predictions, list(DIMENSIONS))
    print(f"   subset accuracy: {metrics.subset_accuracy:.3f}")
    print(f"   Hamming loss   : {metrics.hamming_loss:.3f}")
    print(f"   micro F1       : {metrics.micro_f1:.3f}")
    print(f"   macro F1       : {metrics.macro_f1:.3f}")
    example_idx = next(i for i, s in enumerate(gold_sets) if len(s) > 1)
    print(
        f"   e.g. gold={{{', '.join(d.code for d in gold_sets[example_idx])}}} "
        f"predicted={{{', '.join(d.code for d in predictions[example_idx])}}}"
    )

    # ------------------------------------------------------------------
    print("\n2. Explanation-span prediction\n")
    predictor = SpanPredictor()
    instances = [i for i in split.test if not i.metadata.get("noisy")][:60]
    span_predictions = [
        predictor.predict(inst.text, inst.label) for inst in instances
    ]
    evaluation = evaluate_span_predictions(
        span_predictions, [inst.span_text for inst in instances]
    )
    print(f"   ROUGE-1 F1 vs gold spans: {evaluation.rouge1_f1:.3f}")
    print(f"   ROUGE-L F1 vs gold spans: {evaluation.rouge_l_f1:.3f}")
    print(f"   sentence hit rate       : {evaluation.exact_sentence_rate:.3f}")
    sample = span_predictions[0]
    print(f"   e.g. predicted span: {sample.span[:80]}")

    # ------------------------------------------------------------------
    print("\n3. Impact analysis (dimension interactions)\n")
    report = analyze_interactions(dataset)
    print(f"   posts with co-occurring dimensions: {report.n_cooccurring_posts}")
    print(f"   most central dimension            : {report.most_central}")
    print("   strongest interaction pairs:")
    for src, dst, weight in report.strongest_pairs:
        print(f"     {src:5s} -> {dst:5s} {weight}")
    print(f"   reciprocity: {report.reciprocity:.2f}")


if __name__ == "__main__":
    main()
