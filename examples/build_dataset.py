"""Rebuild the Holistix dataset from the simulated forum, end to end.

Run with::

    python examples/build_dataset.py [output.jsonl]

Walks the paper's §II pipeline explicitly: populate the simulated Beyond
Blue forum (2,000 raw posts), scrape its HTML boards, run the cleaning
funnel (empty / duplicate / overlong / off-topic), run the two-annotator
study with Fleiss' kappa, and save the final annotated dataset as jsonl.
"""

from __future__ import annotations

import sys

from repro.annotation import run_annotation_study
from repro.core import HolistixDataset
from repro.corpus import SimulatedForum, preprocess, scrape_forum


def main(output_path: str = "holistix.jsonl") -> None:
    print("1. Building gold annotations (generator + Table II calibration)...")
    dataset = HolistixDataset.build()
    gold = list(dataset)

    print("2. Populating the simulated Beyond Blue forum...")
    forum = SimulatedForum.populate(gold)
    print(f"   raw posts: {len(forum)} across {len(forum.categories)} boards")
    sample_board = forum.categories[0]
    html = forum.render_board_html(sample_board)
    print(f"   e.g. board {sample_board!r} renders {len(html)} bytes of HTML")

    print("3. Scraping every board...")
    scraped = scrape_forum(forum)
    print(f"   scraped {len(scraped)} posts")

    print("4. Cleaning (the paper's 2,000 -> 1,420 funnel)...")
    clean, report = preprocess(scraped)
    for stage, count in report.stages():
        print(f"   {stage:24s} {count}")
    assert {p.text for p in clean} == {g.text for g in gold}

    print("5. Annotation study (two simulated annotators)...")
    agreement = run_annotation_study(gold)
    print(f"   Fleiss' kappa: {agreement.kappa_percent:.2f}% (paper: 75.92%)")
    print(f"   top confusions: {agreement.top_confusions(3)}")

    print(f"6. Saving {len(dataset)} annotated instances to {output_path}")
    dataset.save(output_path)
    reloaded = HolistixDataset.load(output_path)
    assert len(reloaded) == len(dataset)
    print("   reload check passed")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "holistix.jsonl")
