"""Per-user wellness profiling and early-intervention triage.

Run with::

    python examples/wellness_profiles.py

The paper's introduction motivates the dataset with "personalized
well-being evaluations and early intervention strategies".  This example
simulates users with different posting histories, classifies each post,
aggregates per-user wellness profiles, and applies the triage rule.
"""

from __future__ import annotations

from repro.core import HolistixDataset, WellnessClassifier
from repro.core.profiles import build_profile, triage

# Simulated posting histories.
USERS: dict[str, list[str]] = {
    "steady-worker": [
        "My job keeps piling on deadlines and the money is tight this month.",
        "Another rough week at work but I am coping with the workload.",
        "The career progression talk went nowhere again and work drains me.",
        "My boss added more shifts and the financial pressure is back.",
    ],
    "struggling-student": [
        "I feel like I will never be smart enough to pass my exams.",
        "I cannot concentrate on my study and my thoughts just spiral.",
        "I keep struggling with assignments and it is hard to open a book.",
        "Even easy revision feels impossible and my focus is gone lately.",
    ],
    "acute-risk": [
        "I do not know what my purpose is anymore and life feels meaningless.",
        "I feel like i am drowning in this sad feeling and cannot stop crying.",
        "Some days thoughts of suicide creep in because life feels so empty.",
        "Everything feels too hard and I am so sad that nothing helps anymore.",
        "I feel hopeless about life and my thoughts turn dark at night.",
    ],
}


def main() -> None:
    dataset = HolistixDataset.build()
    split = dataset.fixed_split()
    print("Training classifier for profiling...")
    classifier = WellnessClassifier("LR").fit(split.train)

    for user_id, posts in USERS.items():
        predictions = classifier.predict(posts)
        profile = build_profile(user_id, predictions)
        decision = triage(profile)
        shares = ", ".join(
            f"{dim.code}={share:.0f}%"
            for dim, share in profile.as_percentages().items()
            if share > 0
        )
        flag = "FLAGGED" if decision.flagged else "ok"
        print(f"\n{user_id} ({profile.n_posts} posts) -> {flag}")
        print(f"  profile : {shares}")
        print(f"  dominant: {profile.dominant.code if profile.dominant else '-'}")
        for reason in decision.reasons:
            print(f"  reason  : {reason}")


if __name__ == "__main__":
    main()
