"""Explain classifier predictions with LIME and score against gold spans.

Run with::

    python examples/explain_predictions.py

Reproduces the paper's Table V workflow on a handful of test posts: train
LR, explain its predictions with the from-scratch LIME implementation,
show the keyword explanations next to the gold annotation spans, and
print the similarity metrics (F1 / precision / recall / ROUGE / BLEU).
"""

from __future__ import annotations

from repro.core import HolistixDataset, WellnessClassifier
from repro.explain import LimeTextExplainer, score_explanations


def main(n_posts: int = 8) -> None:
    dataset = HolistixDataset.build()
    split = dataset.fixed_split()
    print("Training LR...")
    classifier = WellnessClassifier("LR").fit(split.train)

    explainer = LimeTextExplainer(
        classifier.predict_proba, n_samples=250, seed=7
    )
    explanations = []
    print(f"\nExplaining {n_posts} test posts:\n")
    for i in range(n_posts):
        instance = split.test[i]
        explanation = explainer.explain(instance.text)
        explanations.append(explanation)
        keywords = ", ".join(explanation.top_words(5))
        print(f"post     : {instance.text[:90]}")
        print(f"gold     : [{instance.label.code}] {instance.span_text[:70]}")
        print(f"keywords : {keywords}")
        print()

    gold_spans = [split.test[i].span_text for i in range(n_posts)]
    similarity = score_explanations(explanations, gold_spans)
    print("Similarity of LIME keywords to gold spans (Table V metrics):")
    print(f"  F1={similarity.f1:.4f}  P={similarity.precision:.4f}  "
          f"R={similarity.recall:.4f}  ROUGE={similarity.rouge:.4f}  "
          f"BLEU={similarity.bleu:.4f}")
    print("  (paper, LR row: F1=0.4221 P=0.3140 R=0.6976 ROUGE=0.3645 BLEU=0.1349)")


if __name__ == "__main__":
    main()
