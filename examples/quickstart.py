"""Quickstart: build the Holistix dataset, train a classifier, predict.

Run with::

    python examples/quickstart.py

Builds the 1,420-post synthetic Holistix corpus (calibrated to the
paper's Table II), trains the logistic-regression baseline on the paper's
fixed 990-post training split, and classifies a few new narratives.
"""

from __future__ import annotations

from repro import HolistixDataset, WellnessClassifier


def main() -> None:
    print("Building the Holistix dataset (1,420 posts)...")
    dataset = HolistixDataset.build()
    stats = dataset.statistics()
    print(
        f"  posts={stats.total_posts}  words={stats.total_words}  "
        f"sentences={stats.total_sentences}"
    )
    for dim, count in stats.dimension_counts.items():
        print(f"  {dim.code:5s} {count}")

    split = dataset.fixed_split()
    print(
        f"\nFixed split: {len(split.train)} train / "
        f"{len(split.validation)} validation / {len(split.test)} test"
    )

    print("\nTraining the LR baseline on TF-IDF features...")
    classifier = WellnessClassifier("LR").fit(split.train)
    print(f"  validation accuracy: {classifier.accuracy(split.validation):.3f}")
    print(f"  test accuracy      : {classifier.accuracy(split.test):.3f}")

    narratives = [
        "I feel exhausted all the time and cannot even sleep properly anymore.",
        "My job drains me and the money worries never stop these days.",
        "I have no real friends and nobody wants to talk to me.",
        "I do not know what my purpose is anymore and everything feels empty.",
    ]
    print("\nClassifying new narratives:")
    for text, label in zip(narratives, classifier.predict(narratives)):
        print(f"  [{label.code:4s}] {text}")

    print("\nExplaining the first prediction with LIME:")
    explanation = classifier.explain(narratives[0], n_samples=200)
    print(f"  top keywords: {', '.join(explanation.top_words(5))}")


if __name__ == "__main__":
    main()
