"""Persist a fitted classifier and serve it with replicated workers.

Run with::

    python examples/serve_and_persist.py [--baseline LR]

Trains a baseline on the paper's fixed split, saves it as a checkpoint
directory, loads it back into a fresh classifier (verifying the
predictions are identical), then stands up the replicated micro-batching
``InferenceServer`` — four worker threads over private engine replicas
behind a bounded admission queue — and pushes concurrent traffic through
it, printing a consistent stats snapshot (throughput, latency
percentiles, per-worker load) and the aggregated replica cache
statistics.  It then overloads a deliberately undersized shed-mode
server to show typed load shedding, and finally exposes the model over
HTTP with the ``ServingGateway`` — real loopback requests through the
``ServingClient``, a 429 observed under forced shed, a Prometheus
``/metrics`` scrape, and a graceful drain.
"""

from __future__ import annotations

import sys
import tempfile
import threading
from pathlib import Path

from repro import HolistixDataset, WellnessClassifier
from repro.engine import InferenceServer, ServerOverloaded
from repro.serving import GatewayOverloaded, ServingClient, ServingGateway


def main(baseline: str = "LR") -> None:
    print(f"Training the {baseline} baseline on the fixed split...")
    dataset = HolistixDataset.build()
    split = dataset.fixed_split()
    fast = baseline not in ("LR", "Linear SVM", "Gaussian NB")
    classifier = WellnessClassifier(baseline, fast=fast).fit(split.train)
    texts = split.test.texts
    direct = classifier.predict(texts)

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "checkpoint"
        classifier.save(checkpoint)
        files = sorted(p.name for p in checkpoint.iterdir())
        print(f"Saved checkpoint: {files}")
        restored = WellnessClassifier.load(checkpoint)
        match = restored.predict(texts) == direct
        print(f"Reloaded model predictions identical: {match}")
        if not match:
            raise SystemExit("round-trip mismatch")

    print("\nServing the test split through 4 replicated workers...")
    server = InferenceServer(
        classifier.engine,
        workers=4,
        max_batch_size=32,
        max_wait_ms=2.0,
        max_queue=512,
        overload="block",
    )
    with server:
        chunks = [texts[i::8] for i in range(8)]
        outputs: list = [None] * 8

        def client(i: int) -> None:
            outputs[i] = server.predict(chunks[i], timeout=60.0)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    snap = server.stats.snapshot()
    print(
        f"  served {snap.requests} requests in {snap.batches} batches "
        f"(mean batch {snap.mean_batch_size:.1f}, largest {snap.largest_batch})"
    )
    print(f"  per-worker requests: {list(snap.per_worker_requests)}")
    print(
        f"  throughput {snap.throughput():,.0f} req/s; latency "
        f"mean {snap.mean_latency_ms:.2f} ms, p95 "
        f"{snap.latency_percentile(95):.2f} ms, p99 "
        f"{snap.latency_percentile(99):.2f} ms"
    )
    engine_stats = server.engine_stats()
    print(
        f"  replica caches: {engine_stats.cache_hits} hits / "
        f"{engine_stats.cache_misses} misses "
        f"(hit rate {engine_stats.hit_rate:.0%})"
    )

    print("\nOverloading an undersized shed-mode server (max_queue=8)...")
    shed_server = InferenceServer(
        classifier.engine,
        workers=1,
        max_batch_size=4,
        max_queue=8,
        overload="shed",
    )
    with shed_server:
        for text in texts[:200]:
            try:
                shed_server.submit(text)
            except ServerOverloaded:
                pass
    overload = shed_server.stats.snapshot()
    print(
        f"  offered 200 requests: served {overload.requests}, "
        f"shed {overload.shed} (shed rate {overload.shed_rate:.0%})"
    )

    print("\nExposing the model over HTTP (ephemeral loopback port)...")
    http_server = InferenceServer(
        classifier.engine, workers=2, max_batch_size=16, max_queue=64
    )
    with ServingGateway(http_server, baseline=baseline) as gateway:
        client = ServingClient(gateway.url, deadline_s=15)
        health = client.healthz()
        print(f"  {gateway.url}/healthz -> {health}")
        response = client.predict(texts[0], top_k=2)
        print(f"  POST /v1/predict top_k=2 -> {response.top_k}")
        print(f"  served_by -> {response.served_by}")
        batch = client.predict_batch(texts[:12])
        print(f"  POST /v1/predict_batch -> {len(batch.predictions)} results")
        loaded = [m["name"] for m in client.models()["registry"] if m["loaded"]]
        print(f"  GET /v1/models -> loaded={loaded}")
        scraped = client.metrics()
        served = scraped[("holistix_server_requests_total", frozenset())]
        print(f"  GET /metrics -> holistix_server_requests_total {served:.0f}")
    print("  gateway drained and stopped; port released")

    print("\nForcing a 429 through an undersized shed-mode gateway...")
    tiny = InferenceServer(
        classifier.engine,
        workers=1,
        max_batch_size=1,
        max_wait_ms=0.0,
        max_queue=1,
        overload="shed",
    )
    with ServingGateway(tiny, baseline=baseline) as gateway:
        burst_client = ServingClient(gateway.url, deadline_s=5)
        outcomes: list[bool] = []  # list.append is atomic under the GIL

        def burst(i: int) -> None:
            try:
                burst_client.predict(f"burst {i}", retry_on_overload=False)
                outcomes.append(True)
            except GatewayOverloaded:
                outcomes.append(False)

        burst_threads = [
            threading.Thread(target=burst, args=(i,)) for i in range(16)
        ]
        for t in burst_threads:
            t.start()
        for t in burst_threads:
            t.join()
    print(
        f"  burst of 16 over HTTP: {outcomes.count(True)} served, "
        f"{outcomes.count(False)} answered 429 (typed GatewayOverloaded)"
    )


if __name__ == "__main__":
    args = sys.argv[1:]
    chosen = args[args.index("--baseline") + 1] if "--baseline" in args else "LR"
    main(chosen)
