"""Persist a fitted classifier and serve it with micro-batching.

Run with::

    python examples/serve_and_persist.py [--baseline LR]

Trains a baseline on the paper's fixed split, saves it as a checkpoint
directory, loads it back into a fresh classifier (verifying the
predictions are identical), then stands up the stdlib micro-batching
``InferenceServer`` and pushes concurrent traffic through it, printing
the throughput/latency counters and the engine's cache statistics.
"""

from __future__ import annotations

import sys
import tempfile
import threading
from pathlib import Path

from repro import HolistixDataset, WellnessClassifier
from repro.engine import InferenceServer


def main(baseline: str = "LR") -> None:
    print(f"Training the {baseline} baseline on the fixed split...")
    dataset = HolistixDataset.build()
    split = dataset.fixed_split()
    fast = baseline not in ("LR", "Linear SVM", "Gaussian NB")
    classifier = WellnessClassifier(baseline, fast=fast).fit(split.train)
    texts = split.test.texts
    direct = classifier.predict(texts)

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "checkpoint"
        classifier.save(checkpoint)
        files = sorted(p.name for p in checkpoint.iterdir())
        print(f"Saved checkpoint: {files}")
        restored = WellnessClassifier.load(checkpoint)
        match = restored.predict(texts) == direct
        print(f"Reloaded model predictions identical: {match}")
        if not match:
            raise SystemExit("round-trip mismatch")

    print("\nServing the test split through the micro-batching server...")
    server = InferenceServer(classifier.engine, max_batch_size=32, max_wait_ms=2.0)
    with server:
        chunks = [texts[i::4] for i in range(4)]
        outputs: list = [None] * 4

        def client(i: int) -> None:
            outputs[i] = server.predict(chunks[i])

        threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    stats = server.stats
    print(
        f"  served {stats.requests} requests in {stats.batches} batches "
        f"(mean batch {stats.mean_batch_size:.1f}, largest {stats.largest_batch})"
    )
    print(
        f"  throughput {stats.throughput():,.0f} req/s; latency "
        f"mean {stats.mean_latency_ms:.2f} ms, p95 "
        f"{stats.latency_percentile(95):.2f} ms"
    )
    engine_stats = classifier.engine.stats
    print(
        f"  engine cache: {engine_stats.cache_hits} hits / "
        f"{engine_stats.cache_misses} misses "
        f"(hit rate {engine_stats.hit_rate:.0%})"
    )


if __name__ == "__main__":
    args = sys.argv[1:]
    chosen = args[args.index("--baseline") + 1] if "--baseline" in args else "LR"
    main(chosen)
