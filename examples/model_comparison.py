"""Compare the paper's nine baselines on the fixed split.

Run with::

    python examples/model_comparison.py [--fast]

Trains all three traditional ML baselines and (without ``--fast``) all six
transformer baselines on the paper's 990-post training split, then prints
a Table IV-style comparison on the 213-post test split.  ``--fast`` uses
tiny transformer configs so the whole script finishes in well under a
minute.
"""

from __future__ import annotations

import sys
import time

from repro.core import HolistixDataset, WellnessClassifier
from repro.core.labels import DIMENSIONS
from repro.core.pipeline import TRADITIONAL_BASELINES, TRANSFORMER_BASELINES
from repro.experiments.paper_reference import PAPER_TABLE4_ACCURACY
from repro.ml import classification_report


def main(fast: bool = False) -> None:
    dataset = HolistixDataset.build()
    split = dataset.fixed_split()
    print(
        f"Train {len(split.train)} / test {len(split.test)} posts; "
        f"{'fast' if fast else 'paper'} transformer configs\n"
    )

    header = f"{'Baseline':12s} {'acc':>5s} {'paper':>6s}  per-class F1"
    print(header)
    print("-" * len(header))
    for name in TRADITIONAL_BASELINES + TRANSFORMER_BASELINES:
        started = time.time()
        classifier = WellnessClassifier(name, fast=fast).fit(split.train)
        predictions = classifier.predict(split.test.texts)
        report = classification_report(
            split.test.labels, predictions, list(DIMENSIONS)
        )
        f1_cells = " ".join(
            f"{dim.code}={report.per_class[dim].f1:.2f}" for dim in DIMENSIONS
        )
        print(
            f"{name:12s} {report.accuracy:5.2f} "
            f"{PAPER_TABLE4_ACCURACY[name]:6.2f}  {f1_cells} "
            f"[{time.time() - started:.0f}s]"
        )

    print(
        "\nExpected shape: transformers above traditional ML, Gaussian NB "
        "at the bottom, EA/SpiA/IA the hard classes."
    )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
