"""End-to-end smoke test for ``holistix-serve`` — the CI e2e job driver.

Unlike the loopback tests (which run the gateway in-process), this
drives the real deployment shape: it trains a tiny LR checkpoint, boots
``holistix-serve`` as a subprocess on a free port, and talks to it over
real HTTP — readiness, concurrent traffic, metrics/client-count
consistency, a forced 429 under shed, and graceful SIGTERM drain with
exit code 0.  On any failure the server log is dumped to stdout (inside
``::group::`` markers so Actions folds it) before the non-zero exit.

Run locally from the repo root::

    python scripts/e2e_serving_smoke.py --log-dir /tmp/e2e-logs
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.dataset import HolistixDataset  # noqa: E402
from repro.core.labels import DIMENSIONS  # noqa: E402
from repro.core.pipeline import WellnessClassifier  # noqa: E402
from repro.corpus.generator import GeneratorConfig  # noqa: E402
from repro.serving.client import GatewayOverloaded, ServingClient  # noqa: E402

LABEL_CODES = {d.code for d in DIMENSIONS}

# The machine-readable line holistix-serve prints once the gateway is
# bound; with --port 0 the kernel picks a free port race-free and this
# is how the driver learns it.
READY_LINE = re.compile(r"holistix-serve ready on (http://[0-9.]+:[0-9]+)")


def train_checkpoint(path: Path) -> None:
    print("[e2e] training a tiny LR checkpoint...")
    config = GeneratorConfig(
        class_counts={d: 24 for d in DIMENSIONS},
        seed=13,
        target_total_words=None,
        target_total_sentences=None,
    )
    dataset = HolistixDataset.build(config)
    WellnessClassifier("LR").fit(list(dataset)).save(path)


class ServeProcess:
    """One ``holistix-serve`` subprocess with its log captured to disk."""

    def __init__(self, name: str, args: list[str], log_dir: Path) -> None:
        self.name = name
        self.log_path = log_dir / f"{name}.log"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self._log_file = self.log_path.open("wb")
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.serving.cli", *args],
            stdout=self._log_file,
            stderr=subprocess.STDOUT,
            env=env,
            cwd=REPO_ROOT,
        )

    def wait_ready_url(self, timeout_s: float = 60.0) -> str:
        """Poll the log for the ready line; returns the bound base URL."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise AssertionError(
                    f"[{self.name}] exited early with {self.process.returncode}"
                )
            try:
                text = self.log_path.read_text(encoding="utf-8", errors="replace")
            except OSError:
                text = ""
            match = READY_LINE.search(text)
            if match:
                return match.group(1)
            time.sleep(0.05)
        raise AssertionError(f"[{self.name}] no ready line within {timeout_s}s")

    def terminate_gracefully(self, timeout_s: float = 30.0) -> int:
        self.process.send_signal(signal.SIGTERM)
        try:
            code = self.process.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired as error:
            self.process.kill()
            self.process.wait(timeout=10)
            raise AssertionError(
                f"[{self.name}] did not drain within {timeout_s}s of SIGTERM"
            ) from error
        finally:
            self._log_file.close()
        return code

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10)
        self._log_file.close()

    def dump_log(self) -> None:
        print(f"::group::server log [{self.name}] ({self.log_path})")
        try:
            print(self.log_path.read_text(encoding="utf-8", errors="replace"))
        except OSError as error:
            print(f"(log unreadable: {error})")
        print("::endgroup::")


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def phase_happy_path(checkpoint: Path, log_dir: Path) -> None:
    server = ServeProcess(
        "happy-path",
        [
            "--checkpoint",
            str(checkpoint),
            "--port",
            "0",
            "--workers",
            "2",
            "--max-queue",
            "64",
            "--overload",
            "shed",
        ],
        log_dir,
    )
    try:
        url = server.wait_ready_url()
        client = ServingClient(url, deadline_s=15)
        health = client.wait_ready(deadline_s=30)
        check(health["status"] == "ok", f"unexpected health: {health}")
        check(health["workers"] == 2, f"unexpected worker count: {health}")
        print(f"[e2e] ready at {url}: {health}")

        n_threads, per_thread, batch_size = 8, 5, 6
        errors: list[Exception] = []

        def client_loop(i: int) -> None:
            try:
                for n in range(per_thread):
                    response = client.predict(f"client {i} message {n}")
                    check(
                        response.label in LABEL_CODES,
                        f"bad label: {response.raw}",
                    )
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=client_loop, args=(i,), daemon=False)
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        check(not errors, f"concurrent clients failed: {errors[:3]}")

        batch = client.predict_batch(
            [f"batch item {j}" for j in range(batch_size)], top_k=2
        )
        check(
            len(batch.predictions) == batch_size,
            f"batch size mismatch: {batch.raw}",
        )

        n_single = n_threads * per_thread
        samples = client.metrics()

        def metric(name: str, **labels: str) -> float:
            return samples[(name, frozenset(labels.items()))]

        check(
            metric(
                "holistix_http_requests_total",
                endpoint="/v1/predict",
                status="200",
            )
            == n_single,
            "HTTP predict counter != client-side request count",
        )
        check(
            metric(
                "holistix_http_requests_total",
                endpoint="/v1/predict_batch",
                status="200",
            )
            == 1,
            "HTTP batch counter != 1",
        )
        check(
            metric("holistix_server_requests_total") == n_single + batch_size,
            "server text counter != texts sent",
        )
        check(metric("holistix_server_shed_total") == 0, "unexpected sheds")
        print(f"[e2e] metrics consistent after {n_single} + {batch_size} texts")

        code = server.terminate_gracefully()
        check(code == 0, f"graceful drain exited {code}, expected 0")
        print("[e2e] SIGTERM drain exited 0")
    except BaseException:
        server.dump_log()
        server.kill()
        raise


def phase_open_loop(checkpoint: Path, log_dir: Path) -> None:
    """Drive the gateway with the real ``holistix-loadgen`` CLI.

    Exercises the operator path end to end: open-loop Poisson schedule
    against a live server, trace file saved and replayable, JSON report
    written, exit code 0 with zero failures.
    """
    import json

    from repro.loadgen.cli import main as loadgen_main

    server = ServeProcess(
        "open-loop",
        [
            "--checkpoint",
            str(checkpoint),
            "--port",
            "0",
            "--workers",
            "2",
            "--max-queue",
            "256",
            "--overload",
            "block",
        ],
        log_dir,
    )
    try:
        url = server.wait_ready_url()
        trace = log_dir / "loadgen-trace.json"
        report_path = log_dir / "loadgen-report.json"
        code = loadgen_main(
            [
                "--url",
                url,
                "--rate",
                "40",
                "--duration",
                "2",
                "--seed",
                "5",
                "--save-trace",
                str(trace),
                "--out",
                str(report_path),
            ]
        )
        check(code == 0, f"holistix-loadgen exited {code}")
        report = json.loads(report_path.read_text(encoding="utf-8"))
        summary = report["summary"]
        check(summary["mode"] == "open", f"unexpected mode: {summary}")
        check(
            summary["scheduled"] == summary["completed"]
            and summary["failed"] == 0
            and summary["dropped"] == 0,
            f"open-loop run lost requests: {summary}",
        )
        check(summary["p99_ms"] > 0, f"empty histogram: {summary}")
        check(trace.is_file(), "trace file was not written")
        # Replaying the saved trace must offer the same schedule.
        code = loadgen_main(
            ["--url", url, "--trace", str(trace), "--corpus-size", "100"]
        )
        check(code == 0, f"trace replay exited {code}")
        print(
            f"[e2e] open-loop {summary['offered_rate_rps']:.0f} rps: "
            f"p99 {summary['p99_ms']:.1f} ms over {summary['completed']} reqs"
        )
        code = server.terminate_gracefully()
        check(code == 0, f"graceful drain exited {code}, expected 0")
    except BaseException:
        server.dump_log()
        server.kill()
        raise


def phase_forced_shed(checkpoint: Path, log_dir: Path) -> None:
    server = ServeProcess(
        "forced-shed",
        [
            "--checkpoint",
            str(checkpoint),
            "--port",
            "0",
            "--workers",
            "1",
            "--max-batch-size",
            "1",
            "--max-wait-ms",
            "0",
            "--max-queue",
            "1",
            "--overload",
            "shed",
            "--inject-latency-ms",
            "300",
        ],
        log_dir,
    )
    try:
        client = ServingClient(server.wait_ready_url(), deadline_s=30)
        client.wait_ready(deadline_s=30)
        statuses: list[int] = []
        lock = threading.Lock()

        def fire(i: int) -> None:
            try:
                client.predict(f"burst {i}", retry_on_overload=False)
                status = 200
            except GatewayOverloaded:
                status = 429
            with lock:
                statuses.append(status)

        threads = [
            threading.Thread(target=fire, args=(i,), daemon=False) for i in range(12)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        shed, served = statuses.count(429), statuses.count(200)
        print(f"[e2e] burst of 12: {served} served, {shed} shed")
        check(shed >= 1, f"expected at least one 429, got statuses {statuses}")
        check(served >= 1, f"expected at least one 200, got {statuses}")
        check(
            client.metrics()[("holistix_server_shed_total", frozenset())]
            == shed,
            "shed counter != client-observed 429s",
        )
        code = server.terminate_gracefully()
        check(code == 0, f"graceful drain exited {code}, expected 0")
    except BaseException:
        server.dump_log()
        server.kill()
        raise


def shm_segments() -> list[str] | None:
    """Names of live ``hx_*`` shared-memory segments (None off-Linux)."""
    root = Path("/dev/shm")
    if not root.is_dir():
        return None
    return sorted(p.name for p in root.glob("hx_*"))


def pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


def phase_multiprocess(checkpoint: Path, log_dir: Path) -> None:
    """The ``--worker-processes`` deployment shape, end to end.

    Byte-identical predictions vs the threaded server (sequential
    single requests pin batch composition to singletons — probabilities
    are only bit-reproducible under identical batch shapes), per-process
    health reporting, and the cleanup contract: SIGTERM drains with exit
    0, every worker process dies, and no ``/dev/shm`` segment survives.
    """
    texts = [f"parity text {i} about sleep and worry" for i in range(10)]
    segments_before = shm_segments()

    threaded = ServeProcess(
        "mp-parity-threads",
        ["--checkpoint", str(checkpoint), "--port", "0", "--workers", "2"],
        log_dir,
    )
    try:
        client = ServingClient(threaded.wait_ready_url(), deadline_s=30)
        client.wait_ready(deadline_s=30)
        thread_probs = [client.predict(t).probabilities for t in texts]
        code = threaded.terminate_gracefully()
        check(code == 0, f"threaded reference exited {code}, expected 0")
    except BaseException:
        threaded.dump_log()
        threaded.kill()
        raise

    server = ServeProcess(
        "mp-workers",
        [
            "--checkpoint",
            str(checkpoint),
            "--port",
            "0",
            "--worker-processes",
            "2",
            "--max-queue",
            "64",
            "--overload",
            "shed",
        ],
        log_dir,
    )
    try:
        url = server.wait_ready_url(timeout_s=120)
        client = ServingClient(url, deadline_s=30)
        health = client.wait_ready(deadline_s=60)
        check(health["status"] == "ok", f"unexpected health: {health}")
        processes = health.get("processes")
        check(
            isinstance(processes, list) and len(processes) == 2,
            f"healthz did not report 2 worker processes: {health}",
        )
        check(
            all(p["alive"] and isinstance(p["pid"], int) for p in processes),
            f"worker processes not all alive: {processes}",
        )
        pids = [p["pid"] for p in processes]
        print(f"[e2e] multi-process server ready at {url}, worker pids {pids}")

        mp_probs = [client.predict(t).probabilities for t in texts]
        check(
            mp_probs == thread_probs,
            "process-served probabilities differ from the threaded server",
        )
        print(f"[e2e] {len(texts)} predictions byte-identical to threaded serving")

        batch = client.predict_batch(texts[:4])
        check(len(batch.predictions) == 4, f"batch mismatch: {batch.raw}")
        metrics_text = client.metrics_text()
        check(
            "holistix_worker_process_alive" in metrics_text
            and "holistix_worker_process_restarts_total" in metrics_text,
            "per-process metric families missing from /metrics",
        )

        segments_during = shm_segments()
        if segments_during is not None and segments_before is not None:
            new = set(segments_during) - set(segments_before)
            check(
                len(new) == 1,
                f"expected exactly one new shm segment, saw {sorted(new)}",
            )

        code = server.terminate_gracefully()
        check(code == 0, f"graceful drain exited {code}, expected 0")

        deadline = time.monotonic() + 15
        while time.monotonic() < deadline and any(pid_alive(p) for p in pids):
            time.sleep(0.1)
        orphans = [p for p in pids if pid_alive(p)]
        check(not orphans, f"worker processes survived SIGTERM: {orphans}")

        segments_after = shm_segments()
        if segments_after is not None and segments_before is not None:
            leaked = set(segments_after) - set(segments_before)
            check(not leaked, f"leaked shm segments: {sorted(leaked)}")
        print("[e2e] SIGTERM drained: exit 0, zero orphans, shm clean")
    except BaseException:
        server.dump_log()
        server.kill()
        raise


def admin_post(
    url: str, path: str, token: str | None, payload: dict
) -> tuple[int, dict]:
    """POST to an admin endpoint; returns (status, parsed JSON body)."""
    import json
    import urllib.error
    import urllib.request

    request = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    if token is not None:
        request.add_header("X-Admin-Token", token)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def phase_chaos_admin(checkpoint: Path, log_dir: Path) -> None:
    """Admin surface + supervised crash recovery on the real deployment.

    Boots ``holistix-serve --worker-processes 2 --admin-token``, then:
    a bad token gets 403 (and so does a missing one), reloading the
    same checkpoint over HTTP bumps ``weights_version`` without
    changing predictions, arming a one-crash fault plan through
    ``POST /v1/admin/chaos`` SIGKILLs a live worker and the background
    supervisor replaces it (observed via the ``/metrics`` restart
    counter — no health probe is allowed to do the reviving), and the
    usual cleanup contract holds: SIGTERM drain exits 0, no worker
    survives, no shm segment leaks.
    """
    token = "e2e-admin-secret"
    segments_before = shm_segments()
    server = ServeProcess(
        "chaos-admin",
        [
            "--checkpoint",
            str(checkpoint),
            "--port",
            "0",
            "--worker-processes",
            "2",
            "--max-queue",
            "256",
            "--overload",
            "block",
            "--admin-token",
            token,
        ],
        log_dir,
    )
    try:
        url = server.wait_ready_url(timeout_s=120)
        client = ServingClient(url, deadline_s=30)
        health = client.wait_ready(deadline_s=60)
        pids = [p["pid"] for p in health["processes"]]
        print(f"[e2e] chaos-admin server ready at {url}, worker pids {pids}")

        status, body = admin_post(
            url, "/v1/admin/reload", "wrong-token", {"checkpoint": str(checkpoint)}
        )
        check(status == 403, f"bad admin token got {status}: {body}")
        status, body = admin_post(
            url, "/v1/admin/reload", None, {"checkpoint": str(checkpoint)}
        )
        check(status == 403, f"missing admin token got {status}: {body}")

        probe_text = "admin reload probe about sleep and worry"
        before = client.predict(probe_text).probabilities
        status, body = admin_post(
            url, "/v1/admin/reload", token, {"checkpoint": str(checkpoint)}
        )
        check(
            status == 200 and body.get("status") == "ok",
            f"reload failed: {status} {body}",
        )
        check(
            body.get("weights_version", 0) >= 2,
            f"reload did not bump weights_version: {body}",
        )
        after = client.predict(probe_text).probabilities
        check(
            after == before,
            "reloading the identical checkpoint changed predictions",
        )
        print(f"[e2e] hot reload ok: weights_version {body['weights_version']}")

        # Arm a minimal plan: one SIGKILL against worker slot 0, 0.2s in.
        plan = {
            "plan_version": 1,
            "seed": 0,
            "events": [
                {"at_s": 0.2, "kind": "worker_crash", "target": 0},
            ],
        }
        status, body = admin_post(url, "/v1/admin/chaos", token, plan)
        check(
            status == 200 and body.get("status") == "armed",
            f"chaos arm failed: {status} {body}",
        )

        def restart_count() -> float:
            total = 0.0
            for (name, _labels), value in client.metrics().items():
                if name == "holistix_worker_process_restarts_total":
                    total += value
            return total

        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and restart_count() < 1:
            time.sleep(0.2)
        check(
            restart_count() >= 1,
            "supervisor never respawned the SIGKILLed worker "
            "(holistix_worker_process_restarts_total stayed 0)",
        )
        # The replacement must actually serve.
        response = client.predict("post-crash probe")
        check(
            response.label in LABEL_CODES, f"bad post-crash label: {response.raw}"
        )
        # A freshly respawned worker reports ``pid: None`` until its
        # ready handshake is consumed; wait for concrete pids so the
        # orphan sweep below has real targets.
        deadline = time.monotonic() + 30
        while True:
            health = client.wait_ready(deadline_s=30)
            replacement_pids = [p["pid"] for p in health["processes"]]
            if all(
                p["alive"] and p["pid"] is not None
                for p in health["processes"]
            ):
                break
            check(
                time.monotonic() < deadline,
                f"replacement worker never reported a pid: {health}",
            )
            time.sleep(0.2)
        print(
            "[e2e] supervisor recovered from SIGKILL: "
            f"pids {pids} -> {replacement_pids}"
        )
        all_pids = set(pids) | set(replacement_pids)

        code = server.terminate_gracefully()
        check(code == 0, f"graceful drain exited {code}, expected 0")

        deadline = time.monotonic() + 15
        while time.monotonic() < deadline and any(
            pid_alive(p) for p in all_pids
        ):
            time.sleep(0.1)
        orphans = [p for p in all_pids if pid_alive(p)]
        check(not orphans, f"worker processes survived SIGTERM: {orphans}")

        segments_after = shm_segments()
        if segments_after is not None and segments_before is not None:
            leaked = set(segments_after) - set(segments_before)
            check(not leaked, f"leaked shm segments: {sorted(leaked)}")
        print("[e2e] chaos-admin drained: exit 0, zero orphans, shm clean")
    except BaseException:
        server.dump_log()
        server.kill()
        raise


def phase_fleet(checkpoint: Path, log_dir: Path) -> None:
    """Two resident models behind one gateway, 90/10 A/B plus a shadow.

    Boots the repeatable ``--model`` form over worker processes, then
    verifies the control-plane contract end to end: the A/B split shows
    up in the per-model Prometheus counters, the shadow entry scores
    every answered request without ever answering one, a per-model
    reload hot-swaps only the selected entry's weights, and a reload
    pointed at a missing checkpoint leaves the fleet serving untouched.
    """
    token = "e2e-fleet-secret"
    segments_before = shm_segments()
    server = ServeProcess(
        "fleet",
        [
            "--model",
            f"champion={checkpoint}:weight=0.9",
            "--model",
            f"challenger={checkpoint}:weight=0.1",
            "--model",
            f"mirror={checkpoint}:shadow",
            "--port",
            "0",
            "--worker-processes",
            "1",
            "--max-queue",
            "256",
            "--overload",
            "block",
            "--admin-token",
            token,
        ],
        log_dir,
    )
    try:
        url = server.wait_ready_url(timeout_s=180)
        client = ServingClient(url, deadline_s=30)
        health = client.wait_ready(deadline_s=120)
        names = {m["name"] for m in health["models"]}
        check(
            names == {"champion", "challenger", "mirror"},
            f"healthz fleet roster wrong: {health}",
        )
        print(f"[e2e] fleet ready at {url}: {sorted(names)}")

        n = 200
        served_by_counts: dict[str, int] = {}
        for i in range(n):
            result = client.predict(f"fleet traffic {i}", request_id=f"e2e-{i}")
            name = result.served_by.model
            served_by_counts[name] = served_by_counts.get(name, 0) + 1
        check(
            "mirror" not in served_by_counts,
            f"shadow answered live traffic: {served_by_counts}",
        )
        explicit = client.predict("explicit route", model="challenger")
        check(
            explicit.served_by.model == "challenger",
            f"explicit routing failed: {explicit.raw}",
        )

        def model_requests(name: str) -> float:
            return client.metrics().get(
                ("holistix_requests_total", frozenset({("model", name)})), 0.0
            )

        champ, chall = model_requests("champion"), model_requests("challenger")
        check(
            champ + chall == n + 1,
            f"per-model counters do not cover the traffic: {champ} + {chall}",
        )
        share = (chall - 1) / n  # discount the explicit request
        check(
            0.02 <= share <= 0.25,
            f"challenger share {share:.2%} outside the 10% band",
        )
        check(
            served_by_counts.get("challenger", 0) == chall - 1,
            "served_by envelopes disagree with the Prometheus counters",
        )
        print(
            f"[e2e] A/B split over {n} requests: champion {champ:.0f}, "
            f"challenger {chall:.0f} ({share:.1%} measured share)"
        )

        # Shadow mirroring is fire-and-forget; wait for it to catch up.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and model_requests("mirror") < n + 1:
            time.sleep(0.2)
        mirrored = model_requests("mirror")
        check(
            mirrored >= n + 1,
            f"shadow scored {mirrored:.0f} of {n + 1} answered requests",
        )
        print(f"[e2e] shadow scored {mirrored:.0f} mirrored requests, answered 0")

        models_doc = client.models()
        versions = {
            m["name"]: m["weights_version"] for m in models_doc["models"]
        }
        status, body = admin_post(
            url,
            "/v1/admin/reload",
            token,
            {"model": "challenger", "checkpoint": str(checkpoint)},
        )
        check(
            status == 200 and body.get("model") == "challenger",
            f"per-model reload failed: {status} {body}",
        )
        check(
            body["weights_version"] > versions["challenger"],
            f"reload did not bump challenger weights: {body} vs {versions}",
        )
        after = {
            m["name"]: m["weights_version"]
            for m in client.models()["models"]
        }
        check(
            after["champion"] == versions["champion"]
            and after["mirror"] == versions["mirror"],
            f"reload touched unselected entries: {versions} -> {after}",
        )
        print(
            f"[e2e] per-model reload: challenger weights_version "
            f"{versions['challenger']} -> {after['challenger']}, others pinned"
        )

        status, body = admin_post(
            url,
            "/v1/admin/reload",
            token,
            {"model": "champion", "checkpoint": str(checkpoint / "missing")},
        )
        check(
            status == 400 and body["error"]["model"] == "champion",
            f"bad-checkpoint reload not rejected cleanly: {status} {body}",
        )
        unchanged = {
            m["name"]: m["weights_version"]
            for m in client.models()["models"]
        }
        check(
            unchanged == after,
            f"failed reload moved weights: {after} -> {unchanged}",
        )
        probe = client.predict("post-failed-reload probe")
        check(
            probe.label in LABEL_CODES,
            f"fleet stopped serving after rejected reload: {probe.raw}",
        )
        print("[e2e] rejected reload left every entry serving on old weights")

        code = server.terminate_gracefully()
        check(code == 0, f"graceful drain exited {code}, expected 0")
        segments_after = shm_segments()
        if segments_after is not None and segments_before is not None:
            leaked = set(segments_after) - set(segments_before)
            check(not leaked, f"leaked shm segments: {sorted(leaked)}")
        print("[e2e] fleet drained: exit 0, shm clean")
    except BaseException:
        server.dump_log()
        server.kill()
        raise


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--log-dir",
        type=Path,
        default=REPO_ROOT / "e2e-logs",
        help="where server logs and the scratch checkpoint go",
    )
    parser.add_argument(
        "--mode",
        choices=("threads", "processes", "both"),
        default="both",
        help="which serving backends to exercise (CI matrixes over these)",
    )
    args = parser.parse_args(argv)
    args.log_dir.mkdir(parents=True, exist_ok=True)

    started = time.perf_counter()
    checkpoint = args.log_dir / "checkpoint"
    train_checkpoint(checkpoint)
    if args.mode in ("threads", "both"):
        phase_happy_path(checkpoint, args.log_dir)
        phase_open_loop(checkpoint, args.log_dir)
        phase_forced_shed(checkpoint, args.log_dir)
    if args.mode in ("processes", "both"):
        phase_multiprocess(checkpoint, args.log_dir)
        phase_chaos_admin(checkpoint, args.log_dir)
        phase_fleet(checkpoint, args.log_dir)
    print(f"[e2e] OK in {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
