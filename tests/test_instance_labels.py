"""Tests for repro.core.labels and repro.core.instance."""

import pytest

from repro.core.instance import AnnotatedInstance, Post, Span
from repro.core.labels import (
    DIMENSIONS,
    INDICATORS,
    WellnessDimension,
    dimension_from_code,
)


class TestLabels:
    def test_six_dimensions(self):
        assert len(DIMENSIONS) == 6
        assert len(set(DIMENSIONS)) == 6

    def test_codes_match_paper(self):
        assert [d.code for d in DIMENSIONS] == ["IA", "VA", "SpiA", "PA", "SA", "EA"]

    def test_from_code_roundtrip(self):
        for dim in DIMENSIONS:
            assert dimension_from_code(dim.code) is dim

    def test_from_code_invalid(self):
        with pytest.raises(ValueError, match="unknown dimension"):
            dimension_from_code("XX")

    def test_every_dimension_has_indicator(self):
        assert set(INDICATORS) == set(DIMENSIONS)

    def test_indicators_have_examples(self):
        for indicator in INDICATORS.values():
            assert indicator.examples
            assert indicator.indicators

    def test_descriptions_nonempty(self):
        for dim in DIMENSIONS:
            assert dim.description


class TestPost:
    def test_counts(self):
        post = Post("p1", "One two three. Four five.", "Anxiety")
        assert post.word_count == 5
        assert post.sentence_count == 2

    def test_empty_detection(self):
        assert Post("p1", "  \n ", "Anxiety").is_empty
        assert not Post("p1", "text", "Anxiety").is_empty

    def test_requires_id(self):
        with pytest.raises(ValueError):
            Post("", "text", "Anxiety")


class TestSpan:
    def test_locate(self):
        span = Span.locate("I feel lost today", "feel lost")
        assert (span.start, span.end) == (2, 11)
        assert span.text == "feel lost"

    def test_locate_missing(self):
        with pytest.raises(ValueError, match="not found"):
            Span.locate("abc", "xyz")

    def test_invalid_offsets(self):
        with pytest.raises(ValueError):
            Span(5, 2, "x")
        with pytest.raises(ValueError):
            Span(-1, 2, "abc")

    def test_text_length_must_match(self):
        with pytest.raises(ValueError):
            Span(0, 5, "ab")

    def test_overlaps(self):
        a = Span(0, 5, "abcde")
        b = Span(4, 6, "ef")
        c = Span(5, 7, "fg")
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_len(self):
        assert len(Span(2, 6, "abcd")) == 4


class TestAnnotatedInstance:
    def _make(self):
        post = Post("p1", "I feel so alone tonight.", "Depression")
        span = Span.locate(post.text, "feel so alone")
        return AnnotatedInstance(post, span, WellnessDimension.SOCIAL)

    def test_span_must_match_text(self):
        post = Post("p1", "Some text here.", "Anxiety")
        bad_span = Span(0, 4, "Nope")
        with pytest.raises(ValueError, match="span offsets"):
            AnnotatedInstance(post, bad_span, WellnessDimension.SOCIAL)

    def test_accessors(self):
        inst = self._make()
        assert inst.text == inst.post.text
        assert inst.span_text == "feel so alone"

    def test_dict_roundtrip(self):
        inst = self._make()
        clone = AnnotatedInstance.from_dict(inst.to_dict())
        assert clone.post == inst.post
        assert clone.span == inst.span
        assert clone.label == inst.label

    def test_metadata_preserved(self):
        post = Post("p1", "I feel so alone tonight.", "Depression")
        span = Span.locate(post.text, "alone")
        inst = AnnotatedInstance(
            post, span, WellnessDimension.SOCIAL, metadata={"post_type": "clear"}
        )
        clone = AnnotatedInstance.from_dict(inst.to_dict())
        assert clone.metadata["post_type"] == "clear"
