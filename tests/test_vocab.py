"""Tests for repro.text.vocab."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.vocab import PAD, UNK, Vocabulary


class TestConstruction:
    def test_specials_first(self):
        vocab = Vocabulary(["apple", "banana"])
        assert vocab.token(0) == PAD
        assert vocab.token(1) == UNK
        assert vocab.token(5) == "apple"

    def test_without_specials(self):
        vocab = Vocabulary(["apple"], specials=False)
        assert len(vocab) == 1
        assert vocab["apple"] == 0

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Vocabulary(["a", "a"])

    def test_build_ranks_by_frequency(self):
        vocab = Vocabulary.build(["b b b a a c"], specials=False)
        assert vocab["b"] == 0
        assert vocab["a"] == 1
        assert vocab["c"] == 2

    def test_build_tie_breaks_alphabetically(self):
        vocab = Vocabulary.build(["z a"], specials=False)
        assert vocab["a"] < vocab["z"]

    def test_build_min_freq(self):
        vocab = Vocabulary.build(["a a b"], min_freq=2, specials=False)
        assert "a" in vocab
        assert "b" not in vocab

    def test_build_max_size(self):
        vocab = Vocabulary.build(["a a a b b c"], max_size=7)
        assert len(vocab) == 7  # 5 specials + 2 words

    def test_max_size_too_small(self):
        with pytest.raises(ValueError, match="max_size"):
            Vocabulary.build(["a"], max_size=3)


class TestLookup:
    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary(["known"])
        assert vocab["missing"] == vocab.unk_id

    def test_unknown_raises_without_specials(self):
        vocab = Vocabulary(["known"], specials=False)
        with pytest.raises(KeyError):
            vocab["missing"]

    def test_special_ids(self):
        vocab = Vocabulary(["x"])
        assert vocab.pad_id == 0
        assert vocab.unk_id == 1
        assert vocab.cls_id == 2
        assert vocab.sep_id == 3
        assert vocab.mask_id == 4

    def test_special_property_raises_without_specials(self):
        vocab = Vocabulary(["x"], specials=False)
        with pytest.raises(ValueError):
            vocab.pad_id

    def test_contains(self):
        vocab = Vocabulary(["word"])
        assert "word" in vocab
        assert "other" not in vocab


class TestEncode:
    def test_encode_basic(self):
        vocab = Vocabulary(["hello", "world"])
        assert vocab.encode("hello world") == [vocab["hello"], vocab["world"]]

    def test_encode_truncates(self):
        vocab = Vocabulary(["a", "b", "c"])
        assert len(vocab.encode("a b c", max_len=2)) == 2

    def test_encode_cls_sep(self):
        vocab = Vocabulary(["a"])
        ids = vocab.encode("a", add_cls=True, add_sep=True)
        assert ids[0] == vocab.cls_id
        assert ids[-1] == vocab.sep_id

    def test_encode_pads(self):
        vocab = Vocabulary(["a"])
        ids = vocab.encode("a", pad_to=4)
        assert len(ids) == 4
        assert ids[1:] == [vocab.pad_id] * 3

    def test_pad_to_truncates(self):
        vocab = Vocabulary(["a", "b", "c"])
        assert len(vocab.encode("a b c", pad_to=2)) == 2

    def test_decode_skips_specials(self):
        vocab = Vocabulary(["a"])
        ids = vocab.encode("a unknownword", pad_to=5)
        assert vocab.decode(ids) == ["a"]

    def test_decode_keeps_specials_when_asked(self):
        vocab = Vocabulary(["a"])
        ids = [vocab.pad_id, vocab["a"]]
        assert vocab.decode(ids, skip_special=False) == [PAD, "a"]


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        vocab = Vocabulary(["alpha", "beta"])
        path = tmp_path / "vocab.json"
        vocab.save(path)
        loaded = Vocabulary.load(path)
        assert len(loaded) == len(vocab)
        assert loaded["alpha"] == vocab["alpha"]
        assert loaded.pad_id == vocab.pad_id

    def test_roundtrip_without_specials(self, tmp_path):
        vocab = Vocabulary(["alpha"], specials=False)
        path = tmp_path / "vocab.json"
        vocab.save(path)
        loaded = Vocabulary.load(path)
        assert not loaded.has_specials
        assert loaded["alpha"] == 0


class TestProperties:
    @given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=6), min_size=1, max_size=30, unique=True))
    def test_bijection(self, tokens):
        vocab = Vocabulary(tokens)
        for token in tokens:
            assert vocab.token(vocab[token]) == token

    @given(st.lists(st.sampled_from(["cat", "dog", "bird"]), min_size=1, max_size=10))
    def test_encode_decode_roundtrip(self, words):
        vocab = Vocabulary(["cat", "dog", "bird"])
        text = " ".join(words)
        assert vocab.decode(vocab.encode(text)) == words
