"""Concurrency tests for the replicated InferenceServer.

Every test here runs against deterministic stub backends (a pure
function of the text, optionally slowed down) so the serving-layer
behaviour under contention — multi-worker correctness vs a serial
oracle, shed-mode overload, drain-on-stop races, restart accounting,
shared deadlines, and stats snapshot consistency — is exercised in
milliseconds without training a model.
"""

from __future__ import annotations

import hashlib
import threading
import time
from concurrent.futures import Future, TimeoutError as FutureTimeoutError

import numpy as np
import pytest

from repro.core.labels import DIMENSIONS
from repro.engine.engine import PredictionEngine
from repro.engine.server import (
    InferenceServer,
    ServerClosed,
    ServerOverloaded,
    ServerStats,
)


class DeterministicBackend:
    """Probabilities as a pure function of the text — the serial oracle."""

    n_classes = 6

    def proba_batch(self, texts: list[str]) -> np.ndarray:
        rows = np.empty((len(texts), 6), dtype=np.float64)
        for i, text in enumerate(texts):
            digest = hashlib.sha256(text.encode("utf-8")).digest()
            vals = np.frombuffer(digest[:6], dtype=np.uint8).astype(np.float64) + 1.0
            rows[i] = vals / vals.sum()
        return rows


class SlowBackend(DeterministicBackend):
    """Deterministic backend with a fixed per-batch service time."""

    def __init__(self, delay_s: float) -> None:
        self.delay_s = delay_s

    def proba_batch(self, texts: list[str]) -> np.ndarray:
        time.sleep(self.delay_s)
        return super().proba_batch(texts)


def make_engine(backend=None, **kwargs) -> PredictionEngine:
    return PredictionEngine(
        backend or DeterministicBackend(), model_id="stub", **kwargs
    )


class TestMultiWorkerCorrectness:
    def test_matches_serial_oracle_under_concurrent_clients(self):
        texts = [f"post number {i} about wellbeing" for i in range(150)]
        oracle = make_engine().predict_proba(texts)
        server = InferenceServer(
            make_engine(SlowBackend(0.005)),
            workers=4,
            max_batch_size=8,
            max_wait_ms=1.0,
        )
        results: dict[str, tuple] = {}
        lock = threading.Lock()
        with server:
            def client(chunk):
                futures = [(t, server.submit(t)) for t in chunk]
                for t, f in futures:
                    r = f.result(timeout=30)
                    with lock:
                        results[t] = r.probabilities
            threads = [
                threading.Thread(target=client, args=(texts[i::6],))
                for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(results) == len(texts)
        for i, text in enumerate(texts):
            np.testing.assert_allclose(results[text], oracle[i], rtol=1e-12)
        snap = server.stats.snapshot()
        assert snap.requests == len(texts)
        assert sum(snap.per_worker_requests) == len(texts)
        assert len(snap.per_worker_requests) == 4
        # With 4 workers draining a backlog of slow batches, the load
        # cannot all land on a single worker.
        assert np.count_nonzero(snap.per_worker_requests) >= 2

    def test_workers_serve_through_private_replicas(self):
        engine = make_engine()
        server = InferenceServer(engine, workers=3, max_batch_size=4)
        assert len(server.engines) == 3
        backends = {id(e.backend) for e in server.engines}
        assert backends == {id(engine.backend)}  # shared fitted state
        assert len({id(e) for e in server.engines}) == 3  # private replicas
        texts = [f"text {i}" for i in range(40)]
        with server:
            server.predict(texts)
        # Work went through the replicas, not the template engine.
        assert engine.stats.requests == 0
        assert server.engine_stats().requests == len(texts)

    def test_duplicate_traffic_hits_replica_caches(self):
        server = InferenceServer(make_engine(), workers=2, max_batch_size=16)
        with server:
            for _ in range(5):
                server.predict(["hot text"] * 4)
        stats = server.engine_stats()
        assert stats.requests == 20
        assert stats.cache_hits >= 1


class TestBackpressure:
    def test_shed_mode_raises_typed_overload(self):
        server = InferenceServer(
            make_engine(SlowBackend(0.05)),
            workers=1,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=4,
            overload="shed",
        )
        admitted: list[Future] = []
        sheds = 0
        with server:
            for i in range(30):
                try:
                    admitted.append(server.submit(f"burst {i}"))
                except ServerOverloaded:
                    sheds += 1
            # Admitted requests still drain and resolve on stop.
        assert sheds > 0
        assert server.stats.shed == sheds
        snap = server.stats.snapshot()
        assert snap.shed_rate == pytest.approx(sheds / (sheds + snap.requests))
        for f in admitted:
            assert f.result(timeout=5).label in DIMENSIONS

    def test_block_mode_applies_backpressure_and_loses_nothing(self):
        server = InferenceServer(
            make_engine(SlowBackend(0.02)),
            workers=1,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=2,
            overload="block",
        )
        with server:
            started = time.perf_counter()
            futures = [server.submit(f"steady {i}") for i in range(10)]
            submit_elapsed = time.perf_counter() - started
            results = [f.result(timeout=10) for f in futures]
        # 10 serial 20 ms batches behind a 2-deep queue: the submit loop
        # itself must have blocked waiting for space.
        assert submit_elapsed > 0.05
        assert server.stats.shed == 0
        assert [r.text for r in results] == [f"steady {i}" for i in range(10)]

    def test_stop_unblocks_waiting_submitter_with_server_closed(self):
        server = InferenceServer(
            make_engine(SlowBackend(0.1)),
            workers=1,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=1,
            overload="block",
        )
        server.start()
        server.submit("in flight")
        server.submit("queued")
        outcome: list = []

        def blocked_submit():
            try:
                outcome.append(server.submit("blocked"))
            except ServerClosed as error:
                outcome.append(error)

        thread = threading.Thread(target=blocked_submit)
        thread.start()
        time.sleep(0.03)  # let it reach the not_full wait
        server.stop()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert len(outcome) == 1
        # Either it squeezed in before stop (and was drained) or it
        # failed fast; it must never hang.
        if isinstance(outcome[0], Future):
            assert outcome[0].result(timeout=5)
        else:
            assert isinstance(outcome[0], ServerClosed)

    def test_invalid_configuration_rejected(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            InferenceServer(engine, workers=0)
        with pytest.raises(ValueError):
            InferenceServer(engine, max_queue=0)
        with pytest.raises(ValueError):
            InferenceServer(engine, overload="drop")

    def test_typed_errors_remain_runtime_errors(self):
        assert issubclass(ServerClosed, RuntimeError)
        assert issubclass(ServerOverloaded, RuntimeError)


class TestDrainAndStopRaces:
    def test_every_admitted_future_resolves_across_racing_stop(self):
        server = InferenceServer(
            make_engine(SlowBackend(0.002)),
            workers=2,
            max_batch_size=4,
            max_wait_ms=0.5,
        )
        server.start()
        admitted: list[Future] = []
        lock = threading.Lock()
        closed = threading.Event()

        def producer(i):
            n = 0
            while not closed.is_set():
                try:
                    f = server.submit(f"producer {i} req {n}")
                except ServerClosed:
                    closed.set()
                    return
                with lock:
                    admitted.append(f)
                n += 1

        threads = [threading.Thread(target=producer, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.1)
        server.stop()  # races the producers
        closed.set()
        for t in threads:
            t.join(timeout=5)
        assert admitted
        for f in admitted:
            assert f.result(timeout=5).label in DIMENSIONS
        assert server.stats.requests == len(admitted)
        with pytest.raises(ServerClosed):
            server.submit("too late")

    def test_cancelled_futures_are_skipped_not_crashed(self):
        server = InferenceServer(
            make_engine(SlowBackend(0.05)),
            workers=1,
            max_batch_size=1,
            max_wait_ms=0.0,
        )
        with server:
            futures = [server.submit(f"text {i}") for i in range(5)]
            cancelled = futures[3].cancel()
        if cancelled:
            assert futures[3].cancelled()
            live = futures[:3] + futures[4:]
        else:  # the worker won the race; it was served normally
            live = futures
        for f in live:
            assert f.result(timeout=5).label in DIMENSIONS

    def test_restart_resets_stats_epoch(self):
        """Regression: start() after stop() used to keep old counters and
        stopped_at, so throughput() mixed downtime into the denominator."""
        server = InferenceServer(make_engine(), max_batch_size=4)
        with server:
            server.predict([f"a {i}" for i in range(10)])
        first = server.stats.snapshot()
        assert first.epoch == 1
        assert first.requests == 10
        assert first.stopped_at is not None

        server.start()
        try:
            fresh = server.stats.snapshot()
            assert fresh.epoch == 2
            assert fresh.requests == 0  # pre-fix: still 10
            assert fresh.batches == 0
            assert fresh.stopped_at is None  # pre-fix: stale stop stamp
            assert fresh.started_at is not None
            assert fresh.started_at > first.started_at
            server.predict([f"b {i}" for i in range(5)])
        finally:
            server.stop()
        second = server.stats.snapshot()
        assert second.requests == 5
        # Throughput is computed over this epoch's uptime only.
        uptime = second.stopped_at - second.started_at
        assert second.throughput() == pytest.approx(5 / uptime)


class TestSharedDeadline:
    def test_predict_timeout_is_one_deadline_not_per_future(self):
        """Regression: the old per-future timeout let predict() take up to
        n × timeout; five 150 ms serial batches all fit their individual
        0.3 s windows but must blow a single shared 0.3 s deadline."""
        server = InferenceServer(
            make_engine(SlowBackend(0.15)),
            workers=1,
            max_batch_size=1,
            max_wait_ms=0.0,
        )
        with server:
            started = time.perf_counter()
            with pytest.raises(FutureTimeoutError):
                server.predict([f"slow {i}" for i in range(5)], timeout=0.3)
            elapsed = time.perf_counter() - started
        assert elapsed < 1.0  # nowhere near 5 × 0.3

    def test_predict_none_timeout_waits_for_everything(self):
        server = InferenceServer(
            make_engine(SlowBackend(0.01)), workers=2, max_batch_size=2
        )
        with server:
            results = server.predict(
                [f"t {i}" for i in range(8)], timeout=None
            )
        assert len(results) == 8


class TestStatsSnapshot:
    def test_snapshot_is_consistent_and_immutable(self):
        stats = ServerStats(n_workers=2)
        stats.mark_started()
        stats.record_batch([1.0, 2.0, 3.0], worker=0)
        stats.record_batch([4.0], worker=1)
        snap = stats.snapshot()
        assert snap.requests == 4
        assert snap.batches == 2
        assert snap.largest_batch == 3
        assert snap.per_worker_requests == (3, 1)
        assert snap.latencies_ms == (1.0, 2.0, 3.0, 4.0)
        assert snap.mean_latency_ms == pytest.approx(2.5)
        assert snap.latency_percentile(0) == 1.0
        assert snap.latency_percentile(100) == 4.0
        with pytest.raises(AttributeError):
            snap.requests = 99  # frozen
        # The legacy attribute API delegates to a snapshot.
        assert stats.requests == 4
        assert stats.mean_batch_size == pytest.approx(2.0)
        assert stats.latency_percentile(100) == 4.0

    def test_percentile_reads_race_concurrent_writers(self):
        """Regression: latency_percentile used to sort the live deque the
        worker was appending to — sorted() over a mutating deque raises
        RuntimeError.  Hammer reads against a writer thread."""
        stats = ServerStats(window=4096)
        stats.mark_started()
        done = threading.Event()

        def writer():
            while not done.is_set():
                stats.record_batch([1.0, 2.0, 3.0, 4.0] * 8)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            deadline = time.perf_counter() + 0.4
            while time.perf_counter() < deadline:
                p95 = stats.latency_percentile(95)
                assert 0.0 <= p95 <= 4.0
                assert stats.mean_latency_ms >= 0.0
                stats.snapshot()
        finally:
            done.set()
            thread.join(timeout=5)
        assert not thread.is_alive()

    def test_window_bounds_percentile_memory(self):
        stats = ServerStats(window=8)
        stats.mark_started()
        stats.record_batch([float(i) for i in range(32)])
        assert len(stats.snapshot().latencies_ms) == 8
        assert stats.latency_percentile(0) == 24.0  # oldest retained


class TestServerLifecycle:
    def test_double_start_rejected(self):
        server = InferenceServer(make_engine())
        with server, pytest.raises(RuntimeError, match="already running"):
            server.start()

    def test_stop_idempotent_and_reentrant(self):
        server = InferenceServer(make_engine())
        server.stop()  # never started: no-op
        server.start()
        server.stop()
        server.stop()  # second stop: no-op
        assert not server.running

    def test_submit_before_start_fails_fast(self):
        with pytest.raises(ServerClosed):
            InferenceServer(make_engine()).submit("hello")

    def test_concurrent_stops_leave_no_sentinel_debris(self):
        # Two racing stop() calls must plant sentinels exactly once;
        # leftovers would make the restarted workers exit immediately.
        server = InferenceServer(
            make_engine(SlowBackend(0.01)), workers=2, max_batch_size=2
        )
        server.start()
        for i in range(6):
            server.submit(f"w {i}")
        stoppers = [threading.Thread(target=server.stop) for _ in range(3)]
        for t in stoppers:
            t.start()
        for t in stoppers:
            t.join(timeout=10)
        assert not server.running
        server.start()
        try:
            results = server.predict([f"again {i}" for i in range(8)], timeout=10)
            assert len(results) == 8
            assert server.running  # workers did not eat stale sentinels
        finally:
            server.stop()


class TestGracefulDrain:
    """The SIGTERM hook: drain() closes admission but keeps serving."""

    def test_drain_closes_admission_but_serves_admitted(self):
        server = InferenceServer(
            make_engine(SlowBackend(0.02)), workers=2, max_batch_size=2
        )
        with server:
            assert server.accepting
            admitted = [server.submit(f"admitted {i}") for i in range(8)]
            server.drain()
            assert not server.accepting
            assert server.running  # workers stay up to drain the backlog
            with pytest.raises(ServerClosed):
                server.submit("late")
            # Every admitted future still resolves with a real result.
            oracle = make_engine().predict_proba(
                [f"admitted {i}" for i in range(8)]
            )
            for future, expected in zip(admitted, oracle):
                result = future.result(timeout=10)
                assert result.probabilities == tuple(expected)
        assert not server.running

    def test_drain_wakes_blocked_submitters(self):
        server = InferenceServer(
            make_engine(SlowBackend(0.2)),
            workers=1,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=1,
            overload="block",
        )
        errors: list[Exception] = []
        with server:
            server.submit("occupy")
            time.sleep(0.05)
            server.submit("fill queue")

            def blocked_submit() -> None:
                try:
                    server.submit("blocked on a full queue")
                except ServerClosed as error:
                    errors.append(error)

            thread = threading.Thread(target=blocked_submit)
            thread.start()
            time.sleep(0.05)  # the submitter is waiting on _not_full
            server.drain()
            thread.join(timeout=5)
            assert len(errors) == 1  # failed fast, did not hang

    def test_drain_is_idempotent_and_safe_before_start(self):
        server = InferenceServer(make_engine())
        server.drain()  # never started: no-op
        with pytest.raises(ServerClosed):
            server.submit("still closed")
        server.start()
        server.drain()
        server.drain()
        server.stop()
        assert not server.running


class CrashOnceBackend(DeterministicBackend):
    """Raises on the first batch containing a trigger text, then heals."""

    def __init__(self) -> None:
        self.tripped = False

    def proba_batch(self, texts: list[str]) -> np.ndarray:
        if not self.tripped and any("CRASH" in t for t in texts):
            self.tripped = True
            raise SystemError("backend blew past the per-batch handler")
        return super().proba_batch(texts)


class TestWorkerThreadReplacement:
    """A serving thread dying on an unexpected exception is replaced.

    ``_serve_batch`` already fans exceptions out to the batch's futures,
    so the only way a serving thread dies is a bug *outside* that guard
    (batch collection, stats, chaos seam).  When it happens the thread
    must be logged, counted, and replaced — not silently strip the
    server of capacity.
    """

    def _server_with_collect_bomb(self, workers: int = 1) -> InferenceServer:
        server = InferenceServer(
            make_engine(), workers=workers, max_batch_size=4, max_wait_ms=0.5
        )
        original = server._serve_batch
        state = {"armed": True}

        def bomb(batch, worker):
            if state["armed"] and any("CRASH" in t for t, _, _ in batch):
                state["armed"] = False
                raise SystemError("simulated serving-loop bug")
            return original(batch, worker)

        server._serve_batch = bomb
        return server

    def test_dead_thread_is_counted_and_replaced(self):
        server = self._server_with_collect_bomb(workers=1)
        with server:
            crashed = server.submit("CRASH this thread")
            # The killing batch's futures die with the thread...
            with pytest.raises(SystemError):
                crashed.result(timeout=30)
            # ...but the replacement thread keeps the (sole) slot alive.
            result = server.submit("served by the replacement").result(timeout=30)
            assert len(result.probabilities) == 6
            snapshot = server.stats.snapshot()
            assert snapshot.worker_thread_deaths == 1

    def test_replacement_survives_repeated_deaths(self):
        server = InferenceServer(
            make_engine(), workers=2, max_batch_size=1, max_wait_ms=0.0
        )
        original = server._serve_batch
        counter = {"left": 3}

        def bomb(batch, worker):
            if counter["left"] > 0 and any("CRASH" in t for t, _, _ in batch):
                counter["left"] -= 1
                raise SystemError("repeated serving-loop bug")
            return original(batch, worker)

        server._serve_batch = bomb
        with server:
            for i in range(3):
                with pytest.raises(SystemError):
                    server.submit(f"CRASH {i}").result(timeout=30)
            for i in range(8):
                result = server.submit(f"healthy {i}").result(timeout=30)
                assert len(result.probabilities) == 6
            assert server.stats.snapshot().worker_thread_deaths == 3

    def test_clean_stop_after_replacement(self):
        server = self._server_with_collect_bomb(workers=2)
        server.start()
        with pytest.raises(SystemError):
            server.submit("CRASH now").result(timeout=30)
        futures = [server.submit(f"drain {i}") for i in range(6)]
        server.stop()  # must join the replacement thread, not the corpse
        for f in futures:
            assert len(f.result(timeout=30).probabilities) == 6
        assert not server.running

    def test_backend_exception_does_not_kill_thread(self):
        # Control case: an exception *inside* the batch handler goes to
        # the futures and the thread survives — no death counted.
        server = InferenceServer(make_engine(CrashOnceBackend()), workers=1)
        with server:
            with pytest.raises(SystemError):
                server.submit("CRASH in backend").result(timeout=30)
            result = server.submit("fine afterwards").result(timeout=30)
            assert len(result.probabilities) == 6
            assert server.stats.snapshot().worker_thread_deaths == 0
