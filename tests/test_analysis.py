"""Tests for ``repro.analysis``: the HX lint rules and the lock-order checker.

Three layers:

* every HX rule against its must-flag / must-pass fixture pair in
  ``tests/fixtures/analysis/``, plus noqa suppression and CLI behaviour;
* the ``OrderedLock`` dynamic checker — a deliberately-deadlocking
  two-lock ordering is caught, conditions integrate, ``require_held``
  enforces the ``*_locked`` contract;
* the real tree: ``holistix-lint src/ scripts/`` is clean, and the real
  ``ProcessInferenceServer`` start/submit/drain/stop path records a
  cycle-free lock graph under ``REPRO_LOCK_CHECK=1``.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.analysis.lockcheck import (
    LockOrderError,
    LockOrderRegistry,
    OrderedLock,
    create_lock,
    registry as global_registry,
    require_held,
)
from repro.analysis.linter import check_file, check_source, collect_files, run
from repro.analysis.rules import ALL_RULES, rule_by_id
from repro.engine.engine import PredictionEngine
from repro.engine.procserver import ProcessInferenceServer

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analysis"

RULE_IDS = ["HX001", "HX002", "HX003", "HX004", "HX005", "HX006"]


# ----------------------------------------------------------------------
# Cheap picklable engine factory for the procserver integration test
# ----------------------------------------------------------------------
class _StubBackend:
    n_classes = 6

    def proba_batch(self, texts):
        import numpy as np

        return np.full((len(texts), 6), 1.0 / 6.0, dtype=np.float64)


def make_stub_engine():
    return PredictionEngine(_StubBackend(), model_id="stub", cache_size=0)


# ----------------------------------------------------------------------
# Rule fixtures
# ----------------------------------------------------------------------
class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_flag_fixture_flags(self, rule_id):
        path = FIXTURES / f"{rule_id.lower()}_flag.py"
        violations = check_file(path, rules=[rule_by_id(rule_id)])
        assert violations, f"{path.name} should trigger {rule_id}"
        assert all(v.rule == rule_id for v in violations)

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_pass_fixture_passes(self, rule_id):
        path = FIXTURES / f"{rule_id.lower()}_pass.py"
        violations = check_file(path, rules=[rule_by_id(rule_id)])
        assert violations == [], f"{path.name} must be {rule_id}-clean"

    def test_flag_fixtures_report_expected_counts(self):
        # Pin the specific sites so a rule that silently stops matching
        # one shape fails here instead of rotting.
        # HX005 is 5: the unprefixed family flags once as a family name
        # and once as a sample name.
        expected = {"HX001": 1, "HX002": 4, "HX003": 3, "HX004": 2, "HX005": 5, "HX006": 2}
        for rule_id, count in expected.items():
            path = FIXTURES / f"{rule_id.lower()}_flag.py"
            violations = check_file(path, rules=[rule_by_id(rule_id)])
            assert len(violations) == count, (rule_id, violations)

    def test_violations_carry_location_and_render(self):
        path = FIXTURES / "hx001_flag.py"
        (violation,) = check_file(path, rules=[rule_by_id("HX001")])
        assert violation.line > 0
        rendered = violation.render()
        assert "hx001_flag.py" in rendered
        assert "HX001" in rendered


class TestPathScopedRules:
    def test_hx003_applies_under_seeded_paths(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        flagged = check_source(
            source, "src/repro/loadgen/synthetic.py", rules=[rule_by_id("HX003")]
        )
        assert len(flagged) == 1
        clean = check_source(
            source, "src/repro/serving/anything.py", rules=[rule_by_id("HX003")]
        )
        assert clean == []

    def test_hx003_from_import_alias(self):
        source = "from time import time as now\n\ndef f():\n    return now()\n"
        flagged = check_source(
            source, "src/repro/chaos/x.py", rules=[rule_by_id("HX003")]
        )
        assert len(flagged) == 1
        assert "time.time" in flagged[0].message


class TestSuppression:
    def test_noqa_with_code_suppresses(self):
        path = FIXTURES / "hx004_flag.py"
        source = path.read_text()
        patched = source.replace(
            "threading.Thread(target=target)  # HX004",
            "threading.Thread(target=target)  # noqa: HX004",
        )
        violations = check_source(patched, str(path), rules=[rule_by_id("HX004")])
        assert len(violations) == 1  # only the un-noqa'd site remains

    def test_bare_noqa_suppresses_everything(self):
        source = "import time\nx = time.time()  # noqa\n"
        assert (
            check_source(source, "src/repro/loadgen/x.py", rules=[rule_by_id("HX003")])
            == []
        )

    def test_unrelated_code_does_not_suppress(self):
        source = "import time\nx = time.time()  # noqa: HX001\n"
        violations = check_source(
            source, "src/repro/loadgen/x.py", rules=[rule_by_id("HX003")]
        )
        assert len(violations) == 1

    def test_syntax_error_reported_not_raised(self):
        violations = check_source("def broken(:\n", "bad.py")
        assert len(violations) == 1
        assert violations[0].rule == "HX000"


class TestCli:
    def test_exit_zero_on_clean_file(self, capsys):
        assert lint_main([str(FIXTURES / "hx001_pass.py")]) == 0

    def test_exit_one_and_report_on_violation(self, capsys):
        code = lint_main(
            [str(FIXTURES / "hx001_flag.py"), "--select", "HX001"]
        )
        assert code == 1
        out = capsys.readouterr()
        assert "HX001" in out.out
        assert "1 violation" in out.err

    def test_github_format_annotations(self, capsys):
        code = lint_main(
            [str(FIXTURES / "hx001_flag.py"), "--select", "HX001", "--format", "github"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert "line=" in out

    def test_usage_errors(self, capsys):
        assert lint_main([]) == 2
        assert lint_main(["definitely/not/a/path.py"]) == 2
        with pytest.raises(SystemExit):
            lint_main([str(FIXTURES), "--select", "HX999"])

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.rule_id in out

    def test_collect_files_recurses_and_dedupes(self):
        files = collect_files([FIXTURES, FIXTURES / "hx001_flag.py"])
        assert files.count(FIXTURES / "hx001_flag.py") == 1
        assert len(files) >= 12


class TestRealTreeIsClean:
    def test_src_and_scripts_lint_clean(self):
        violations = run([REPO_ROOT / "src", REPO_ROOT / "scripts"])
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_gateway_and_injector_hx001_regressions(self):
        # These two files carried real HX001 races (gateway.stop wrote
        # _owns_server outside its lock; FaultInjector.disarm wrote
        # _thread unguarded) — pin that they stay clean.
        for rel in ("src/repro/serving/gateway.py", "src/repro/chaos/injector.py"):
            violations = check_file(REPO_ROOT / rel, rules=[rule_by_id("HX001")])
            assert violations == [], "\n".join(v.render() for v in violations)


# ----------------------------------------------------------------------
# Dynamic lock-order checker
# ----------------------------------------------------------------------
@pytest.fixture
def fresh_registry():
    return LockOrderRegistry()


class TestOrderedLock:
    def test_two_lock_inversion_is_caught(self, fresh_registry):
        """The deliberately-deadlocking two-lock ordering."""
        a = OrderedLock("fixture.a", fresh_registry)
        b = OrderedLock("fixture.b", fresh_registry)
        with a, b:
            pass
        with b, pytest.raises(LockOrderError, match="cycle"):
            a.acquire()

    def test_three_lock_transitive_cycle(self, fresh_registry):
        a = OrderedLock("t.a", fresh_registry)
        b = OrderedLock("t.b", fresh_registry)
        c = OrderedLock("t.c", fresh_registry)
        with a, b:
            pass
        with b, c:
            pass
        with c, pytest.raises(LockOrderError, match="cycle"):
            a.acquire()

    def test_consistent_order_never_raises(self, fresh_registry):
        a = OrderedLock("ok.a", fresh_registry)
        b = OrderedLock("ok.b", fresh_registry)
        for _ in range(3):
            with a, b:
                pass
        assert fresh_registry.edges() == {"ok.a": frozenset({"ok.b"})}

    def test_recursive_acquire_raises(self, fresh_registry):
        a = OrderedLock("rec.a", fresh_registry)
        with a, pytest.raises(LockOrderError, match="recursive"):
            a.acquire()

    def test_nonblocking_acquire_records_no_edge(self, fresh_registry):
        a = OrderedLock("nb.a", fresh_registry)
        b = OrderedLock("nb.b", fresh_registry)
        with a:
            assert b.acquire(blocking=False)
            b.release()
        assert fresh_registry.edges() == {}

    def test_cross_thread_orders_share_one_graph(self, fresh_registry):
        a = OrderedLock("x.a", fresh_registry)
        b = OrderedLock("x.b", fresh_registry)

        def forward():
            with a, b:
                pass

        t = threading.Thread(target=forward, daemon=False)
        t.start()
        t.join()
        with b, pytest.raises(LockOrderError):
            a.acquire()

    def test_condition_integration(self, fresh_registry):
        lock = OrderedLock("cond.lock", fresh_registry)
        cond = threading.Condition(lock)
        ready = []

        def consumer():
            with cond:
                while not ready:
                    cond.wait(timeout=5.0)

        t = threading.Thread(target=consumer, daemon=False)
        t.start()
        time.sleep(0.05)
        with cond:
            ready.append(True)
            cond.notify()
        t.join(timeout=5.0)
        assert not t.is_alive()
        # wait() released the lock: the main thread's held-stack is empty.
        assert fresh_registry.held_names() == ()

    def test_require_held(self, fresh_registry):
        lock = OrderedLock("rh.lock", fresh_registry)
        with pytest.raises(LockOrderError, match="rh.lock"):
            require_held(lock, "test path")
        with lock:
            require_held(lock, "test path")  # no raise
        require_held(threading.Lock())  # plain locks are never checked

    def test_create_lock_is_env_gated(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCK_CHECK", raising=False)
        assert not isinstance(create_lock("gated"), OrderedLock)
        monkeypatch.setenv("REPRO_LOCK_CHECK", "1")
        assert isinstance(create_lock("gated"), OrderedLock)
        monkeypatch.setenv("REPRO_LOCK_CHECK", "0")
        assert not isinstance(create_lock("gated"), OrderedLock)


# ----------------------------------------------------------------------
# Real components under REPRO_LOCK_CHECK=1
# ----------------------------------------------------------------------
@pytest.fixture
def armed_lock_check(monkeypatch):
    monkeypatch.setenv("REPRO_LOCK_CHECK", "1")
    global_registry.reset()
    yield global_registry
    global_registry.reset()


class TestRealLockOrders:
    def test_procserver_lifecycle_is_cycle_free(self, armed_lock_check):
        """start/submit/drain/stop of the real multi-process server.

        Any lock-order inversion inside BatchingServerBase +
        ProcessInferenceServer (mutex, stats, per-slot, proc-stats)
        raises LockOrderError and fails this test.
        """
        server = ProcessInferenceServer.from_factory(
            make_stub_engine, workers=2, max_batch_size=4
        )
        with server:
            server.wait_ready(timeout=120)
            futures = [server.submit(f"text {i}") for i in range(16)]
            for future in futures:
                future.result(timeout=30)
        edges = armed_lock_check.edges()
        assert any("server.mutex" in source for source in edges), edges

    def test_injector_disarm_joins_outside_lock(self, armed_lock_check):
        """Regression: disarm() used to write _thread unguarded; it now
        pops under the lock and joins outside, so disarming while the
        dispatch thread is mid-_mark (which takes the same lock) cannot
        deadlock or race."""
        from repro.chaos.injector import FaultInjector
        from repro.chaos.plan import FaultEvent, FaultPlan

        plan = FaultPlan(
            seed=7, events=(FaultEvent(at_s=30.0, kind="worker_crash", target=0),)
        )
        injector = FaultInjector(plan)
        injector.register("worker_crash", lambda event: None)
        injector.arm()
        assert injector.armed
        started = time.monotonic()
        injector.disarm()
        assert time.monotonic() - started < 5.0
        assert injector._thread is None
