"""Property-based tests on the autograd engine's algebraic invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor

_shape = st.tuples(st.integers(1, 4), st.integers(1, 5))


def _array(shape, seed):
    return np.random.default_rng(seed).normal(size=shape).astype(np.float32)


class TestAlgebraicInvariants:
    @given(shape=_shape, seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_addition_commutes(self, shape, seed):
        a = _array(shape, seed)
        b = _array(shape, seed + 1)
        left = (Tensor(a) + Tensor(b)).data
        right = (Tensor(b) + Tensor(a)).data
        np.testing.assert_array_equal(left, right)

    @given(shape=_shape, seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_mul_by_one_is_identity(self, shape, seed):
        a = _array(shape, seed)
        np.testing.assert_array_equal((Tensor(a) * 1.0).data, a)

    @given(shape=_shape, seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_double_negation(self, shape, seed):
        a = _array(shape, seed)
        np.testing.assert_array_equal((-(-Tensor(a))).data, a)

    @given(shape=_shape, seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_softmax_is_distribution(self, shape, seed):
        a = _array(shape, seed)
        probs = Tensor(a).softmax(axis=-1).data
        assert (probs >= 0).all()
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-5)

    @given(shape=_shape, seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_reshape_roundtrip(self, shape, seed):
        a = _array(shape, seed)
        flat = Tensor(a).reshape(a.size)
        back = flat.reshape(*shape)
        np.testing.assert_array_equal(back.data, a)

    @given(shape=_shape, seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_transpose_involution(self, shape, seed):
        a = _array(shape, seed)
        twice = Tensor(a).transpose(1, 0).transpose(1, 0)
        np.testing.assert_array_equal(twice.data, a)


class TestGradientInvariants:
    @given(shape=_shape, seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_sum_gradient_is_ones(self, shape, seed):
        x = Tensor(_array(shape, seed), requires_grad=True)
        x.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones(shape, dtype=np.float32))

    @given(shape=_shape, seed=st.integers(0, 100), scale=st.floats(-3, 3))
    @settings(max_examples=25, deadline=None)
    def test_linearity_of_gradients(self, shape, seed, scale):
        x = Tensor(_array(shape, seed), requires_grad=True)
        (x * scale).sum().backward()
        np.testing.assert_allclose(
            x.grad, np.full(shape, scale, dtype=np.float32), rtol=1e-5, atol=1e-6
        )

    @given(shape=_shape, seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_gradient_accumulates_linearly(self, shape, seed):
        a = _array(shape, seed)
        x = Tensor(a, requires_grad=True)
        x.sum().backward()
        first = x.grad.copy()
        x.sum().backward()  # second pass without zero_grad doubles it
        np.testing.assert_allclose(x.grad, 2 * first, rtol=1e-6)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_chain_rule_through_composition(self, seed):
        # d/dx sum(tanh(2x)) = 2 * (1 - tanh(2x)^2)
        a = _array((3, 3), seed)
        x = Tensor(a, requires_grad=True)
        (x * 2.0).tanh().sum().backward()
        expected = 2.0 * (1.0 - np.tanh(2.0 * a) ** 2)
        np.testing.assert_allclose(x.grad, expected, rtol=1e-4, atol=1e-5)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_masked_positions_have_zero_gradient(self, seed):
        a = _array((4, 4), seed)
        mask = np.random.default_rng(seed).random((4, 4)) > 0.5
        x = Tensor(a, requires_grad=True)
        x.masked_fill(mask, 0.0).sum().backward()
        np.testing.assert_array_equal(x.grad[mask], 0.0)
        np.testing.assert_array_equal(x.grad[~mask], 1.0)
